"""The paper's Section 5 "future directions", implemented and demonstrated.

Four extensions the paper calls for, run on the Flight collection:

1. seed trustworthiness from consistent items (no gold standard needed);
2. per-category source trust (a source can be good on UA flights and bad on
   AA flights);
3. source selection ("less is more": a few good sources beat all 38);
4. an ensemble of fusion methods.

Run with::

    python examples/beyond_the_paper.py
"""

from __future__ import annotations

from repro.datagen import FlightConfig, generate_flight_collection
from repro.evaluation import evaluate, greedy_source_selection
from repro.fusion import (
    AccuCategory,
    FusionProblem,
    consistent_item_seed,
    ensemble_vote,
    make_method,
    seed_coverage,
)


def main() -> None:
    collection = generate_flight_collection(FlightConfig.small())
    snapshot, gold = collection.snapshot, collection.gold
    problem = FusionProblem(snapshot)

    def precision(result) -> float:
        return evaluate(snapshot, gold, result).precision

    print("1) Seed trust from consistent items (Section 5, 'Improving fusion')")
    seed = consistent_item_seed(problem)
    print(f"   {100 * seed_coverage(problem):.0f}% of items are consistent "
          f"enough to vote on source quality")
    plain = make_method("AccuPr").run(problem)
    seeded = make_method("AccuPr").run(problem, trust_seed=seed)
    print(f"   AccuPr: {precision(plain):.3f} -> {precision(seeded):.3f} with seeding\n")

    print("2) Per-category trust (good on UA, bad on AA?)")
    method = AccuCategory()
    result = method.run(problem)
    print(f"   AccuCategory precision: {precision(result):.3f} "
          f"(categories: {', '.join(result.extras['categories'])})")
    trust = method.category_trust(result)
    spreads = {}
    for (source, category), value in trust.items():
        spreads.setdefault(source, []).append(value)
    source, values = max(spreads.items(), key=lambda kv: max(kv[1]) - min(kv[1]))
    print(f"   biggest per-airline quality gap: {source} "
          f"({min(values):.2f} .. {max(values):.2f})\n")

    print("3) Source selection ('less is more')")
    selection = greedy_source_selection(snapshot, gold, max_sources=8)
    print(f"   {len(selection.selected)} selected sources reach recall "
          f"{selection.recall:.3f} vs {selection.all_sources_recall:.3f} "
          f"with all 38")
    print(f"   picks: {', '.join(selection.selected)}\n")

    print("4) Ensemble of fusion methods")
    members = [make_method(n).run(problem) for n in ("Vote", "PopAccu", "AccuCopy")]
    combined = ensemble_vote(snapshot, members)
    for member in members:
        print(f"   {member.method:<10} {precision(member):.3f}")
    print(f"   {'Ensemble':<10} {precision(combined):.3f}")


if __name__ == "__main__":
    main()
