"""Truth discovery on your own data: a hand-built 'weather' domain.

The library is not tied to the paper's two collections — any set of
(source, object, attribute, value) claims can be fused.  This example builds
a small weather-observation domain from scratch with the core API, defines
authority sources for a gold standard, and runs the full method suite.

Run with::

    python examples/custom_domain.py
"""

from __future__ import annotations

from repro.core import (
    AttributeSpec,
    AttributeTable,
    Claim,
    DataItem,
    Dataset,
    SourceMeta,
    ValueKind,
    build_gold_standard,
)
from repro.evaluation import evaluate
from repro.fusion import METHOD_NAMES, FusionProblem, make_method

CITIES = ("Springfield", "Riverton", "Lakeside", "Hillview", "Baytown")

#: (source, quality): per-city temperature offsets a sloppy site applies.
STATIONS = {
    "weather_gov": 0.0,     # authority
    "meteo_hub": 0.0,       # authority
    "city_portal": 0.0,     # authority
    "tv_station": 0.3,
    "blog_a": -0.4,
    "blog_b": 2.5,          # systematically reports in the wrong unit-ish
    "mirror_of_blog_b": 2.5,
}

TRUTH = {
    ("Springfield", "temperature"): 21.4,
    ("Riverton", "temperature"): 18.9,
    ("Lakeside", "temperature"): 24.2,
    ("Hillview", "temperature"): 16.3,
    ("Baytown", "temperature"): 27.8,
    ("Springfield", "condition"): "cloudy",
    ("Riverton", "condition"): "rain",
    ("Lakeside", "condition"): "sunny",
    ("Hillview", "condition"): "fog",
    ("Baytown", "condition"): "sunny",
}

WRONG_CONDITIONS = {"blog_b": "sunny", "mirror_of_blog_b": "sunny"}


def build_weather_dataset() -> Dataset:
    attributes = AttributeTable.from_specs([
        AttributeSpec("temperature", ValueKind.NUMERIC, tolerance_factor=0.02),
        AttributeSpec("condition", ValueKind.STRING),
    ])
    dataset = Dataset(domain="weather", day="2026-06-11", attributes=attributes)
    for source_id in STATIONS:
        dataset.add_source(
            SourceMeta(source_id, is_authority=source_id.endswith(("gov", "hub", "portal")))
        )
    for source_id, offset in STATIONS.items():
        for city in CITIES:
            temperature = TRUTH[(city, "temperature")] + offset
            dataset.add_claim(
                source_id,
                DataItem(city, "temperature"),
                Claim(round(temperature, 1)),
            )
            condition = WRONG_CONDITIONS.get(source_id, TRUTH[(city, "condition")])
            dataset.add_claim(
                source_id, DataItem(city, "condition"), Claim(condition)
            )
    return dataset.freeze()


def main() -> None:
    dataset = build_weather_dataset()
    print(f"Built {dataset!r}")

    # Gold standard: vote among the three authority feeds.
    gold = build_gold_standard(dataset, CITIES, min_providers=2)
    print(f"Gold standard covers {len(gold)} items\n")

    problem = FusionProblem(dataset)
    print(f"{'method':<16} precision")
    print("-" * 27)
    for name in METHOD_NAMES:
        result = make_method(name).run(problem)
        score = evaluate(dataset, gold, result)
        print(f"{name:<16} {score.precision:>9.3f}")

    print(
        "\nEvery method consumes the same compiled FusionProblem; to plug in"
        "\nyour own domain you only need Dataset + AttributeSpec + claims."
    )


if __name__ == "__main__":
    main()
