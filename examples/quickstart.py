"""Quickstart: generate a Deep-Web collection, fuse it, score the methods.

Generates a small Stock collection (55 simulated sources), runs a handful of
fusion methods on the report-day snapshot, and prints each method's precision
against the authority-voted gold standard — a two-minute tour of the paper's
Section 4 experiment.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.datagen import StockConfig, generate_stock_collection
from repro.evaluation import evaluate
from repro.fusion import FusionProblem, make_method

METHODS = ("Vote", "TruthFinder", "AccuPr", "PopAccu", "AccuFormatAttr", "AccuCopy")


def main() -> None:
    print("Generating the Stock collection (55 sources)...")
    collection = generate_stock_collection(StockConfig.small())
    snapshot = collection.snapshot
    gold = collection.gold
    print(
        f"  snapshot {snapshot.day}: {snapshot.num_sources} sources, "
        f"{snapshot.num_objects} symbols, {snapshot.num_claims} claims, "
        f"{len(gold)} gold items\n"
    )

    # Compile the snapshot once; every method runs off the same problem.
    problem = FusionProblem(snapshot)

    print(f"{'method':<16} {'precision':>9} {'rounds':>7} {'seconds':>8}")
    print("-" * 44)
    for name in METHODS:
        result = make_method(name).run(problem)
        score = evaluate(snapshot, gold, result)
        print(
            f"{name:<16} {score.precision:>9.3f} {result.rounds:>7} "
            f"{result.runtime_seconds:>8.3f}"
        )

    print(
        "\nThe baseline VOTE takes the most-provided value; the advanced"
        "\nmethods weight votes by iteratively-estimated source trust"
        "\n(per attribute for AccuFormatAttr) and discount copied votes"
        "\n(AccuCopy) — Section 4 of the paper."
    )


if __name__ == "__main__":
    main()
