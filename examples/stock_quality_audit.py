"""Data-quality audit of the Stock domain (the paper's Section 3 workflow).

Walks the profiling API the way the paper's study does: redundancy, value
inconsistency per attribute, reasons for inconsistency, dominance factors,
and source accuracy — answering the paper's four questions about Deep-Web
data quality.

Run with::

    python examples/stock_quality_audit.py
"""

from __future__ import annotations

from repro.core.records import ErrorReason
from repro.datagen import StockConfig, generate_stock_collection
from repro.profiling import (
    accuracy_profile,
    consistency_profile,
    dominance_profile,
    rank_attributes,
    reason_breakdown,
    redundancy_profile,
)


def main() -> None:
    collection = generate_stock_collection(StockConfig.small())
    snapshot, gold = collection.snapshot, collection.gold
    print(f"Auditing {snapshot!r}\n")

    # Q1: Are there a lot of redundant data? (Section 3.1)
    redundancy = redundancy_profile(snapshot)
    print("Q1 - redundancy")
    print(f"  mean object redundancy: {redundancy.mean_object_redundancy:.2f}")
    print(f"  mean item redundancy:   {redundancy.mean_item_redundancy:.2f}\n")

    # Q2: Are the data consistent? (Section 3.2)
    consistency = consistency_profile(snapshot)
    print("Q2 - consistency")
    print(f"  single-valued items: {100 * consistency.fraction_single_value():.0f}%")
    print(f"  mean distinct values per item: {consistency.mean_num_values:.2f}")
    ranking = rank_attributes(consistency, "entropy", top=3)
    worst = ", ".join(f"{r.attribute} ({r.value:.2f})" for r in ranking.highest)
    best = ", ".join(f"{r.attribute} ({r.value:.2f})" for r in ranking.lowest)
    print(f"  most inconsistent attributes (entropy): {worst}")
    print(f"  most consistent attributes (entropy):   {best}")

    reasons = reason_breakdown(snapshot)
    shares = reasons.shares()
    print("  why values disagree:")
    for reason in ErrorReason:
        share = shares.get(reason)
        if share:
            print(f"    {reason.value:<20} {100 * share:.0f}%")
    print()

    # Are dominant values true?
    dominance = dominance_profile(snapshot, gold)
    print("  precision of dominant values (VOTE): "
          f"{dominance.overall_precision():.3f}")
    curve = dominance.precision_curve()
    low = curve.get(0.4)
    high = curve.get(0.9)
    print(f"  ... at dominance factor 0.9: {high if high is None else round(high, 3)}")
    print(f"  ... at dominance factor 0.4: {low if low is None else round(low, 3)}\n")

    # Q3: Are the sources accurate? (Section 3.3)
    accuracy = accuracy_profile(snapshot, gold)
    print("Q3 - source accuracy")
    print(f"  mean source accuracy: {accuracy.mean_accuracy:.2f}")
    print(f"  sources above .9: {100 * accuracy.fraction_above(0.9):.0f}%")
    print(f"  sources below .7: {100 * accuracy.fraction_below(0.7):.0f}%\n")

    # Q4: Is there copying? (Section 3.4)
    print("Q4 - copying")
    for group in collection.true_copy_groups():
        print(f"  copy group of {len(group)}: {', '.join(group[:4])}"
              + (" ..." if len(group) > 4 else ""))


if __name__ == "__main__":
    main()
