"""Copy detection on the Flight domain (Sections 3.4 and 4.2).

Detects copying groups among the 38 simulated flight sources, compares them
with the ground truth, and shows how much copy-aware fusion (ACCUCOPY) gains
over majority voting — the paper's headline Flight result.

Run with::

    python examples/flight_copy_hunt.py
"""

from __future__ import annotations

from repro.copying import detect_copying
from repro.copying.detection import selection_accuracy
from repro.datagen import FlightConfig, generate_flight_collection
from repro.evaluation import evaluate
from repro.fusion import AccuCopy, FusionProblem, make_method
from repro.profiling import all_copy_group_stats


def main() -> None:
    collection = generate_flight_collection(FlightConfig.small())
    snapshot, gold = collection.snapshot, collection.gold
    problem = FusionProblem(snapshot)
    print(f"Hunting copiers in {snapshot!r}\n")

    # 1. Detect copying from the claim matrix alone (no ground truth).
    selected = problem.argmax_per_item(problem.cluster_support.astype(float))
    detection = detect_copying(
        problem, selected, selection_accuracy(problem, selected), min_overlap=15
    )
    detected = detection.groups()
    print("Detected dependence groups:")
    for group in detected:
        print(f"  {group}")
    print("\nGround-truth copy groups (from the simulator):")
    for group in collection.true_copy_groups():
        print(f"  {group}")

    # 2. Table 5-style commonality stats for the true groups.
    print("\nGroup commonality (schema / objects / values / accuracy):")
    for stats in all_copy_group_stats(
        snapshot, collection.true_copy_groups(), gold
    ):
        accuracy = "-" if stats.average_accuracy is None else f"{stats.average_accuracy:.2f}"
        print(
            f"  size {stats.size}: {stats.schema_similarity:.2f} / "
            f"{stats.object_similarity:.2f} / {stats.value_similarity:.2f} / "
            f"{accuracy}"
        )

    # 3. What copy-awareness buys at fusion time.
    vote = evaluate(snapshot, gold, make_method("Vote").run(problem))
    accucopy = evaluate(snapshot, gold, make_method("AccuCopy").run(problem))
    informed = evaluate(
        snapshot,
        gold,
        AccuCopy(known_groups=collection.true_copy_groups()).run(problem),
    )
    print("\nFusion precision:")
    print(f"  Vote                      {vote.precision:.3f}")
    print(f"  AccuCopy (detected)       {accucopy.precision:.3f}")
    print(f"  AccuCopy (known copying)  {informed.precision:.3f}")
    print(
        "\nLow-accuracy copiers make wrong values dominant; discounting"
        "\ntheir votes recovers them (Section 4.2 of the paper)."
    )


if __name__ == "__main__":
    main()
