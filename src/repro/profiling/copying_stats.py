"""Copying-group commonality measures (Section 3.4, Table 5).

For each group of sources with (suspected) copying the paper reports:

* **schema commonality** — average pairwise Jaccard similarity of provided
  global attribute sets;
* **object commonality** — same over provided object sets;
* **value commonality** — average fraction of equal values over the shared
  data items of each pair;
* **average accuracy** — mean source accuracy within the group.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard, accuracy_of_source


@dataclass
class CopyGroupStats:
    """One Table 5 row."""

    members: List[str]
    schema_similarity: float
    object_similarity: float
    value_similarity: float
    average_accuracy: Optional[float]

    @property
    def size(self) -> int:
        return len(self.members)


def _jaccard(a: set, b: set) -> float:
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union) if union else 1.0


def _pair_value_similarity(dataset: Dataset, s1: str, s2: str) -> Optional[float]:
    claims1 = dataset.claims_by(s1)
    claims2 = dataset.claims_by(s2)
    shared = set(claims1) & set(claims2)
    if not shared:
        return None
    equal = sum(
        1
        for item in shared
        if dataset.values_match(
            item.attribute, claims1[item].value, claims2[item].value
        )
    )
    return equal / len(shared)


def copy_group_stats(
    dataset: Dataset,
    members: Sequence[str],
    gold: Optional[GoldStandard] = None,
) -> CopyGroupStats:
    """Compute the Table 5 commonality measures for one group of sources."""
    schemas: Dict[str, set] = {}
    objects: Dict[str, set] = {}
    for source_id in members:
        claims = dataset.claims_by(source_id)
        schemas[source_id] = {item.attribute for item in claims}
        objects[source_id] = {item.object_id for item in claims}

    schema_sims: List[float] = []
    object_sims: List[float] = []
    value_sims: List[float] = []
    for s1, s2 in combinations(members, 2):
        schema_sims.append(_jaccard(schemas[s1], schemas[s2]))
        object_sims.append(_jaccard(objects[s1], objects[s2]))
        pair_value = _pair_value_similarity(dataset, s1, s2)
        if pair_value is not None:
            value_sims.append(pair_value)

    accuracy: Optional[float] = None
    if gold is not None:
        values = [
            a
            for a in (accuracy_of_source(dataset, gold, s) for s in members)
            if a is not None
        ]
        accuracy = sum(values) / len(values) if values else None

    def mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 1.0

    return CopyGroupStats(
        members=list(members),
        schema_similarity=mean(schema_sims),
        object_similarity=mean(object_sims),
        value_similarity=mean(value_sims),
        average_accuracy=accuracy,
    )


def all_copy_group_stats(
    dataset: Dataset,
    groups: Sequence[Sequence[str]],
    gold: Optional[GoldStandard] = None,
) -> List[CopyGroupStats]:
    """Table 5: stats for every copying group, largest first."""
    rows = [copy_group_stats(dataset, group, gold) for group in groups]
    rows.sort(key=lambda r: -r.size)
    return rows
