"""Value-consistency measures (Section 3.2, Table 3, Figure 4).

For every data item we measure, after tolerance bucketing:

* **number of values** — ``|V(d)|``;
* **entropy** — Equation (1);
* **deviation** — Equation (2), relative for numeric attributes, absolute in
  minutes for times.

Table 3 reports per-attribute means (with and without the stale StockSmart
source); Figure 4 reports the distributions binned as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.attributes import ValueKind
from repro.core.dataset import Dataset
from repro.core.records import DataItem


@dataclass
class ItemConsistency:
    """Consistency measures of a single data item."""

    item: DataItem
    num_values: int
    entropy: float
    deviation: Optional[float]
    num_providers: int


@dataclass
class ConsistencyProfile:
    """Per-item consistency measures for one snapshot."""

    per_item: List[ItemConsistency]

    @property
    def mean_num_values(self) -> float:
        return _mean([r.num_values for r in self.per_item])

    @property
    def mean_entropy(self) -> float:
        return _mean([r.entropy for r in self.per_item])

    @property
    def mean_deviation(self) -> float:
        return _mean([r.deviation for r in self.per_item if r.deviation is not None])

    def fraction_single_value(self) -> float:
        """Share of items with exactly one distinct value after bucketing."""
        if not self.per_item:
            return 0.0
        return sum(1 for r in self.per_item if r.num_values == 1) / len(self.per_item)

    def num_values_histogram(self, max_bucket: int = 9) -> Dict[str, float]:
        """Figure 4 (left): distribution of the number of distinct values."""
        if not self.per_item:
            return {}
        counts: Dict[str, int] = {}
        for r in self.per_item:
            key = str(r.num_values) if r.num_values <= max_bucket else "More"
            counts[key] = counts.get(key, 0) + 1
        n = len(self.per_item)
        labels = [str(i) for i in range(1, max_bucket + 1)] + ["More"]
        return {k: counts.get(k, 0) / n for k in labels}

    def entropy_histogram(self) -> Dict[str, float]:
        """Figure 4 (middle): entropy distribution in the paper's bins."""
        edges = [i / 10 for i in range(11)]
        return _binned(
            [r.entropy for r in self.per_item], edges, last_label="[1.0, )"
        )

    def deviation_histogram(self) -> Dict[str, float]:
        """Figure 4 (right): deviation distribution in the paper's bins.

        Numeric deviations bin on a 0.1 grid, time deviations on a 1-minute
        grid (the paper overlays both scales on the same chart).
        """
        values = []
        for r in self.per_item:
            if r.deviation is None:
                continue
            values.append(r.deviation)
        edges = [i / 10 for i in range(11)]
        return _binned(values, edges, last_label="[1.0, )")

    def by_attribute(self) -> Dict[str, "ConsistencyProfile"]:
        groups: Dict[str, List[ItemConsistency]] = {}
        for r in self.per_item:
            groups.setdefault(r.item.attribute, []).append(r)
        return {a: ConsistencyProfile(rows) for a, rows in groups.items()}


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _binned(values: List[float], edges: List[float], last_label: str) -> Dict[str, float]:
    if not values:
        return {}
    n = len(values)
    result: Dict[str, float] = {}
    for lo, hi in zip(edges[:-1], edges[1:]):
        label = f"[{lo:.1f}, {hi:.1f})"
        result[label] = sum(1 for v in values if lo <= v < hi) / n
    result[last_label] = sum(1 for v in values if v >= edges[-1]) / n
    return result


def consistency_profile(
    dataset: Dataset,
    items: Optional[Iterable[DataItem]] = None,
    exclude_sources: Iterable[str] = (),
) -> ConsistencyProfile:
    """Measure value consistency of a snapshot (optionally excluding sources).

    ``exclude_sources`` supports Table 3's parenthesized variant: the numbers
    recomputed without the stale StockSmart source.
    """
    excluded = set(exclude_sources)
    source = dataset
    if excluded:
        source = dataset.without_sources(excluded)
    rows: List[ItemConsistency] = []
    for item in (items if items is not None else source.items):
        clustering = source.clustering(item)
        if not clustering.clusters:
            continue
        kind = source.spec(item.attribute).kind
        # Time deviations are reported in minutes; rescale to the shared
        # 0.1-per-minute bin grid used by Figure 4 only at render time.
        deviation = clustering.deviation(kind)
        rows.append(
            ItemConsistency(
                item=item,
                num_values=clustering.num_values,
                entropy=clustering.entropy(),
                deviation=deviation,
                num_providers=clustering.num_providers,
            )
        )
    return ConsistencyProfile(per_item=rows)


@dataclass
class AttributeInconsistency:
    """One attribute's Table 3 row for one measure."""

    attribute: str
    value: float


@dataclass
class InconsistencyRanking:
    """Table 3: the attributes with lowest / highest inconsistency."""

    measure: str
    lowest: List[AttributeInconsistency] = field(default_factory=list)
    highest: List[AttributeInconsistency] = field(default_factory=list)


def rank_attributes(
    profile: ConsistencyProfile, measure: str, top: int = 5
) -> InconsistencyRanking:
    """Rank attributes by mean num_values / entropy / deviation (Table 3)."""
    extractors = {
        "num_values": lambda p: p.mean_num_values,
        "entropy": lambda p: p.mean_entropy,
        "deviation": lambda p: p.mean_deviation,
    }
    if measure not in extractors:
        raise ValueError(f"unknown measure {measure!r}")
    extract = extractors[measure]
    scores = [
        AttributeInconsistency(attribute=a, value=extract(sub))
        for a, sub in profile.by_attribute().items()
    ]
    scores.sort(key=lambda s: s.value)
    return InconsistencyRanking(
        measure=measure,
        lowest=scores[:top],
        highest=list(reversed(scores[-top:])),
    )
