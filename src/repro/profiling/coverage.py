"""Attribute coverage (Section 2.2, Figure 1, Table 1).

Figure 1 plots, for each threshold in {5, 10, 20, 30, 40, 50}, the percentage
of *global* attributes provided by more than that many sources.  The paper
computes this over the full matched schema (153 global attributes for Stock,
15 for Flight), so this module works off the source *profiles'* full schemas
rather than the generated claims (claims are only generated for the
considered attributes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.datagen.profiles import SourceProfile
from repro.normalize.schema import SchemaMatcher, match_statistics

#: The x-axis of Figure 1.
COVERAGE_THRESHOLDS: Sequence[int] = (5, 10, 20, 30, 40, 50)


@dataclass
class AttributeCoverageProfile:
    """Provider counts per global attribute, plus schema-size statistics."""

    providers_per_attribute: Dict[str, int]
    num_sources: int
    num_local_attributes: int

    @property
    def num_global_attributes(self) -> int:
        return len(self.providers_per_attribute)

    def fraction_above(self, threshold: int) -> float:
        """Fraction of attributes provided by more than ``threshold`` sources."""
        if not self.providers_per_attribute:
            return 0.0
        hits = sum(
            1 for count in self.providers_per_attribute.values() if count > threshold
        )
        return hits / len(self.providers_per_attribute)

    def series(self, thresholds: Sequence[int] = COVERAGE_THRESHOLDS) -> List[float]:
        """The Figure 1 series for this domain."""
        return [self.fraction_above(t) for t in thresholds]

    def fraction_below_quarter(self) -> float:
        """Fraction of attributes provided by < 25% of the sources."""
        if not self.providers_per_attribute:
            return 0.0
        cutoff = 0.25 * self.num_sources
        hits = sum(
            1 for count in self.providers_per_attribute.values() if count < cutoff
        )
        return hits / len(self.providers_per_attribute)


def attribute_coverage(profiles: Sequence[SourceProfile]) -> AttributeCoverageProfile:
    """Provider counts per global attribute across the source population."""
    counts: Dict[str, int] = {}
    local_names = set()
    for profile in profiles:
        for attribute in profile.effective_schema():
            counts[attribute] = counts.get(attribute, 0) + 1
            local_names.add(profile.local_label(attribute).lower())
    return AttributeCoverageProfile(
        providers_per_attribute=counts,
        num_sources=len(profiles),
        num_local_attributes=len(local_names),
    )


def build_schema_matcher(profiles: Sequence[SourceProfile]) -> SchemaMatcher:
    """A matcher resolving every local spelling used by the population."""
    matcher = SchemaMatcher()
    registered = set()
    for profile in profiles:
        for attribute in profile.effective_schema():
            if attribute not in registered:
                matcher.register_global(attribute)
                registered.add(attribute)
    for profile in profiles:
        for attribute in profile.effective_schema():
            local = profile.local_label(attribute)
            if local != attribute:
                matcher.register_synonym(local, attribute)
    return matcher


def schema_match_statistics(profiles: Sequence[SourceProfile]) -> Dict[str, int]:
    """(#local, #global) attribute counts as reported in Table 1."""
    matcher = build_schema_matcher(profiles)
    local_schemas = {
        profile.source_id: [
            profile.local_label(a) for a in profile.effective_schema()
        ]
        for profile in profiles
    }
    n_local, n_global = match_statistics(matcher, local_schemas)
    return {"local": n_local, "global": n_global}
