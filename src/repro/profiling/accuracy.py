"""Source accuracy over time (Section 3.3, Figure 8, Table 4).

Source accuracy is measured against the gold standard; accuracy *deviation*
is the standard deviation of a source's accuracy across the observation days;
Figure 8(c) tracks the precision of dominant values day by day.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.dataset import Dataset, DatasetSeries
from repro.core.gold import GoldStandard, accuracy_of_source, coverage_of_source


@dataclass
class SourceAccuracy:
    """One source's accuracy/coverage on one snapshot (Table 4 row)."""

    source_id: str
    accuracy: Optional[float]
    coverage: float


@dataclass
class AccuracyProfile:
    """Per-source accuracy for one snapshot."""

    rows: Dict[str, SourceAccuracy]

    def accuracies(self) -> List[float]:
        return [r.accuracy for r in self.rows.values() if r.accuracy is not None]

    @property
    def mean_accuracy(self) -> float:
        values = self.accuracies()
        return sum(values) / len(values) if values else 0.0

    def histogram(self, bucket_width: float = 0.1) -> Dict[float, float]:
        """Figure 8(a): distribution of source accuracy (bucketed)."""
        values = self.accuracies()
        if not values:
            return {}
        n_buckets = int(round(1.0 / bucket_width))
        counts = {i: 0 for i in range(1, n_buckets + 1)}
        for value in values:
            bucket = min(n_buckets, max(1, int(math.ceil(value / bucket_width - 1e-12))))
            counts[bucket] += 1
        return {
            round(i * bucket_width, 10): counts[i] / len(values)
            for i in range(1, n_buckets + 1)
        }

    def fraction_above(self, threshold: float) -> float:
        values = self.accuracies()
        if not values:
            return 0.0
        return sum(1 for v in values if v > threshold) / len(values)

    def fraction_below(self, threshold: float) -> float:
        values = self.accuracies()
        if not values:
            return 0.0
        return sum(1 for v in values if v < threshold) / len(values)


def accuracy_profile(
    dataset: Dataset,
    gold: GoldStandard,
    source_ids: Optional[Iterable[str]] = None,
) -> AccuracyProfile:
    """Accuracy and gold coverage of each source on one snapshot."""
    wanted = list(source_ids) if source_ids is not None else dataset.source_ids
    rows: Dict[str, SourceAccuracy] = {}
    for source_id in wanted:
        rows[source_id] = SourceAccuracy(
            source_id=source_id,
            accuracy=accuracy_of_source(dataset, gold, source_id),
            coverage=coverage_of_source(dataset, gold, source_id),
        )
    return AccuracyProfile(rows=rows)


@dataclass
class AccuracyOverTime:
    """Per-source accuracy series across the observation period."""

    days: List[str]
    series: Dict[str, List[Optional[float]]]

    def deviation_of(self, source_id: str) -> Optional[float]:
        """Standard deviation of one source's accuracy over time."""
        values = [v for v in self.series.get(source_id, []) if v is not None]
        if len(values) < 2:
            return None
        mean = sum(values) / len(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))

    def deviations(self) -> Dict[str, float]:
        result = {}
        for source_id in self.series:
            dev = self.deviation_of(source_id)
            if dev is not None:
                result[source_id] = dev
        return result

    def deviation_histogram(self, bucket_width: float = 0.01) -> Dict[str, float]:
        """Figure 8(b): distribution of accuracy deviation over sources."""
        deviations = list(self.deviations().values())
        if not deviations:
            return {}
        labels: List[Tuple[str, float, float]] = []
        for i in range(10):
            lo, hi = i * bucket_width, (i + 1) * bucket_width
            labels.append((f"[{lo:.2f}, {hi:.2f})", lo, hi))
        result = {
            label: sum(1 for d in deviations if lo <= d < hi) / len(deviations)
            for label, lo, hi in labels
        }
        top = 10 * bucket_width
        result[f"[{top:.2f}, )"] = sum(1 for d in deviations if d >= top) / len(deviations)
        return result

    def fraction_steady(self, threshold: float = 0.05) -> float:
        """Share of sources with accuracy deviation below ``threshold``."""
        deviations = list(self.deviations().values())
        if not deviations:
            return 0.0
        return sum(1 for d in deviations if d < threshold) / len(deviations)


def accuracy_over_time(
    series: DatasetSeries,
    gold_by_day: Dict[str, GoldStandard],
    source_ids: Optional[Iterable[str]] = None,
) -> AccuracyOverTime:
    """Track every source's accuracy across the observation period."""
    days: List[str] = []
    per_source: Dict[str, List[Optional[float]]] = {}
    for snapshot in series:
        gold = gold_by_day[snapshot.day]
        days.append(snapshot.day)
        wanted = list(source_ids) if source_ids is not None else snapshot.source_ids
        for source_id in wanted:
            value = (
                accuracy_of_source(snapshot, gold, source_id)
                if source_id in snapshot.sources
                else None
            )
            per_source.setdefault(source_id, []).append(value)
    return AccuracyOverTime(days=days, series=per_source)


def dominant_precision_over_time(
    series: DatasetSeries, gold_by_day: Dict[str, GoldStandard]
) -> Dict[str, float]:
    """Figure 8(c): precision of dominant values on each day."""
    result: Dict[str, float] = {}
    for snapshot in series:
        gold = gold_by_day[snapshot.day]
        correct = total = 0
        for item in gold.items:
            clustering = snapshot.clustering(item)
            if not clustering.clusters:
                continue
            total += 1
            if gold.is_correct(snapshot, item, clustering.dominant.representative):
                correct += 1
        result[snapshot.day] = correct / total if total else 0.0
    return result
