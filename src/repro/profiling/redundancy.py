"""Data redundancy measures (Section 3.1, Figures 2 and 3).

Object redundancy of an object is the fraction of sources providing it;
data-item redundancy of an item is the fraction of sources providing that
item.  The figures plot the *complementary CDF*: the percentage of objects
(items) whose redundancy exceeds each threshold x in {0, .1, ..., 1}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.dataset import Dataset

#: The x-axis of Figures 2 and 3.
REDUNDANCY_THRESHOLDS: Sequence[float] = tuple(i / 10 for i in range(11))


@dataclass
class RedundancyProfile:
    """Redundancy statistics of one snapshot."""

    object_redundancy: Dict[str, float]
    item_redundancy_values: List[float]

    @property
    def mean_object_redundancy(self) -> float:
        values = list(self.object_redundancy.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_item_redundancy(self) -> float:
        values = self.item_redundancy_values
        return sum(values) / len(values) if values else 0.0

    def object_ccdf(self, thresholds: Sequence[float] = REDUNDANCY_THRESHOLDS) -> List[float]:
        """Figure 2: fraction of objects with redundancy above each x."""
        return _ccdf(list(self.object_redundancy.values()), thresholds)

    def item_ccdf(self, thresholds: Sequence[float] = REDUNDANCY_THRESHOLDS) -> List[float]:
        """Figure 3: fraction of data items with redundancy above each x."""
        return _ccdf(self.item_redundancy_values, thresholds)


def _ccdf(values: List[float], thresholds: Sequence[float]) -> List[float]:
    if not values:
        return [0.0 for _ in thresholds]
    n = len(values)
    return [sum(1 for v in values if v > x) / n for x in thresholds]


def redundancy_profile(dataset: Dataset) -> RedundancyProfile:
    """Compute object- and item-level redundancy for one snapshot."""
    n_sources = dataset.num_sources
    if n_sources == 0:
        return RedundancyProfile({}, [])

    providers_per_object: Dict[str, set] = {}
    item_redundancy: List[float] = []
    for item in dataset.items:
        claims = dataset.claims_on(item)
        item_redundancy.append(len(claims) / n_sources)
        bucket = providers_per_object.setdefault(item.object_id, set())
        bucket.update(claims.keys())

    object_redundancy = {
        obj: len(srcs) / n_sources for obj, srcs in providers_per_object.items()
    }
    return RedundancyProfile(
        object_redundancy=object_redundancy,
        item_redundancy_values=item_redundancy,
    )


def source_object_coverage(dataset: Dataset) -> Dict[str, float]:
    """Fraction of the snapshot's objects each source provides."""
    n_objects = dataset.num_objects
    if n_objects == 0:
        return {s: 0.0 for s in dataset.source_ids}
    coverage: Dict[str, float] = {}
    for source_id in dataset.source_ids:
        objects = {item.object_id for item in dataset.claims_by(source_id)}
        coverage[source_id] = len(objects) / n_objects
    return coverage


def source_item_coverage(dataset: Dataset) -> Dict[str, float]:
    """Fraction of the snapshot's data items each source provides."""
    n_items = dataset.num_items
    if n_items == 0:
        return {s: 0.0 for s in dataset.source_ids}
    return {
        source_id: len(dataset.claims_by(source_id)) / n_items
        for source_id in dataset.source_ids
    }
