"""Data-quality profiling: every measure of Section 3."""

from repro.profiling.accuracy import (
    AccuracyOverTime,
    AccuracyProfile,
    SourceAccuracy,
    accuracy_over_time,
    accuracy_profile,
    dominant_precision_over_time,
)
from repro.profiling.consistency import (
    AttributeInconsistency,
    ConsistencyProfile,
    InconsistencyRanking,
    ItemConsistency,
    consistency_profile,
    rank_attributes,
)
from repro.profiling.copying_stats import (
    CopyGroupStats,
    all_copy_group_stats,
    copy_group_stats,
)
from repro.profiling.coverage import (
    COVERAGE_THRESHOLDS,
    AttributeCoverageProfile,
    attribute_coverage,
    build_schema_matcher,
    schema_match_statistics,
)
from repro.profiling.dominance import (
    DOMINANCE_BUCKETS,
    DominanceProfile,
    dominance_bucket,
    dominance_profile,
    top_k_value_precision,
)
from repro.profiling.reasons import (
    ReasonBreakdown,
    classify_item_reason,
    reason_breakdown,
    sampled_reason_breakdown,
)
from repro.profiling.redundancy import (
    REDUNDANCY_THRESHOLDS,
    RedundancyProfile,
    redundancy_profile,
    source_item_coverage,
    source_object_coverage,
)

__all__ = [
    "AccuracyOverTime",
    "AccuracyProfile",
    "SourceAccuracy",
    "accuracy_over_time",
    "accuracy_profile",
    "dominant_precision_over_time",
    "AttributeInconsistency",
    "ConsistencyProfile",
    "InconsistencyRanking",
    "ItemConsistency",
    "consistency_profile",
    "rank_attributes",
    "CopyGroupStats",
    "all_copy_group_stats",
    "copy_group_stats",
    "COVERAGE_THRESHOLDS",
    "AttributeCoverageProfile",
    "attribute_coverage",
    "build_schema_matcher",
    "schema_match_statistics",
    "DOMINANCE_BUCKETS",
    "DominanceProfile",
    "dominance_bucket",
    "dominance_profile",
    "top_k_value_precision",
    "ReasonBreakdown",
    "classify_item_reason",
    "reason_breakdown",
    "sampled_reason_breakdown",
    "REDUNDANCY_THRESHOLDS",
    "RedundancyProfile",
    "redundancy_profile",
    "source_item_coverage",
    "source_object_coverage",
]
