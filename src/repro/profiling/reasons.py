"""Reasons for value inconsistency (Section 3.2, Figure 6).

The paper manually inspected a sample of inconsistent data items and
attributed each to semantics ambiguity, instance ambiguity, out-of-date data,
unit errors, or pure errors.  Our simulator tags every generated claim with
the mechanism that produced it, so the same analysis is automatic: for each
inconsistent item we look at the claims *outside the dominant cluster* and
attribute the item to the most common reason among them (resolving COPIED
tags to the underlying cause where possible).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.dataset import Dataset
from repro.core.records import DataItem, ErrorReason


@dataclass
class ReasonBreakdown:
    """Figure 6: share of inconsistent items per reason."""

    counts: Dict[ErrorReason, int]
    num_inconsistent_items: int

    def shares(self) -> Dict[ErrorReason, float]:
        total = sum(self.counts.values())
        if total == 0:
            return {}
        return {reason: count / total for reason, count in self.counts.items()}

    def share_of(self, reason: ErrorReason) -> float:
        return self.shares().get(reason, 0.0)


def classify_item_reason(
    dataset: Dataset, item: DataItem
) -> Optional[ErrorReason]:
    """The dominant non-COPIED reason among an item's minority claims.

    Returns ``None`` for consistent items (single value after bucketing) and
    for inconsistent items whose minority claims are all untagged (which can
    happen when the minority holds the true value).
    """
    clustering = dataset.clustering(item)
    if clustering.num_values <= 1:
        return None
    claims = dataset.claims_on(item)
    dominant_sources = set(clustering.dominant.providers)
    votes: Counter = Counter()
    for source_id, claim in claims.items():
        if source_id in dominant_sources or claim.reason is None:
            continue
        votes[claim.reason] += 1
    if not votes:
        # The dominant cluster itself may be the erroneous one.
        for source_id in dominant_sources:
            reason = claims[source_id].reason
            if reason is not None:
                votes[reason] += 1
    if not votes:
        return None
    resolved = _resolve_copied(votes)
    return resolved.most_common(1)[0][0]


def _resolve_copied(votes: Counter) -> Counter:
    """Fold COPIED votes into the remaining reasons proportionally.

    A copied wrong value re-publishes some underlying mistake; when the
    sample contains other tags we attribute copies to the most common one,
    otherwise we keep them as pure errors.
    """
    copied = votes.pop(ErrorReason.COPIED, 0)
    if copied:
        if votes:
            top = votes.most_common(1)[0][0]
            votes[top] += copied
        else:
            votes[ErrorReason.PURE_ERROR] += copied
    return votes


def reason_breakdown(
    dataset: Dataset, items: Optional[Iterable[DataItem]] = None
) -> ReasonBreakdown:
    """Attribute every inconsistent item to an error mechanism (Figure 6)."""
    counts: Dict[ErrorReason, int] = {}
    inconsistent = 0
    for item in (items if items is not None else dataset.items):
        clustering = dataset.clustering(item)
        if clustering.num_values <= 1:
            continue
        inconsistent += 1
        reason = classify_item_reason(dataset, item)
        if reason is not None:
            counts[reason] = counts.get(reason, 0) + 1
    return ReasonBreakdown(counts=counts, num_inconsistent_items=inconsistent)


def sampled_reason_breakdown(
    dataset: Dataset, sample_size: int = 20, extremes: int = 5
) -> ReasonBreakdown:
    """The paper's sampling scheme: 20 random inconsistent items plus the 5
    items with the most distinct values."""
    measured: List[DataItem] = []
    inconsistent: List[DataItem] = []
    for item in dataset.items:
        if dataset.clustering(item).num_values > 1:
            inconsistent.append(item)
    inconsistent.sort(key=lambda i: (str(i.object_id), str(i.attribute)))
    by_num_values = sorted(
        inconsistent, key=lambda i: -dataset.clustering(i).num_values
    )
    measured.extend(by_num_values[:extremes])
    stride = max(1, len(inconsistent) // max(1, sample_size))
    for item in inconsistent[::stride]:
        if item not in measured:
            measured.append(item)
        if len(measured) >= sample_size + extremes:
            break
    return reason_breakdown(dataset, measured)
