"""Dominant-value analysis (Section 3.2, Figure 7).

The *dominance factor* of an item is the fraction of its providers supporting
the dominant (most-provided) value.  Figure 7 plots the distribution of
dominance factors and the precision of dominant values (against the gold
standard) bucketed by dominance factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.core.records import DataItem

#: Bucket centers of Figure 7 (dominance factor 0.1 ... 0.9).
DOMINANCE_BUCKETS: Sequence[float] = tuple((i + 1) / 10 for i in range(9))


def dominance_bucket(factor: float) -> float:
    """Map a dominance factor to its Figure 7 bucket center.

    Buckets are [.05,.15) -> .1, ..., [.85, 1.0] -> .9 (the top bucket absorbs
    full dominance).
    """
    for center in DOMINANCE_BUCKETS:
        if factor < center + 0.05:
            return center
    return DOMINANCE_BUCKETS[-1]


@dataclass
class DominanceProfile:
    """Dominance factors and dominant-value precision for one snapshot."""

    factors: Dict[DataItem, float]
    precision_by_bucket: Dict[float, Tuple[int, int]]  # bucket -> (correct, total)

    def distribution(self) -> Dict[float, float]:
        """Figure 7 (left): share of items per dominance-factor bucket."""
        if not self.factors:
            return {b: 0.0 for b in DOMINANCE_BUCKETS}
        counts: Dict[float, int] = {b: 0 for b in DOMINANCE_BUCKETS}
        for factor in self.factors.values():
            counts[dominance_bucket(factor)] += 1
        n = len(self.factors)
        return {b: counts[b] / n for b in DOMINANCE_BUCKETS}

    def precision_curve(self) -> Dict[float, Optional[float]]:
        """Figure 7 (right): dominant-value precision per bucket."""
        curve: Dict[float, Optional[float]] = {}
        for bucket in DOMINANCE_BUCKETS:
            correct, total = self.precision_by_bucket.get(bucket, (0, 0))
            curve[bucket] = correct / total if total else None
        return curve

    def overall_precision(self) -> float:
        """Precision of dominant values over all gold items (VOTE strategy)."""
        correct = sum(c for c, _t in self.precision_by_bucket.values())
        total = sum(t for _c, t in self.precision_by_bucket.values())
        return correct / total if total else 0.0

    def fraction_with_factor_at_least(self, threshold: float) -> float:
        """Share of items whose dominance factor is >= threshold."""
        if not self.factors:
            return 0.0
        hits = sum(1 for f in self.factors.values() if f >= threshold)
        return hits / len(self.factors)


def dominance_profile(
    dataset: Dataset, gold: Optional[GoldStandard] = None
) -> DominanceProfile:
    """Compute Figure 7's inputs; precision buckets need a gold standard."""
    factors: Dict[DataItem, float] = {}
    precision: Dict[float, List[int]] = {}
    for item in dataset.items:
        clustering = dataset.clustering(item)
        if not clustering.clusters:
            continue
        factor = clustering.dominance_factor
        factors[item] = factor
        if gold is None or item not in gold:
            continue
        bucket = dominance_bucket(factor)
        cell = precision.setdefault(bucket, [0, 0])
        cell[1] += 1
        if gold.is_correct(dataset, item, clustering.dominant.representative):
            cell[0] += 1
    return DominanceProfile(
        factors=factors,
        precision_by_bucket={b: (c, t) for b, (c, t) in precision.items()},
    )


def top_k_value_precision(
    dataset: Dataset, gold: GoldStandard, k: int, max_factor: float = 1.0
) -> Tuple[float, int]:
    """Precision of the k-th dominant value on low-dominance items.

    Supports the paper's observation that for items with dominance factor
    ~0.1, the first / second / third dominant values have precision
    .43/.33/.12.  Returns (precision, #items considered).
    """
    correct = total = 0
    for item in gold.items:
        clustering = dataset.clustering(item)
        if not clustering.clusters or clustering.dominance_factor > max_factor:
            continue
        if len(clustering.clusters) < k:
            continue
        total += 1
        candidate = clustering.clusters[k - 1].representative
        if gold.is_correct(dataset, item, candidate):
            correct += 1
    return (correct / total if total else 0.0), total
