"""Asyncio HTTP front-end over the truth-serving layer.

The store answers a point lookup in ~8µs; this module is what stands
between that dictionary read and real traffic — a socket, an event loop,
and live version churn.  :class:`TruthServer` wraps one
:class:`~repro.serving.TruthStore` in a stdlib ``asyncio`` HTTP/1.1 server
(keep-alive connections, no framework required) with these endpoints:

========================  ==================================================
``GET /health``           liveness + store version/day/size (auth-exempt)
``GET /lookup``           ``?object=&attribute=[&method=]`` point lookup
``GET /trust``            ``?source=[&method=]`` per-source trustworthiness
``GET /ensemble``         ``?object=&attribute=`` majority across methods
``GET /dump``             chunked NDJSON bulk dump, pinned to one snapshot
``GET /events``           SSE stream of publish/progress events
========================  ==================================================

Every answer carries an ``X-Store-Version`` header naming the snapshot it
was computed from.  Each request pins :meth:`TruthStore.snapshot` exactly
once, so a response is always internally consistent even while a publisher
swaps versions underneath — the ``/dump`` stream holds its snapshot for the
whole walk and can never interleave two versions.  Publishes reach SSE
subscribers through a store listener bridged onto the event loop with
``call_soon_threadsafe`` (publishers are usually plain threads: the solve
loop of ``cli serve --listen``, or the load-test publisher in the bench).

Token auth and structured request logging are composable middleware
(:mod:`repro.middleware`), applied outermost-first around the route
dispatch; ``/health`` stays reachable without credentials so probes work.

Like the native engine's numba fallback, a **starlette/uvicorn fast path**
is optional: ``backend="starlette"`` builds the same routes as an ASGI app
(:func:`create_asgi_app`) and serves it with uvicorn's C accelerators when
both packages are importable, and otherwise degrades to the stdlib server
with a single :class:`RuntimeWarning` per process — same behaviour, same
endpoints, nothing else changes.
"""

from __future__ import annotations

import asyncio
import importlib.util
import json
import threading
import warnings
from typing import AsyncIterator, Dict, Optional, Sequence
from urllib.parse import parse_qsl, urlsplit

from repro.errors import FusionError
from repro.middleware import (
    Middleware,
    Request,
    Response,
    compose,
    json_response,
    request_logging,
    token_auth,
)
from repro.serving import StoreSnapshot, TruthStore

__all__ = [
    "TruthServer",
    "ServerHandle",
    "run_in_thread",
    "create_asgi_app",
    "resolve_backend",
    "HAVE_STARLETTE",
]

#: Chunk granularity of the NDJSON bulk dump (items per flushed chunk).
DUMP_BATCH = 256
#: Idle SSE subscriptions get a comment frame this often (seconds) so dead
#: client sockets surface as write errors instead of leaking queues.
SSE_KEEPALIVE_SECONDS = 15.0

HAVE_STARLETTE = bool(
    importlib.util.find_spec("starlette")
    and importlib.util.find_spec("uvicorn")
)

_WARNED_BACKEND = False


def warn_unavailable() -> None:
    """Warn — once per process — that starlette was requested but absent."""
    global _WARNED_BACKEND
    if not _WARNED_BACKEND:
        _WARNED_BACKEND = True
        warnings.warn(
            "starlette backend requested but starlette/uvicorn are not "
            "installed; falling back to the stdlib asyncio server "
            "(identical endpoints)",
            RuntimeWarning,
            stacklevel=3,
        )


def resolve_backend(backend: str) -> str:
    """Validate a backend request, degrading ``starlette`` when absent."""
    if backend not in ("stdlib", "starlette"):
        raise FusionError(
            f"unknown server backend {backend!r}: expected stdlib|starlette"
        )
    if backend == "starlette" and not HAVE_STARLETTE:
        warn_unavailable()
        return "stdlib"
    return backend


def _snapshot_info(snap: StoreSnapshot) -> Dict[str, object]:
    return {
        "version": snap.version,
        "day": snap.day,
        "n_items": snap.n_items,
        "methods": list(snap.methods),
    }


def _jsonable(value: object) -> object:
    """Store values are ``float | str`` — both are JSON-native."""
    return value


class TruthServer:
    """One store behind an asyncio HTTP server (see module docstring).

    The server owns no solver: publishers (any thread) push new versions
    into ``store`` and every in-flight request keeps answering from the
    snapshot it pinned.  ``auth_token`` and ``log_stream`` are conveniences
    that prepend the two shipped middlewares; ``middleware`` appends
    arbitrary extra ones (outermost first).
    """

    def __init__(
        self,
        store: TruthStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auth_token: Optional[str] = None,
        log_stream=None,
        middleware: Sequence[Middleware] = (),
    ):
        self.store = store
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._subscribers: "set[asyncio.Queue]" = set()
        self._routes = {
            "/health": self._health,
            "/lookup": self._lookup,
            "/trust": self._trust,
            "/ensemble": self._ensemble,
            "/dump": self._dump,
            "/events": self._events,
        }
        chain = []
        if log_stream is not None:
            chain.append(request_logging(log_stream))
        if auth_token is not None:
            chain.append(token_auth(auth_token))
        chain.extend(middleware)
        self._handler = compose(chain, self._dispatch)
        store.add_listener(self._on_publish)

    # ---------------------------------------------------------------- routes
    async def _dispatch(self, request: Request) -> Response:
        if request.method != "GET":
            return json_response(
                {"error": f"method {request.method} not allowed"},
                status=405,
                headers={"Allow": "GET"},
            )
        route = self._routes.get(request.path)
        if route is None:
            return json_response(
                {"error": f"unknown path {request.path}",
                 "paths": sorted(self._routes)},
                status=404,
            )
        return await route(request)

    async def _health(self, request: Request) -> Response:
        snap = self.store.snapshot()
        payload = {"status": "ok", **_snapshot_info(snap)}
        return json_response(
            payload, headers={"X-Store-Version": str(snap.version)}
        )

    def _require(self, request: Request, *names: str) -> Optional[Response]:
        missing = [name for name in names if not request.query.get(name)]
        if missing:
            return json_response(
                {"error": f"missing query parameter(s): {', '.join(missing)}"},
                status=400,
            )
        return None

    async def _lookup(self, request: Request) -> Response:
        bad = self._require(request, "object", "attribute")
        if bad is not None:
            return bad
        snap = self.store.snapshot()
        answer = self.store.lookup(
            request.query["object"],
            request.query["attribute"],
            method=request.query.get("method"),
            snapshot=snap,
        )
        return self._answer_response(request, snap, answer)

    async def _ensemble(self, request: Request) -> Response:
        bad = self._require(request, "object", "attribute")
        if bad is not None:
            return bad
        snap = self.store.snapshot()
        answer = self.store.ensemble(
            request.query["object"], request.query["attribute"], snapshot=snap
        )
        return self._answer_response(request, snap, answer)

    def _answer_response(self, request, snap, answer) -> Response:
        version_header = {"X-Store-Version": str(snap.version)}
        if answer is None:
            return json_response(
                {
                    "error": "no truth",
                    "object": request.query["object"],
                    "attribute": request.query["attribute"],
                    "version": snap.version,
                },
                status=404,
                headers=version_header,
            )
        return json_response(
            {
                "object": answer.object_id,
                "attribute": answer.attribute,
                "value": _jsonable(answer.value),
                "method": answer.method,
                "version": answer.version,
                "day": answer.day,
            },
            headers=version_header,
        )

    async def _trust(self, request: Request) -> Response:
        bad = self._require(request, "source")
        if bad is not None:
            return bad
        snap = self.store.snapshot()
        method = request.query.get("method")
        value = self.store.trust(
            request.query["source"], method=method, snapshot=snap
        )
        version_header = {"X-Store-Version": str(snap.version)}
        if value is None:
            return json_response(
                {
                    "error": "unknown source or method",
                    "source": request.query["source"],
                    "version": snap.version,
                },
                status=404,
                headers=version_header,
            )
        return json_response(
            {
                "source": request.query["source"],
                "trust": value,
                "method": method or (snap.methods[0] if snap.methods else None),
                "version": snap.version,
                "day": snap.day,
            },
            headers=version_header,
        )

    async def _dump(self, request: Request) -> Response:
        """Bulk dump: chunked NDJSON, every line from one pinned snapshot."""
        snap = self.store.snapshot()
        method = request.query.get("method")

        async def stream() -> AsyncIterator[bytes]:
            batch = []
            for (object_id, attribute), values in sorted(snap.truths.items()):
                if method is not None:
                    if method not in values:
                        continue
                    payload_values = {method: _jsonable(values[method])}
                else:
                    payload_values = {
                        name: _jsonable(value)
                        for name, value in values.items()
                    }
                batch.append(json.dumps(
                    {
                        "object": object_id,
                        "attribute": attribute,
                        "values": payload_values,
                        "version": snap.version,
                    },
                    ensure_ascii=False,
                ))
                if len(batch) >= DUMP_BATCH:
                    yield ("\n".join(batch) + "\n").encode("utf-8")
                    batch = []
                    await asyncio.sleep(0)  # let other requests interleave
            if batch:
                yield ("\n".join(batch) + "\n").encode("utf-8")

        return Response(
            status=200,
            headers={
                "Content-Type": "application/x-ndjson; charset=utf-8",
                "X-Store-Version": str(snap.version),
            },
            stream=stream(),
        )

    async def _events(self, request: Request) -> Response:
        """SSE: publish/progress events as they happen (plus keep-alives)."""
        queue: asyncio.Queue = asyncio.Queue()
        snap = self.store.snapshot()

        async def stream() -> AsyncIterator[bytes]:
            self._subscribers.add(queue)
            try:
                yield _sse_frame("hello", _snapshot_info(snap))
                while True:
                    try:
                        event, data = await asyncio.wait_for(
                            queue.get(), SSE_KEEPALIVE_SECONDS
                        )
                    except asyncio.TimeoutError:
                        yield b": keep-alive\n\n"
                        continue
                    yield _sse_frame(event, data)
            finally:
                self._subscribers.discard(queue)

        return Response(
            status=200,
            headers={
                "Content-Type": "text/event-stream",
                "Cache-Control": "no-cache",
                "X-Store-Version": str(snap.version),
            },
            stream=stream(),
        )

    # ---------------------------------------------------------------- events
    def _on_publish(self, snapshot: StoreSnapshot) -> None:
        """Store listener: runs in the *publisher's* thread, under the
        publish lock — hop onto the event loop and return immediately."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(
                self._broadcast_local, "publish", _snapshot_info(snapshot)
            )
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def broadcast(self, event: str, data: Dict[str, object]) -> None:
        """Thread-safe fan-out of a custom event to every SSE subscriber.

        ``cli serve --listen`` uses this to surface per-day solve progress
        (compile/solve seconds, rounds) while a day is being fused.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._broadcast_local, event, dict(data))
        except RuntimeError:
            pass

    def _broadcast_local(self, event: str, data: Dict[str, object]) -> None:
        for queue in self._subscribers:
            queue.put_nowait((event, data))

    # ------------------------------------------------------------- transport
    async def start(self) -> None:
        """Bind and start accepting (resolves ``port`` when it was 0)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                # 3.12's wait_closed also waits for in-flight connections —
                # a live SSE subscription would park shutdown forever, so
                # bound the wait; the loop teardown cancels the stragglers.
                await asyncio.wait_for(self._server.wait_closed(), timeout=1.0)
            except asyncio.TimeoutError:
                pass
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                try:
                    response = await self._handler(request)
                except Exception as error:  # route bug: report, keep serving
                    response = json_response(
                        {"error": f"internal error: {error}"}, status=500
                    )
                keep_alive = self._keep_alive(request, response)
                try:
                    await self._write_response(writer, response, keep_alive)
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass  # loop teardown cancelling a parked connection: just close
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    def _keep_alive(request: Request, response: Response) -> bool:
        if response.stream is not None:
            return False  # streamed responses own the connection
        connection = request.headers.get("connection", "").lower()
        if request.http_version == "1.0":
            return connection == "keep-alive"
        return connection != "close"

    async def _read_request(self, reader) -> Optional[Request]:
        try:
            blob = await reader.readuntil(b"\r\n\r\n")
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionResetError,
        ):
            return None
        try:
            head = blob.decode("latin-1")
            request_line, *header_lines = head.split("\r\n")
            method, target, proto = request_line.split(" ", 2)
            headers: Dict[str, str] = {}
            for line in header_lines:
                if not line:
                    continue
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        except ValueError:
            return None
        # GET requests should have no body; drain one if a client sent it so
        # the next keep-alive request starts at a message boundary.
        length = int(headers.get("content-length", 0) or 0)
        if length:
            try:
                await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        parts = urlsplit(target)
        return Request(
            method=method.upper(),
            path=parts.path or "/",
            query=dict(parse_qsl(parts.query)),
            headers=headers,
            http_version="1.0" if proto.endswith("/1.0") else "1.1",
        )

    async def _write_response(
        self, writer, response: Response, keep_alive: bool
    ) -> None:
        head = [f"HTTP/1.1 {response.status} {response.reason}"]
        headers = dict(response.headers)
        headers.setdefault("Content-Type", "application/json; charset=utf-8")
        if response.stream is None:
            headers["Content-Length"] = str(len(response.body))
        else:
            headers["Transfer-Encoding"] = "chunked"
        headers["Connection"] = "keep-alive" if keep_alive else "close"
        head.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        if response.stream is None:
            writer.write(response.body)
            await writer.drain()
            return
        stream = response.stream
        try:
            async for chunk in stream:
                if not chunk:
                    continue
                writer.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            aclose = getattr(stream, "aclose", None)
            if aclose is not None:
                try:
                    await aclose()
                except RuntimeError:
                    pass


def _sse_frame(event: str, data: Dict[str, object]) -> bytes:
    return (
        f"event: {event}\ndata: {json.dumps(data, ensure_ascii=False)}\n\n"
    ).encode("utf-8")


# --------------------------------------------------------------------------
# Thread embedding: tests, the bench harness, and `cli serve --listen` run
# the event loop on a background thread while the calling thread publishes.
# --------------------------------------------------------------------------
class ServerHandle:
    """A running server on a background thread (see :func:`run_in_thread`)."""

    def __init__(self, server, loop, thread, stop_event):
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return self.server.url

    def broadcast(self, event: str, data: Dict[str, object]) -> None:
        self.server.broadcast(event, data)

    def stop(self, timeout: float = 5.0) -> None:
        try:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        except RuntimeError:
            pass  # loop already gone
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_in_thread(
    store: TruthStore,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    backend: str = "stdlib",
    **server_kwargs,
) -> ServerHandle:
    """Start a :class:`TruthServer` on a daemon thread; returns its handle.

    The bound port is resolved before this returns, so callers can connect
    immediately.  ``backend="starlette"`` degrades to the stdlib server
    with one warning when starlette/uvicorn are missing (the fast path is
    only reachable where those packages exist — same endpoints either way).
    """
    backend = resolve_backend(backend)
    if backend == "starlette":  # pragma: no cover - needs starlette+uvicorn
        return _run_starlette_in_thread(store, host, port, **server_kwargs)
    started = threading.Event()
    holder: Dict[str, object] = {}

    async def _main() -> None:
        server = TruthServer(store, host, port, **server_kwargs)
        try:
            await server.start()
        except OSError as error:
            holder["error"] = error
            started.set()
            return
        stop_event = asyncio.Event()
        holder.update(
            server=server,
            loop=asyncio.get_running_loop(),
            stop_event=stop_event,
        )
        started.set()
        try:
            await stop_event.wait()
        finally:
            await server.stop()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()),
        name="truth-server",
        daemon=True,
    )
    thread.start()
    started.wait()
    if "error" in holder:
        thread.join()
        raise holder["error"]  # type: ignore[misc]
    return ServerHandle(
        holder["server"], holder["loop"], thread, holder["stop_event"]
    )


# --------------------------------------------------------------------------
# Optional starlette/uvicorn fast path.  The ASGI app reuses the *same*
# middleware-wrapped handler as the stdlib server, so auth, logging, routes
# and streaming semantics are identical — uvicorn only replaces the HTTP
# transport underneath.
# --------------------------------------------------------------------------
def create_asgi_app(
    store: TruthStore,
    *,
    auth_token: Optional[str] = None,
    log_stream=None,
    middleware: Sequence[Middleware] = (),
):  # pragma: no cover - needs starlette installed
    """Build a Starlette app over ``store`` (raises without starlette)."""
    if not HAVE_STARLETTE:
        raise FusionError(
            "create_asgi_app needs starlette and uvicorn installed; "
            "use the stdlib TruthServer otherwise"
        )
    from starlette.applications import Starlette
    from starlette.responses import Response as StarletteResponse
    from starlette.responses import StreamingResponse
    from starlette.routing import Route

    server = TruthServer(
        store,
        auth_token=auth_token,
        log_stream=log_stream,
        middleware=middleware,
    )

    def endpoint_for(path: str):
        async def endpoint(request):
            server._loop = asyncio.get_running_loop()
            ours = Request(
                method=request.method,
                path=path,
                query=dict(request.query_params),
                headers={
                    name.lower(): value
                    for name, value in request.headers.items()
                },
            )
            response = await server._handler(ours)
            if response.stream is not None:
                return StreamingResponse(
                    response.stream,
                    status_code=response.status,
                    headers=response.headers,
                )
            return StarletteResponse(
                response.body,
                status_code=response.status,
                headers=response.headers,
            )

        return endpoint

    routes = [
        Route(path, endpoint_for(path), methods=["GET"])
        for path in server._routes
    ]
    return Starlette(routes=routes)


def _run_starlette_in_thread(
    store, host, port, **server_kwargs
):  # pragma: no cover - needs starlette+uvicorn
    import socket

    import uvicorn

    app = create_asgi_app(store, **server_kwargs)
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    bound_port = sock.getsockname()[1]
    config = uvicorn.Config(app, log_level="warning")
    uv_server = uvicorn.Server(config)
    thread = threading.Thread(
        target=lambda: uv_server.run(sockets=[sock]),
        name="truth-server-uvicorn",
        daemon=True,
    )
    thread.start()

    class _UvicornHandle:
        def __init__(self):
            self.port = bound_port
            self.url = f"http://{host}:{bound_port}"

        def broadcast(self, event, data):
            pass  # custom events need the stdlib backend's loop bridge

        def stop(self, timeout: float = 5.0):
            uv_server.should_exit = True
            thread.join(timeout)

        def __enter__(self):
            return self

        def __exit__(self, *exc_info):
            self.stop()

    return _UvicornHandle()
