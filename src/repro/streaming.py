"""Multi-method streaming over daily snapshots or claim deltas.

One :class:`StreamRunner` owns a single :class:`~repro.core.delta.SeriesCompiler`
and one :class:`~repro.fusion.spec.FusionSession` per method, so each day is
diff-compiled **once** and every method solves on the shared problem — the
streaming analogue of the one-`FusionProblem`-many-methods pattern the
experiment tables use.  Copy-structure tracking is switched on automatically
when any requested method runs copy detection.

Feed it full snapshots (:meth:`StreamRunner.push`) or explicit
:class:`~repro.core.delta.ClaimDelta` change sets (:meth:`StreamRunner.push_delta`);
either way each step returns the per-method :class:`FusionResult` plus the
day's compilation statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.dataset import Dataset
from repro.core.delta import ClaimDelta, DayCompilation, DayStats, SeriesCompiler
from repro.fusion.base import FusionResult
from repro.fusion.registry import make_method
from repro.fusion.spec import FusionSession


@dataclass
class StreamStep:
    """One day's outcome across every method of the stream."""

    day: str
    results: Dict[str, FusionResult]
    stats: DayStats
    compile_seconds: float
    solve_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + sum(self.solve_seconds.values())


class StreamRunner:
    """Sessions for several methods advancing over one shared compiler.

    With ``workers > 1`` the methods of each day solve concurrently: the
    parent diff-compiles the day once (days stay sequential — warm starts
    need day ``d-1`` before day ``d``), exports the compiled problem to
    shared memory under one scheduler key, and ships each worker its
    method's carried trust.  Workers return raw trust/selection arrays and
    the owning sessions absorb them, so session state — and every number —
    is identical to the serial path.
    """

    def __init__(
        self,
        method_names: Sequence[str],
        method_kwargs: Optional[Dict[str, dict]] = None,
        *,
        warm_start: bool = True,
        compiler: Optional[SeriesCompiler] = None,
        workers: int = 0,
    ):
        self.method_names = list(method_names)
        self.method_kwargs = {
            name: dict((method_kwargs or {}).get(name, {}))
            for name in self.method_names
        }
        self.sessions: Dict[str, FusionSession] = {}
        for name in self.method_names:
            self.sessions[name] = FusionSession(
                make_method(name, **self.method_kwargs[name]),
                warm_start=warm_start,
            )
        if compiler is None:
            # The session spec is the single source of truth for whether a
            # method runs copy detection (the registry's `copying` column is
            # Table 6 rendering data).
            compiler = SeriesCompiler(
                track_copy_structures=any(
                    session.spec.uses_copy_detection
                    for session in self.sessions.values()
                )
            )
        self.compiler = compiler
        self.workers = workers
        self._scheduler = None
        self.steps: List[StreamStep] = []

    # ---------------------------------------------------------------- plumbing
    def _solver(self):
        """The lazily-created per-runner scheduler (None when serial)."""
        if self.workers <= 1 or len(self.method_names) < 2:
            return None
        if self._scheduler is None:
            from repro.parallel import SolveScheduler

            scheduler = SolveScheduler(workers=self.workers)
            if not scheduler.parallel:
                # No usable shared memory on this platform: remember the
                # decision (workers=1) so we don't re-probe every day.
                scheduler.close()
                self.workers = 1
                return None
            self._scheduler = scheduler
        return self._scheduler

    def close(self) -> None:
        """Release the worker pool and shared segments (if any)."""
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None

    def __enter__(self) -> "StreamRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- stepping
    def push(self, dataset: Dataset) -> StreamStep:
        """Ingest a full daily snapshot and advance every session."""
        started = time.perf_counter()
        day = self.compiler.ingest(dataset)
        return self._step(day, started)

    def push_delta(self, delta: ClaimDelta) -> StreamStep:
        """Apply an explicit claim delta and advance every session."""
        started = time.perf_counter()
        day = self.compiler.apply_delta(delta)
        return self._step(day, started)

    def _step(self, day: DayCompilation, started: float) -> StreamStep:
        problem = day.problem()
        compile_seconds = time.perf_counter() - started
        results: Dict[str, FusionResult] = {}
        solve_seconds: Dict[str, float] = {}
        scheduler = self._solver()
        if scheduler is not None:
            results = self._step_parallel(scheduler, problem, day)
            solve_seconds = {
                name: results[name].runtime_seconds for name in self.method_names
            }
        else:
            for name in self.method_names:
                result = self.sessions[name].step(problem, day=day.day)
                result.extras["compile"] = day.stats
                results[name] = result
                solve_seconds[name] = result.runtime_seconds
        step = StreamStep(
            day=day.day,
            results=results,
            stats=day.stats,
            compile_seconds=compile_seconds,
            solve_seconds=solve_seconds,
        )
        self.steps.append(step)
        return step

    def _step_parallel(
        self, scheduler, problem, day: DayCompilation
    ) -> Dict[str, FusionResult]:
        """Solve one day's methods concurrently; sessions absorb the outcomes."""
        from repro.parallel import MethodCall, SolveJob

        scheduler.register(
            "stream-day",
            problem,
            with_copy=any(
                self.sessions[name].spec.uses_copy_detection
                for name in self.method_names
            ),
        )
        warm: Dict[str, object] = {
            name: self.sessions[name].resume_trust(problem)
            for name in self.method_names
        }
        jobs = [
            SolveJob(
                problem="stream-day",
                calls=[
                    MethodCall(
                        name,
                        kwargs=self.method_kwargs[name],
                        warm_trust=warm[name],
                    )
                ],
                raw=True,
            )
            for name in self.method_names
        ]
        outcomes = scheduler.run(jobs)
        results: Dict[str, FusionResult] = {}
        for name, outcome in zip(self.method_names, outcomes):
            call = outcome.calls[0]
            result = self.sessions[name].absorb_step(
                problem,
                {"trust": call.trust},
                call.selected,
                call.rounds,
                call.converged,
                call.runtime_seconds,
                day=day.day,
                warmed=warm[name] is not None,
            )
            result.extras["compile"] = day.stats
            results[name] = result
        return results

    @property
    def days(self) -> List[str]:
        return [step.day for step in self.steps]
