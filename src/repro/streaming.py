"""Multi-method streaming over daily snapshots or claim deltas.

One :class:`StreamRunner` owns a single :class:`~repro.core.delta.SeriesCompiler`
and one :class:`~repro.fusion.spec.FusionSession` per method, so each day is
diff-compiled **once** and every method solves on the shared problem — the
streaming analogue of the one-`FusionProblem`-many-methods pattern the
experiment tables use.  Copy-structure tracking is switched on automatically
when any requested method runs copy detection.

Feed it full snapshots (:meth:`StreamRunner.push`) or explicit
:class:`~repro.core.delta.ClaimDelta` change sets (:meth:`StreamRunner.push_delta`);
either way each step returns the per-method :class:`FusionResult` plus the
day's compilation statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.dataset import Dataset
from repro.core.delta import ClaimDelta, DayCompilation, DayStats, SeriesCompiler
from repro.fusion.base import FusionResult
from repro.fusion.registry import make_method
from repro.fusion.spec import FusionSession


@dataclass
class StreamStep:
    """One day's outcome across every method of the stream."""

    day: str
    results: Dict[str, FusionResult]
    stats: DayStats
    compile_seconds: float
    solve_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + sum(self.solve_seconds.values())


class StreamRunner:
    """Sessions for several methods advancing over one shared compiler."""

    def __init__(
        self,
        method_names: Sequence[str],
        method_kwargs: Optional[Dict[str, dict]] = None,
        *,
        warm_start: bool = True,
        compiler: Optional[SeriesCompiler] = None,
    ):
        self.method_names = list(method_names)
        self.sessions: Dict[str, FusionSession] = {}
        for name in self.method_names:
            kwargs = (method_kwargs or {}).get(name, {})
            self.sessions[name] = FusionSession(
                make_method(name, **kwargs), warm_start=warm_start
            )
        if compiler is None:
            # The session spec is the single source of truth for whether a
            # method runs copy detection (the registry's `copying` column is
            # Table 6 rendering data).
            compiler = SeriesCompiler(
                track_copy_structures=any(
                    session.spec.uses_copy_detection
                    for session in self.sessions.values()
                )
            )
        self.compiler = compiler
        self.steps: List[StreamStep] = []

    # ---------------------------------------------------------------- stepping
    def push(self, dataset: Dataset) -> StreamStep:
        """Ingest a full daily snapshot and advance every session."""
        started = time.perf_counter()
        day = self.compiler.ingest(dataset)
        return self._step(day, started)

    def push_delta(self, delta: ClaimDelta) -> StreamStep:
        """Apply an explicit claim delta and advance every session."""
        started = time.perf_counter()
        day = self.compiler.apply_delta(delta)
        return self._step(day, started)

    def _step(self, day: DayCompilation, started: float) -> StreamStep:
        problem = day.problem()
        compile_seconds = time.perf_counter() - started
        results: Dict[str, FusionResult] = {}
        solve_seconds: Dict[str, float] = {}
        for name in self.method_names:
            result = self.sessions[name].step(problem, day=day.day)
            result.extras["compile"] = day.stats
            results[name] = result
            solve_seconds[name] = result.runtime_seconds
        step = StreamStep(
            day=day.day,
            results=results,
            stats=day.stats,
            compile_seconds=compile_seconds,
            solve_seconds=solve_seconds,
        )
        self.steps.append(step)
        return step

    @property
    def days(self) -> List[str]:
        return [step.day for step in self.steps]
