"""Multi-method streaming over daily snapshots or claim deltas.

One :class:`StreamRunner` owns a single :class:`~repro.core.delta.SeriesCompiler`
and one :class:`~repro.fusion.spec.FusionSession` per method, so each day is
diff-compiled **once** and every method solves on the shared problem — the
streaming analogue of the one-`FusionProblem`-many-methods pattern the
experiment tables use.  Copy-structure tracking is switched on automatically
when any requested method runs copy detection.

Feed it full snapshots (:meth:`StreamRunner.push`) or explicit
:class:`~repro.core.delta.ClaimDelta` change sets (:meth:`StreamRunner.push_delta`);
either way each step returns the per-method :class:`FusionResult` plus the
day's compilation statistics.

**Sharded streaming** (``StreamRunner(shards=K)``) splits the stream by
object key (the stable crc32 hash :func:`repro.core.shard.shard_of_object`,
the same assignment :class:`~repro.core.shard.ShardedCorpus` uses) across K
per-shard :class:`SeriesCompiler`\\ s, so each day's diff, store insert, and
re-bucketing runs over 1/K of the corpus.  ``cross_shard="exact"`` computes
the day's Equation-(3) medians globally (two-phase compile:
:meth:`SeriesCompiler.begin_ingest` → merged medians →
:meth:`SeriesCompiler.finish`) and splices the per-shard compilations back
into arrays bit-identical to the unsharded daily compile — selections and
trust match the unsharded runner exactly.  ``cross_shard="independent"``
keeps every shard local (its own medians, trust, copy evidence): per-shard
sessions solve K smaller problems (fanned across workers when enabled) and
each day's per-method results merge by disjoint-item union with
claim-weighted mean trust, exactly like
:meth:`repro.serving.TruthStore.publish_shards`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar import ColumnarView, CompiledClusters
from repro.core.dataset import Dataset
from repro.core.delta import (
    ClaimDelta,
    DayCompilation,
    DayStats,
    SeriesCompiler,
    concat_compiled,
)
from repro.core.records import DataItem, Value
from repro.core.shard import shard_of_object
from repro.errors import ConfigError, FusionError
from repro.fusion.base import FusionResult
from repro.fusion.registry import make_method
from repro.fusion.spec import FusionSession


@dataclass(frozen=True)
class _ShardSlice:
    """A per-shard snapshot facade: exactly what ``begin_ingest`` reads."""

    day: str
    attributes: object
    columnar: ColumnarView


class ShardedStreamCompiler:
    """K per-shard series compilers diffing one stream's days independently.

    Items are hash-assigned to shards by object key, so each shard's claim
    universe is disjoint and its :class:`SeriesCompiler` sees exactly the
    subsequence of the stream that touches it — 1/K of the diffing, store
    growth, and dirty-item re-bucketing per day.

    In **exact** mode the runner maintains a *global* item directory (codes
    assigned in the same first-arrival order the unsharded compiler's union
    universe uses), finishes every shard under the day's global Equation-(3)
    medians, and splices the remapped per-shard compilations back in global
    item order — producing solver arrays bit-identical to the unsharded
    daily compile (claim order, cluster order, source codes: everything the
    float-summation order of the trust kernels depends on).  In
    **independent** mode each shard's day stands alone.
    """

    def __init__(
        self,
        n_shards: int,
        cross_shard: str = "exact",
        track_copy_structures: bool = False,
    ):
        if n_shards < 2:
            raise ConfigError(f"sharded streaming needs n_shards >= 2, got {n_shards}")
        if cross_shard not in ("exact", "independent"):
            raise ConfigError(f"unknown cross_shard mode {cross_shard!r}")
        self.n_shards = int(n_shards)
        self.cross_shard = cross_shard
        self.exact = cross_shard == "exact"
        self.track_copy_structures = track_copy_structures
        self.compilers = [
            SeriesCompiler(track_copy_structures=track_copy_structures)
            for _ in range(self.n_shards)
        ]
        # Global directories for the exact merge: item codes in first-arrival
        # day order (== the unsharded compiler's union codes), value codes in
        # any stable order (only the interned objects and floats matter).
        self._gitem_code: Dict[DataItem, int] = {}
        self._gitems: List[DataItem] = []
        self._gitem_attr: List[int] = []
        self._gvalue_code: Dict[Value, int] = {}
        self._gvalues: List[Value] = []
        self._gvalue_numeric: List[float] = []
        self._item_luts: List[np.ndarray] = [
            np.zeros(0, dtype=np.int64) for _ in range(self.n_shards)
        ]
        # Value luts are keyed to the *table object* they were built against:
        # a day's compiled arrays reference the value table its view was
        # built over, which compaction replaces (the old list survives on
        # the day's view) — so the lut follows the view, not the store.
        self._value_luts: List[Tuple[Optional[list], np.ndarray]] = [
            (None, np.zeros(0, dtype=np.int64)) for _ in range(self.n_shards)
        ]
        self._attr_code: Optional[Dict[str, int]] = None
        self._merged_view_cache: Optional[Tuple[int, int, ColumnarView]] = None
        #: object id -> shard memo: a stream hashes each object once, not
        #: once per day (the corpus is mostly stable day over day).
        self._obj_shard: Dict[str, int] = {}
        self.days: List[str] = []

    # ------------------------------------------------------------- splitting
    def shard_of(self, object_id: str) -> int:
        code = self._obj_shard.get(object_id)
        if code is None:
            code = shard_of_object(object_id, self.n_shards)
            self._obj_shard[object_id] = code
        return code

    def _split_snapshot(self, dataset: Dataset) -> List["_ShardSlice"]:
        """Slice one snapshot's columnar view into K per-shard views.

        One hash per distinct *object* (``item_shard_codes``) plus numpy
        masks over the claim columns — no per-claim Python loop, no
        re-built claim dicts.  Every slice keeps the **full source
        universe** (same list object, dataset order), so all K compilers
        intern sources identically and per-shard trust rows stay
        comparable (and mergeable) across shards.  Items and values are
        restricted to the shard; value codes are re-densified, which is
        unobservable downstream (only the interned objects, their float
        forms, and the order-isomorphic str ranks matter).
        """
        view = dataset.columnar
        shard_of = self.shard_of
        codes = np.fromiter(
            (shard_of(item.object_id) for item in view.items),
            dtype=np.int64,
            count=len(view.items),
        )
        slices = []
        for k in range(self.n_shards):
            item_positions = np.flatnonzero(codes == k)
            item_lut = np.full(len(view.items), -1, dtype=np.int64)
            item_lut[item_positions] = np.arange(
                len(item_positions), dtype=np.int64
            )
            mask = item_lut[view.claim_item] >= 0
            claim_item = item_lut[view.claim_item[mask]]
            global_values = view.claim_value[mask]
            referenced = np.unique(global_values)
            value_lut = np.full(len(view.values), -1, dtype=np.int64)
            value_lut[referenced] = np.arange(len(referenced), dtype=np.int64)
            counts = np.bincount(claim_item, minlength=len(item_positions))
            shard_view = ColumnarView(
                items=[view.items[int(i)] for i in item_positions],
                sources=view.sources,
                attr_names=view.attr_names,
                attr_specs=view.attr_specs,
                item_attr=view.item_attr[item_positions],
                item_start=np.concatenate((
                    np.zeros(1, dtype=np.int64),
                    np.cumsum(counts, dtype=np.int64),
                )),
                claim_item=claim_item,
                claim_source=view.claim_source[mask],
                claim_value=value_lut[global_values],
                claim_numeric=view.claim_numeric[mask],
                claim_granularity=view.claim_granularity[mask],
                values=[view.values[int(c)] for c in referenced],
                value_numeric=view.value_numeric[referenced],
                value_str_rank=view.value_str_rank[referenced],
            )
            slices.append(
                _ShardSlice(dataset.day, dataset.attributes, shard_view)
            )
        return slices

    def _split_delta(self, delta: ClaimDelta) -> List[ClaimDelta]:
        added: List[List[tuple]] = [[] for _ in range(self.n_shards)]
        retracted: List[List[tuple]] = [[] for _ in range(self.n_shards)]
        for entry in delta.added:
            added[self.shard_of(entry[1].object_id)].append(entry)
        for source_id, item in delta.retracted:
            retracted[self.shard_of(item.object_id)].append((source_id, item))
        return [
            ClaimDelta(
                day=delta.day,
                added=tuple(added[k]),
                retracted=tuple(retracted[k]),
                new_sources=delta.new_sources,
            )
            for k in range(self.n_shards)
        ]

    # ----------------------------------------------------- global directories
    def _gintern_item(self, item: DataItem) -> None:
        if item not in self._gitem_code:
            self._gitem_code[item] = len(self._gitems)
            self._gitems.append(item)
            self._gitem_attr.append(self._attr_code[item.attribute])

    def _gintern_value(self, value: Value, numeric: float) -> int:
        code = self._gvalue_code.get(value)
        if code is None:
            code = len(self._gvalues)
            self._gvalue_code[value] = code
            self._gvalues.append(value)
            self._gvalue_numeric.append(numeric)
        return code

    def _item_lut(self, k: int) -> np.ndarray:
        """Shard ``k``'s local→global item codes (items are never re-coded)."""
        lut = self._item_luts[k]
        items = self.compilers[k].store_items
        if len(lut) < len(items):
            tail = np.asarray(
                [self._gitem_code[item] for item in items[len(lut):]],
                dtype=np.int64,
            )
            lut = np.concatenate((lut, tail))
            self._item_luts[k] = lut
        return lut

    def _value_lut(self, k: int, view: ColumnarView) -> np.ndarray:
        """Shard ``k``'s local→global value codes for one day's view table."""
        table, lut = self._value_luts[k]
        values, numeric = view.values, view.value_numeric
        if table is not values:
            # New table object (first day, or the store compacted since):
            # rebuild against the day's own value table.
            lut = np.asarray(
                [
                    self._gintern_value(value, float(numeric[i]))
                    for i, value in enumerate(values)
                ],
                dtype=np.int64,
            )
        elif len(lut) < len(values):
            tail = np.asarray(
                [
                    self._gintern_value(values[i], float(numeric[i]))
                    for i in range(len(lut), len(values))
                ],
                dtype=np.int64,
            )
            lut = np.concatenate((lut, tail))
        self._value_luts[k] = (values, lut)
        return lut

    # --------------------------------------------------------------- the days
    def ingest(self, dataset: Dataset):
        """Diff a snapshot across the shards; returns the day (see _finish)."""
        if self._attr_code is None:
            self._attr_code = {
                name: i for i, name in enumerate(dataset.attributes.names)
            }
        if self.exact:
            for item in dataset.items:
                self._gintern_item(item)
        parts = self._split_snapshot(dataset)
        pendings = [
            compiler.begin_ingest(part)
            for compiler, part in zip(self.compilers, parts)
        ]
        return self._finish(pendings, dataset.day)

    def apply_delta(self, delta: ClaimDelta):
        """Apply an explicit change set across the shards."""
        if self._attr_code is None:
            raise FusionError(
                "apply_delta needs a prior ingest() to seed the stream"
            )
        if self.exact:
            for _source_id, item, _claim in delta.added:
                if item.attribute not in self._attr_code:
                    continue  # the shard compiler raises the schema error
                self._gintern_item(item)
        parts = self._split_delta(delta)
        pendings = [
            compiler.begin_delta(part)
            for compiler, part in zip(self.compilers, parts)
        ]
        return self._finish(pendings, delta.day)

    def _finish(self, pendings, day: str):
        attr_tol = None
        if self.exact:
            buckets = [
                compiler.pending_magnitudes(pending)
                for compiler, pending in zip(self.compilers, pendings)
            ]
            attr_tol = self.compilers[0].global_tolerances(buckets)
        days = [
            compiler.finish(pending, attr_tol=attr_tol)
            for compiler, pending in zip(self.compilers, pendings)
        ]
        self.days.append(day)
        if not self.exact:
            return days
        return self._merge(days, day, attr_tol)

    # --------------------------------------------------------- the exact merge
    @staticmethod
    def merged_stats(days: Sequence[DayCompilation]) -> DayStats:
        return DayStats(
            n_active_claims=sum(d.stats.n_active_claims for d in days),
            n_added_claims=sum(d.stats.n_added_claims for d in days),
            n_removed_claims=sum(d.stats.n_removed_claims for d in days),
            n_active_items=sum(d.stats.n_active_items for d in days),
            n_dirty_items=sum(d.stats.n_dirty_items for d in days),
            full_compile=any(d.stats.full_compile for d in days),
            compacted=any(d.stats.compacted for d in days),
            ingest_seconds=sum(d.stats.ingest_seconds for d in days),
        )

    def _remap(self, k: int, day: DayCompilation) -> CompiledClusters:
        """Shard-local item/value codes → global codes (structure untouched)."""
        compiled = day.compiled
        item_lut = self._item_lut(k)
        value_lut = self._value_lut(k, day.view)
        return CompiledClusters(
            item_index=item_lut[compiled.item_index],
            item_attr=compiled.item_attr,
            item_start=compiled.item_start,
            cluster_item=compiled.cluster_item,
            cluster_value=value_lut[compiled.cluster_value],
            cluster_support=compiled.cluster_support,
            claim_source=compiled.claim_source,
            claim_cluster=compiled.claim_cluster,
            claim_value=value_lut[compiled.claim_value],
            claim_granularity=compiled.claim_granularity,
        )

    def _merged_view(self) -> ColumnarView:
        """A solver-grade view over the global tables.

        The claim columns are empty: a merged day is already compiled, and
        nothing on the solve/serve path reads them (``restrict_sources`` and
        re-compilation are the documented exceptions — use an unsharded
        runner for those).  The view is cached and rebuilt only when the
        global directories grew, so a low-churn day pays nothing here.
        """
        key = (len(self._gitems), len(self._gvalues))
        if (
            self._merged_view_cache is not None
            and self._merged_view_cache[:2] == key
        ):
            return self._merged_view_cache[2]
        n = len(self._gitems)
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0, dtype=np.float64)
        view = ColumnarView(
            items=self._gitems,
            sources=self.compilers[0].store_sources,
            attr_names=list(self._attr_code),
            attr_specs=list(self.compilers[0]._attr_specs),
            item_attr=np.asarray(self._gitem_attr, dtype=np.int64),
            item_start=np.zeros(n + 1, dtype=np.int64),
            claim_item=empty_i,
            claim_source=empty_i,
            claim_value=empty_i,
            claim_numeric=empty_f,
            claim_granularity=empty_f,
            values=self._gvalues,
            value_numeric=np.asarray(self._gvalue_numeric, dtype=np.float64),
            value_str_rank=np.zeros(len(self._gvalues), dtype=np.float64),
        )
        self._merged_view_cache = (key[0], key[1], view)
        return view

    def _merge(
        self, days: List[DayCompilation], day: str, attr_tol: np.ndarray
    ) -> DayCompilation:
        parts = [
            self._remap(k, days[k])
            for k in range(self.n_shards)
            if len(days[k].compiled.item_index)
        ]
        if not parts:
            raise FusionError(f"day {day!r} holds no active claims")
        # One K-way segment merge (single stable sort over global item
        # codes) instead of K-1 pairwise splices rebuilding the result.
        merged = concat_compiled(parts)

        pair_counts = None
        if self.track_copy_structures:
            sames, shareds = zip(*(d.pair_counts for d in days))
            pair_counts = (sum(sames), sum(shareds))
        return DayCompilation(
            day=day,
            view=self._merged_view(),
            compiled=merged,
            attr_tol=attr_tol,
            claim_mask=None,
            sources=list(days[0].sources),
            source_codes=days[0].source_codes,
            stats=self.merged_stats(days),
            pair_counts=pair_counts,
        )


@dataclass
class StreamStep:
    """One day's outcome across every method of the stream."""

    day: str
    results: Dict[str, FusionResult]
    stats: DayStats
    compile_seconds: float
    solve_seconds: Dict[str, float] = field(default_factory=dict)
    #: Independent-mode sharded streams also keep the raw per-shard results
    #: (shard index -> method -> result); ``results`` holds their merge.
    shard_results: Optional[Dict[int, Dict[str, FusionResult]]] = None

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + sum(self.solve_seconds.values())


class StreamRunner:
    """Sessions for several methods advancing over one shared compiler.

    With ``workers > 1`` the methods of each day solve concurrently: the
    parent diff-compiles the day once (days stay sequential — warm starts
    need day ``d-1`` before day ``d``), exports the compiled problem to
    shared memory under one scheduler key, and ships each worker its
    method's carried trust.  Workers return raw trust/selection arrays and
    the owning sessions absorb them, so session state — and every number —
    is identical to the serial path.
    """

    def __init__(
        self,
        method_names: Sequence[str],
        method_kwargs: Optional[Dict[str, dict]] = None,
        *,
        warm_start: bool = True,
        compiler: Optional[SeriesCompiler] = None,
        workers: int = 0,
        shards: int = 1,
        cross_shard: str = "exact",
    ):
        self.method_names = list(method_names)
        self.method_kwargs = {
            name: dict((method_kwargs or {}).get(name, {}))
            for name in self.method_names
        }
        self.warm_start = warm_start
        self.sessions: Dict[str, FusionSession] = {}
        for name in self.method_names:
            self.sessions[name] = FusionSession(
                make_method(name, **self.method_kwargs[name]),
                warm_start=warm_start,
            )
        # The session spec is the single source of truth for whether a
        # method runs copy detection (the registry's `copying` column is
        # Table 6 rendering data).
        track_copy = any(
            session.spec.uses_copy_detection
            for session in self.sessions.values()
        )
        if cross_shard not in ("exact", "independent"):
            raise ConfigError(f"unknown cross_shard mode {cross_shard!r}")
        if int(shards) < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        self.n_shards = int(shards)
        self.cross_shard = cross_shard
        self.sharded: Optional[ShardedStreamCompiler] = None
        if self.n_shards > 1:
            if compiler is not None:
                raise ConfigError(
                    "shards and an external compiler are mutually exclusive"
                )
            self.sharded = ShardedStreamCompiler(
                self.n_shards,
                cross_shard=cross_shard,
                track_copy_structures=track_copy,
            )
            self.compiler = None
        else:
            if compiler is None:
                compiler = SeriesCompiler(track_copy_structures=track_copy)
            self.compiler = compiler
        #: Independent-mode per-shard sessions, created as shards go live.
        self._shard_sessions: Dict[int, Dict[str, FusionSession]] = {}
        self.workers = workers
        self._scheduler = None
        self.steps: List[StreamStep] = []

    # ---------------------------------------------------------------- plumbing
    def _solver(self):
        """The lazily-created per-runner scheduler (None when serial)."""
        jobs_per_day = len(self.method_names)
        if self.sharded is not None and not self.sharded.exact:
            jobs_per_day *= self.n_shards
        if self.workers <= 1 or jobs_per_day < 2:
            return None
        if self._scheduler is None:
            from repro.parallel import SolveScheduler

            scheduler = SolveScheduler(workers=self.workers)
            if not scheduler.parallel:
                # No usable shared memory on this platform: remember the
                # decision (workers=1) so we don't re-probe every day.
                scheduler.close()
                self.workers = 1
                return None
            self._scheduler = scheduler
        return self._scheduler

    def close(self) -> None:
        """Release the worker pool and shared segments (if any)."""
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None

    def __enter__(self) -> "StreamRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- stepping
    def push(self, dataset: Dataset) -> StreamStep:
        """Ingest a full daily snapshot and advance every session."""
        started = time.perf_counter()
        if self.sharded is None:
            return self._step(self.compiler.ingest(dataset), started)
        outcome = self.sharded.ingest(dataset)
        if self.sharded.exact:
            return self._step(outcome, started)
        return self._step_shards(outcome, started)

    def push_delta(self, delta: ClaimDelta) -> StreamStep:
        """Apply an explicit claim delta and advance every session."""
        started = time.perf_counter()
        if self.sharded is None:
            return self._step(self.compiler.apply_delta(delta), started)
        outcome = self.sharded.apply_delta(delta)
        if self.sharded.exact:
            return self._step(outcome, started)
        return self._step_shards(outcome, started)

    def _step(self, day: DayCompilation, started: float) -> StreamStep:
        problem = day.problem()
        compile_seconds = time.perf_counter() - started
        results: Dict[str, FusionResult] = {}
        solve_seconds: Dict[str, float] = {}
        scheduler = self._solver()
        if scheduler is not None:
            results = self._step_parallel(scheduler, problem, day)
            solve_seconds = {
                name: results[name].runtime_seconds for name in self.method_names
            }
        else:
            for name in self.method_names:
                result = self.sessions[name].step(problem, day=day.day)
                result.extras["compile"] = day.stats
                results[name] = result
                solve_seconds[name] = result.runtime_seconds
        step = StreamStep(
            day=day.day,
            results=results,
            stats=day.stats,
            compile_seconds=compile_seconds,
            solve_seconds=solve_seconds,
        )
        self.steps.append(step)
        return step

    # -------------------------------------------- independent sharded stepping
    def _shard_session(self, shard: int, name: str) -> FusionSession:
        sessions = self._shard_sessions.setdefault(shard, {})
        session = sessions.get(name)
        if session is None:
            session = FusionSession(
                make_method(name, **self.method_kwargs[name]),
                warm_start=self.warm_start,
            )
            sessions[name] = session
        return session

    def _step_shards(
        self, days: List[DayCompilation], started: float
    ) -> StreamStep:
        """Advance per-shard sessions on an independent-mode sharded day."""
        live = [
            k for k, day in enumerate(days) if day.stats.n_active_claims > 0
        ]
        if not live:
            raise FusionError("day holds no active claims in any shard")
        problems = {k: days[k].problem() for k in live}
        compile_seconds = time.perf_counter() - started
        day_id = days[0].day
        scheduler = self._solver()
        by_shard: Dict[int, Dict[str, FusionResult]] = {}
        if scheduler is not None:
            by_shard = self._solve_shards_parallel(
                scheduler, problems, days, day_id
            )
        else:
            for k in live:
                results_k: Dict[str, FusionResult] = {}
                for name in self.method_names:
                    result = self._shard_session(k, name).step(
                        problems[k], day=day_id
                    )
                    result.extras["compile"] = days[k].stats
                    results_k[name] = result
                by_shard[k] = results_k
        results, solve_seconds = self._merge_shard_results(
            days, live, by_shard
        )
        step = StreamStep(
            day=day_id,
            results=results,
            stats=ShardedStreamCompiler.merged_stats([days[k] for k in live]),
            compile_seconds=compile_seconds,
            solve_seconds=solve_seconds,
        )
        step.shard_results = by_shard
        self.steps.append(step)
        return step

    def _solve_shards_parallel(
        self, scheduler, problems, days, day_id
    ) -> Dict[int, Dict[str, FusionResult]]:
        """Fan the (shard, method) solves of one day across the pool."""
        from repro.parallel import MethodCall, SolveJob

        with_copy = any(
            self.sessions[name].spec.uses_copy_detection
            for name in self.method_names
        )
        live = sorted(problems)
        warm: Dict[tuple, object] = {}
        jobs = []
        for k in live:
            key = scheduler.register(
                f"stream-shard-{k}", problems[k], with_copy=with_copy
            )
            for name in self.method_names:
                warm[(k, name)] = self._shard_session(k, name).resume_trust(
                    problems[k]
                )
                jobs.append(
                    SolveJob(
                        problem=key,
                        calls=[
                            MethodCall(
                                name,
                                kwargs=self.method_kwargs[name],
                                warm_trust=warm[(k, name)],
                            )
                        ],
                        raw=True,
                        tag=(k, name),
                    )
                )
        outcomes = scheduler.run(jobs)
        by_shard: Dict[int, Dict[str, FusionResult]] = {}
        for job, outcome in zip(jobs, outcomes):
            k, name = job.tag
            call = outcome.calls[0]
            result = self._shard_session(k, name).absorb_step(
                problems[k],
                {"trust": call.trust},
                call.selected,
                call.rounds,
                call.converged,
                call.runtime_seconds,
                day=day_id,
                warmed=warm[(k, name)] is not None,
            )
            result.extras["compile"] = days[k].stats
            by_shard.setdefault(k, {})[name] = result
        return by_shard

    def _merge_shard_results(
        self, days, live, by_shard
    ) -> Tuple[Dict[str, FusionResult], Dict[str, float]]:
        """Union the shard selections; merge trust by claim-weighted mean."""
        from repro.serving import merge_shard_trust

        weights: List[Dict[str, float]] = []
        for k in live:
            day = days[k]
            counts = np.bincount(
                day.compiled.claim_source,
                minlength=int(day.source_codes.max()) + 1 if len(day.source_codes) else 0,
            )
            weights.append({
                source: float(counts[code])
                for source, code in zip(day.sources, day.source_codes)
            })
        results: Dict[str, FusionResult] = {}
        solve_seconds: Dict[str, float] = {}
        for name in self.method_names:
            selected: Dict[DataItem, Value] = {}
            rounds = 0
            converged = True
            runtime = 0.0
            for k in live:
                result = by_shard[k][name]
                selected.update(result.selected)
                rounds = max(rounds, result.rounds)
                converged = converged and result.converged
                runtime += result.runtime_seconds
            trust = merge_shard_trust(
                [by_shard[k][name].trust for k in live], weights
            )
            merged = FusionResult(
                method=name,
                selected=selected,
                trust=trust,
                rounds=rounds,
                converged=converged,
                runtime_seconds=runtime,
                extras={
                    "day": days[live[0]].day,
                    "sharded": {
                        "n_shards": self.n_shards,
                        "cross_shard": "independent",
                        "live_shards": list(live),
                    },
                },
            )
            merged.extras["compile"] = ShardedStreamCompiler.merged_stats(
                [days[k] for k in live]
            )
            results[name] = merged
            solve_seconds[name] = runtime
        return results, solve_seconds

    def _step_parallel(
        self, scheduler, problem, day: DayCompilation
    ) -> Dict[str, FusionResult]:
        """Solve one day's methods concurrently; sessions absorb the outcomes."""
        from repro.parallel import MethodCall, SolveJob

        scheduler.register(
            "stream-day",
            problem,
            with_copy=any(
                self.sessions[name].spec.uses_copy_detection
                for name in self.method_names
            ),
        )
        warm: Dict[str, object] = {
            name: self.sessions[name].resume_trust(problem)
            for name in self.method_names
        }
        jobs = [
            SolveJob(
                problem="stream-day",
                calls=[
                    MethodCall(
                        name,
                        kwargs=self.method_kwargs[name],
                        warm_trust=warm[name],
                    )
                ],
                raw=True,
            )
            for name in self.method_names
        ]
        outcomes = scheduler.run(jobs)
        results: Dict[str, FusionResult] = {}
        for name, outcome in zip(self.method_names, outcomes):
            call = outcome.calls[0]
            result = self.sessions[name].absorb_step(
                problem,
                {"trust": call.trust},
                call.selected,
                call.rounds,
                call.converged,
                call.runtime_seconds,
                day=day.day,
                warmed=warm[name] is not None,
            )
            result.extras["compile"] = day.stats
            results[name] = result
        return results

    @property
    def days(self) -> List[str]:
        return [step.day for step in self.steps]
