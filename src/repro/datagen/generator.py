"""The Deep-Web claim generator.

Turns a ground-truth :class:`~repro.datagen.worlds.World` plus a list of
:class:`~repro.datagen.profiles.SourceProfile` into daily
:class:`~repro.core.dataset.Dataset` snapshots.  The generation pipeline for
one (source, object, attribute, day) claim is:

1. **Copying** — if the source copies another (Table 5) and the original
   provides the item, take the original's claim verbatim with probability
   ``copy_rate`` (tagging it COPIED when the copied value is itself wrong).
2. **Staleness** — a frozen source reads the world at ``frozen_at_day``.
3. **Instance ambiguity** — a confused source reads the alias object.
4. **Semantics ambiguity** — a source with a variant on this attribute
   systematically reports the variant reading.
5. **Per-claim errors** — with probability ``error_rate`` report an
   out-of-date, unit, or pure error.
6. **Formatting** — round to the source's habitual significant figures and
   record the granularity.

All randomness is derived from ``numpy`` generators seeded from
``(seed, source_id, day)``, so collections are fully reproducible and two
sources never share random streams.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.attributes import ValueKind
from repro.core.dataset import Dataset, DatasetSeries
from repro.core.gold import GoldStandard
from repro.core.records import Claim, DataItem, ErrorReason, Value
from repro.datagen.profiles import SourceProfile
from repro.datagen.worlds import World
from repro.errors import ConfigError


def _stable_hash(*parts: object) -> int:
    """Deterministic 32-bit hash of heterogeneous parts (not ``hash()``)."""
    text = "\x1f".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


def rng_for(*parts: object) -> np.random.Generator:
    """A numpy generator deterministically derived from the given parts."""
    return np.random.default_rng(np.random.SeedSequence(_stable_hash(*parts)))


def covered_objects_for(
    profile: SourceProfile, world: World, seed: int
) -> List[str]:
    """The fixed object set a source covers (stable across days)."""
    if profile.covered_objects is not None:
        known = set(world.object_ids)
        return [o for o in world.object_ids if o in profile.covered_objects and o in known]
    if profile.object_coverage >= 1.0:
        return list(world.object_ids)
    rng = rng_for(seed, "coverage", profile.source_id)
    objects = world.object_ids
    keep = rng.random(len(objects)) < profile.object_coverage
    return [o for o, k in zip(objects, keep) if k]


def _round_sigfigs(value: float, sigfigs: int) -> Tuple[float, float]:
    """Round to significant figures; returns (rounded, granularity)."""
    if value == 0:
        return 0.0, 1.0
    exponent = math.floor(math.log10(abs(value)))
    granularity = 10.0 ** (exponent - sigfigs + 1)
    return round(value / granularity) * granularity, granularity


def _values_equal(a: Value, b: Value) -> bool:
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    return math.isclose(float(a), float(b), rel_tol=1e-9, abs_tol=1e-9)


@dataclass
class _ClaimDraft:
    value: Value
    reason: Optional[ErrorReason]


class ClaimGenerator:
    """Generates one source-day's claims; holds per-day RNG state."""

    def __init__(self, world: World, profile: SourceProfile, day: int, seed: int):
        self.world = world
        self.profile = profile
        self.day = day
        self.rng = rng_for(seed, "claims", profile.source_id, day)
        self.error_rate = profile.error_rate_on(day)
        reasons = list(profile.error_mix.keys())
        weights = np.array([profile.error_mix[r] for r in reasons], dtype=float)
        self._mix_reasons = reasons
        self._mix_probs = weights / weights.sum() if len(reasons) else None

    # ------------------------------------------------------------------ draws
    def draw(self, object_id: str, attribute: str) -> _ClaimDraft:
        """One independent (non-copied) claim value with its reason tag."""
        world, profile = self.world, self.profile
        base_day = (
            profile.frozen_at_day if profile.frozen_at_day is not None else self.day
        )
        stale = profile.frozen_at_day is not None

        read_object = object_id
        reason: Optional[ErrorReason] = None
        if object_id in profile.instance_confusions:
            read_object = profile.instance_confusions[object_id]
            reason = ErrorReason.INSTANCE_AMBIGUITY

        variant = profile.semantic_variants.get(attribute)
        offset = profile.basis_offsets.get(attribute)
        if variant is not None and reason is None:
            value = world.variant_value(read_object, attribute, base_day, variant)
            reason = ErrorReason.SEMANTICS_AMBIGUITY
        else:
            value = world.true_value(read_object, attribute, base_day)
            if offset is not None and reason is None and not isinstance(value, str):
                value = float(value) * offset
                reason = ErrorReason.SEMANTICS_AMBIGUITY

        if stale and reason is None:
            reason = ErrorReason.OUT_OF_DATE

        if reason is None and self._mix_probs is not None and (
            self.rng.random() < self.error_rate
        ):
            reason = self._mix_reasons[
                int(self.rng.choice(len(self._mix_reasons), p=self._mix_probs))
            ]
            value = self._apply_error(object_id, attribute, reason, value)

        truth = world.true_value(object_id, attribute, self.day)
        if reason is not None and _values_equal(value, truth):
            reason = None  # the mechanism happened to produce the true value
        return _ClaimDraft(value=value, reason=reason)

    def _apply_error(
        self, object_id: str, attribute: str, reason: ErrorReason, value: Value
    ) -> Value:
        world = self.world
        if reason is ErrorReason.OUT_OF_DATE:
            lag = 1 if self.rng.random() < 2.0 / 3.0 else int(self.rng.integers(2, 8))
            return world.true_value(object_id, attribute, self.day - lag)
        if reason is ErrorReason.UNIT_ERROR:
            if isinstance(value, str):
                return self._pure_error(object_id, attribute, value)
            factor = 1000.0 if self.rng.random() < 0.5 else 1e-3
            return float(value) * factor
        return self._pure_error(object_id, attribute, value)

    def _pure_error(self, object_id: str, attribute: str, value: Value) -> Value:
        spec = self.world.attributes[attribute]
        wrong = getattr(self.world, "pure_error_value", None)
        if wrong is not None:
            produced = wrong(object_id, attribute, self.day, value, self.rng)
            if produced is not None:
                return produced
        if spec.kind is ValueKind.TIME:
            shift = float(self.rng.uniform(15.0, 120.0))
            if self.rng.random() < 0.5:
                shift = -shift
            return (float(value) + shift) % (24 * 60)
        if isinstance(value, str):
            return value + "~X"  # unresolvable junk string
        magnitude = float(self.rng.uniform(0.02, 0.5))
        sign = 1.0 if self.rng.random() < 0.5 else -1.0
        return float(value) * (1.0 + sign * magnitude)

    # ------------------------------------------------------------- formatting
    def finalize(self, attribute: str, draft: _ClaimDraft) -> Claim:
        sigfigs = self.profile.rounding_sigfigs.get(attribute)
        value = draft.value
        granularity: Optional[float] = None
        if sigfigs is not None and not isinstance(value, str):
            value, granularity = _round_sigfigs(float(value), sigfigs)
        return Claim(value=value, granularity=granularity, reason=draft.reason)


def _ordered_profiles(profiles: Sequence[SourceProfile]) -> List[SourceProfile]:
    """Originals before their copiers (copy chains are depth 1 in Table 5)."""
    by_id = {p.source_id: p for p in profiles}
    for profile in profiles:
        original = profile.meta.copies_from
        if original is not None and original not in by_id:
            raise ConfigError(
                f"{profile.source_id} copies unknown source {original!r}"
            )
        if original is not None and by_id[original].is_copier:
            raise ConfigError(
                f"copy chain through {original!r} is not supported"
            )
    return sorted(profiles, key=lambda p: p.is_copier)


def generate_snapshot(
    domain: str,
    world: World,
    profiles: Sequence[SourceProfile],
    day: int,
    day_label: str,
    seed: int = 0,
) -> Dataset:
    """Generate one day's :class:`Dataset` from the world and profiles."""
    dataset = Dataset(domain=domain, day=day_label, attributes=world.attributes)
    for profile in profiles:
        dataset.add_source(profile.meta)

    claims_by_source: Dict[str, Dict[DataItem, Claim]] = {}
    for profile in _ordered_profiles(profiles):
        generator = ClaimGenerator(world, profile, day, seed)
        covered = covered_objects_for(profile, world, seed)
        original_claims = (
            claims_by_source.get(profile.meta.copies_from, {})
            if profile.is_copier
            else {}
        )
        copy_rate = profile.meta.copy_rate
        source_claims: Dict[DataItem, Claim] = {}
        for object_id in covered:
            for attribute in profile.schema:
                item = DataItem(object_id, attribute)
                claim: Optional[Claim] = None
                if profile.is_copier and item in original_claims:
                    if generator.rng.random() < copy_rate:
                        origin = original_claims[item]
                        reason = (
                            ErrorReason.COPIED if origin.reason is not None else None
                        )
                        claim = Claim(
                            value=origin.value,
                            granularity=origin.granularity,
                            reason=reason,
                        )
                if claim is None:
                    draft = generator.draw(object_id, attribute)
                    claim = generator.finalize(attribute, draft)
                source_claims[item] = claim
                dataset.add_claim(profile.source_id, item, claim)
        claims_by_source[profile.source_id] = source_claims
    return dataset.freeze()


def generate_series(
    domain: str,
    world: World,
    profiles: Sequence[SourceProfile],
    day_labels: Sequence[str],
    seed: int = 0,
) -> DatasetSeries:
    """Generate the full observation period (one snapshot per label)."""
    series = DatasetSeries(domain=domain)
    for day, label in enumerate(day_labels):
        series.add(
            generate_snapshot(domain, world, profiles, day, label, seed=seed)
        )
    return series


@dataclass
class DomainCollection:
    """A fully generated domain: world, profiles, snapshots, gold standards."""

    domain: str
    world: World
    profiles: List[SourceProfile]
    series: DatasetSeries
    gold_by_day: Dict[str, GoldStandard]
    gold_objects: List[str]
    report_day: str
    config: object = None
    _profile_index: Dict[str, SourceProfile] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._profile_index = {p.source_id: p for p in self.profiles}

    @property
    def snapshot(self) -> Dataset:
        """The randomly-chosen snapshot used for detailed reporting."""
        return self.series.snapshot(self.report_day)

    @property
    def gold(self) -> GoldStandard:
        return self.gold_by_day[self.report_day]

    def gold_for(self, day_label: str) -> GoldStandard:
        return self.gold_by_day[day_label]

    def profile(self, source_id: str) -> SourceProfile:
        return self._profile_index[source_id]

    def true_copy_groups(self) -> List[List[str]]:
        """Ground-truth copying groups: each original with its copiers."""
        groups: Dict[str, List[str]] = {}
        for profile in self.profiles:
            original = profile.meta.copies_from
            if original is not None:
                groups.setdefault(original, [original]).append(profile.source_id)
        return [sorted(set(members)) for members in groups.values()]

    def copier_ids(self) -> List[str]:
        """All sources that copy (the ones removed in Section 3.4)."""
        return [p.source_id for p in self.profiles if p.is_copier]

    def non_gold_source_ids(self) -> List[str]:
        """Sources that are *not* authorities (used for Flight accuracy stats)."""
        return [p.source_id for p in self.profiles if not p.meta.is_authority]
