"""The Flight domain: world, attributes, and the 38-source collection.

Reproduces the data collection of Section 2.2: 38 sources (3 airline sites,
8 airport sites, 27 third-party sites) observed every day of December 2011
over 1200 flights departing from or arriving at the three airlines' hubs.
The six examined attributes are scheduled/actual departure/arrival time and
departure/arrival gate.

Calibration targets from the paper:

* the airline sites are the gold standard (their claims on 100 random
  flights); each airline only covers its own flights;
* airport sites are accurate (~.94) but cover ~3% of items (only flights
  touching their airport) — Table 4;
* five copying groups among the third-party sites with sizes 5/4/3/2/2 and
  average accuracies .71/.53/.92/.93/.61 (Table 5); the low-accuracy groups
  are what drags the precision of dominant values down to ~.86 and what
  ACCUCOPY fixes (Section 4.2);
* semantics ambiguity: some sources report *takeoff/landing* times instead
  of the majority gate-departure/gate-arrival semantics (Figure 6, 33%);
* one source systematically pads scheduled arrival times (the paper's
  FlightAware anecdote in Section 3.2);
* overall lower redundancy than Stock (~.32 at the item level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.attributes import AttributeSpec, AttributeTable, ValueKind
from repro.core.gold import build_gold_standard
from repro.core.records import ErrorReason, SourceCategory, SourceMeta, Value
from repro.datagen.generator import DomainCollection, generate_series, rng_for
from repro.datagen.profiles import SourceProfile
from repro.datagen.worlds import World
from repro.errors import ConfigError

DOMAIN = "flight"

#: The 6 examined attributes (Section 2.2).
FLIGHT_ATTRIBUTES: Tuple[AttributeSpec, ...] = (
    AttributeSpec("Scheduled departure", ValueKind.TIME),
    AttributeSpec("Scheduled arrival", ValueKind.TIME),
    AttributeSpec("Actual departure", ValueKind.TIME),
    AttributeSpec("Actual arrival", ValueKind.TIME),
    AttributeSpec("Departure gate", ValueKind.STRING),
    AttributeSpec("Arrival gate", ValueKind.STRING),
)

FLIGHT_DAY_LABELS: Tuple[str, ...] = tuple(
    f"2011-12-{day:02d}" for day in range(1, 32)
)

#: The randomly-chosen snapshot the paper reports in detail (Section 3).
FLIGHT_REPORT_DAY = "2011-12-08"

FLIGHT_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "Scheduled departure": ("Scheduled departure", "Sched dep", "Departure time",
                            "Scheduled departure time"),
    "Scheduled arrival": ("Scheduled arrival", "Sched arr", "Arrival time",
                          "Scheduled arrival time"),
    "Actual departure": ("Actual departure", "Departed", "Actual dep time"),
    "Actual arrival": ("Actual arrival", "Arrived", "Actual arr time"),
    "Departure gate": ("Departure gate", "Dep gate", "Gate (departure)"),
    "Arrival gate": ("Arrival gate", "Arr gate", "Gate (arrival)"),
}

_AIRLINES = ("AA", "UA", "CO")
_HUBS = ("DFW", "ORD", "IAH")
_SPOKES = (
    "SFO", "DEN", "JFK", "LAX", "SEA", "MIA", "BOS", "PHX",
    "ATL", "MSP", "DTW", "PHL", "SLC", "MCO", "SAN", "TPA",
    "STL", "BNA", "AUS", "RDU", "PIT", "CLE",
)
_GATE_LETTERS = "ABCDE"

_PRE_DAYS = 10


class FlightWorld(World):
    """Scheduled flights with daily delays, gates, and taxi times."""

    def __init__(self, n_objects: int = 1200, num_days: int = 31, seed: int = 0):
        if n_objects < 10:
            raise ConfigError("FlightWorld needs at least 10 flights")
        self.attributes = AttributeTable.from_specs(list(FLIGHT_ATTRIBUTES))
        self._num_days = num_days
        self._n = n_objects
        rng = rng_for(seed, "flight-world")

        airlines = [
            _AIRLINES[int(i)] for i in rng.integers(0, len(_AIRLINES), n_objects)
        ]
        hubs = [_HUBS[_AIRLINES.index(a)] for a in airlines]
        spokes = [_SPOKES[int(i)] for i in rng.integers(0, len(_SPOKES), n_objects)]
        outbound = rng.random(n_objects) < 0.5
        self._dep_airport = [h if o else s for h, s, o in zip(hubs, spokes, outbound)]
        self._arr_airport = [s if o else h for h, s, o in zip(hubs, spokes, outbound)]
        self._ids = [
            f"{airline}{100 + i}-{dep}"
            for i, (airline, dep) in enumerate(zip(airlines, self._dep_airport))
        ]
        self._index = {o: i for i, o in enumerate(self._ids)}
        self._airline = dict(zip(self._ids, airlines))

        total = num_days + _PRE_DAYS
        self._sched_dep = rng.uniform(5 * 60, 22 * 60, n_objects).round()
        self._duration = rng.uniform(55, 330, n_objects).round()
        # Delay mixture: mostly small, a long tail of big delays.
        mix = rng.random((n_objects, total))
        delay = np.where(
            mix < 0.55,
            rng.uniform(-5, 10, (n_objects, total)),
            np.where(
                mix < 0.85,
                rng.uniform(10, 60, (n_objects, total)),
                rng.uniform(60, 200, (n_objects, total)),
            ),
        )
        self._dep_delay = delay.round()
        self._arr_delay = (
            self._dep_delay + rng.normal(-5, 12, (n_objects, total))
        ).round()
        self._taxi_out = rng.uniform(10, 35, (n_objects, total)).round()
        self._taxi_in = rng.uniform(4, 15, (n_objects, total)).round()
        self._sched_pad = rng.uniform(60, 300, n_objects).round()

        gate_numbers = rng.integers(1, 40, size=(n_objects, total, 2))
        gate_letters = rng.integers(0, len(_GATE_LETTERS), size=(n_objects, total, 2))
        self._gates = gate_letters, gate_numbers

    # ------------------------------------------------------------------ World
    @property
    def object_ids(self) -> List[str]:
        return list(self._ids)

    @property
    def num_days(self) -> int:
        return self._num_days

    def airline_of(self, object_id: str) -> str:
        return self._airline[object_id]

    def airports_of(self, object_id: str) -> Tuple[str, str]:
        i = self._index[object_id]
        return self._dep_airport[i], self._arr_airport[i]

    def _t(self, day: int) -> int:
        t = day + _PRE_DAYS
        if t < 0:
            t = 0
        if t >= self._dep_delay.shape[1]:
            raise ConfigError(f"day {day} outside generated horizon")
        return t

    def _gate(self, i: int, t: int, end: int) -> str:
        letters, numbers = self._gates
        return f"{_GATE_LETTERS[int(letters[i, t, end])]}{int(numbers[i, t, end])}"

    def true_value(self, object_id: str, attribute: str, day: int) -> Value:
        i = self._index[object_id]
        t = self._t(day)
        if attribute == "Scheduled departure":
            return float(self._sched_dep[i])
        if attribute == "Scheduled arrival":
            return float((self._sched_dep[i] + self._duration[i]) % 1440)
        if attribute == "Actual departure":
            return float((self._sched_dep[i] + self._dep_delay[i, t]) % 1440)
        if attribute == "Actual arrival":
            return float(
                (self._sched_dep[i] + self._duration[i] + self._arr_delay[i, t]) % 1440
            )
        if attribute == "Departure gate":
            return self._gate(i, t, 0)
        if attribute == "Arrival gate":
            return self._gate(i, t, 1)
        raise ConfigError(f"unknown flight attribute {attribute!r}")

    _VARIANTS: Dict[str, Tuple[str, ...]] = {
        "Actual departure": ("takeoff",),
        "Actual arrival": ("landing",),
        "Scheduled arrival": ("padded-schedule",),
    }

    def variants_of(self, attribute: str) -> List[str]:
        return list(self._VARIANTS.get(attribute, ()))

    def variant_value(
        self, object_id: str, attribute: str, day: int, variant: str
    ) -> Value:
        self.check_variant(attribute, variant)
        i = self._index[object_id]
        t = self._t(day)
        base = self.true_value(object_id, attribute, day)
        if attribute == "Actual departure":
            return float((float(base) + self._taxi_out[i, t]) % 1440)
        if attribute == "Actual arrival":
            return float((float(base) - self._taxi_in[i, t]) % 1440)
        return float((float(base) + self._sched_pad[i]) % 1440)

    def pure_error_value(
        self,
        object_id: str,
        attribute: str,
        day: int,
        value: Value,
        rng: np.random.Generator,
    ) -> Optional[Value]:
        """Gate errors pick a different plausible gate; times use the default."""
        if self.attributes[attribute].kind is not ValueKind.STRING:
            return None
        letter = _GATE_LETTERS[int(rng.integers(len(_GATE_LETTERS)))]
        number = int(rng.integers(1, 40))
        wrong = f"{letter}{number}"
        if wrong == value:
            wrong = f"{letter}{(number % 39) + 1}"
        return wrong


# --------------------------------------------------------------------- config
@dataclass
class FlightConfig:
    """Scale and population parameters of the Flight collection."""

    n_objects: int = 300
    num_days: int = 31
    n_gold_objects: int = 100
    seed: int = 15

    attribute_popularity: Dict[str, float] = field(
        default_factory=lambda: {
            "Scheduled departure": 0.92,
            "Scheduled arrival": 0.85,
            "Actual departure": 0.52,
            "Actual arrival": 0.52,
            "Departure gate": 0.48,
            "Arrival gate": 0.47,
        }
    )

    variant_adoption: Dict[Tuple[str, str], float] = field(
        default_factory=lambda: {
            ("Actual departure", "takeoff"): 0.50,
            ("Actual arrival", "landing"): 0.48,
        }
    )

    @classmethod
    def paper_scale(cls, seed: int = 15) -> "FlightConfig":
        return cls(n_objects=1200, num_days=31, n_gold_objects=100, seed=seed)

    @classmethod
    def small(cls, seed: int = 15) -> "FlightConfig":
        return cls(n_objects=120, num_days=8, n_gold_objects=60, seed=seed)

    @classmethod
    def tiny(cls, seed: int = 15) -> "FlightConfig":
        return cls(n_objects=40, num_days=3, n_gold_objects=25, seed=seed)

    @classmethod
    def large_corpus(cls, seed: int = 15, n_objects: int = 1500) -> "FlightConfig":
        """A wide, shallow corpus: many flights, two days — the sharding
        workload (items dominate, so K >> 1 object shards stay balanced)."""
        return cls(
            n_objects=n_objects,
            num_days=2,
            n_gold_objects=min(200, n_objects),
            seed=seed,
        )

    def day_labels(self) -> Tuple[str, ...]:
        if self.num_days > len(FLIGHT_DAY_LABELS):
            raise ConfigError(
                f"at most {len(FLIGHT_DAY_LABELS)} flight days available"
            )
        return FLIGHT_DAY_LABELS[: self.num_days]

    def report_day(self) -> str:
        labels = self.day_labels()
        return FLIGHT_REPORT_DAY if FLIGHT_REPORT_DAY in labels else labels[-1]


#: (group id, size, original error rate, group coverage, Table 5 remark)
_COPY_GROUPS = (
    ("cg1", 5, 0.29, 0.85, "Depen claimed"),
    ("cg2", 4, 0.47, 0.80, "Query redirection"),
    ("cg3", 3, 0.08, 0.65, "Depen claimed"),
    ("cg4", 2, 0.07, 0.70, "Embedded interface"),
    ("cg5", 2, 0.45, 0.70, "Embedded interface"),
)


def _flight_error_mix() -> Dict[ErrorReason, float]:
    return {
        ErrorReason.OUT_OF_DATE: 0.16,
        ErrorReason.PURE_ERROR: 0.84,
    }


def _draw_flight_schema(
    rng: np.random.Generator, config: FlightConfig, minimum: int = 4
) -> Tuple[str, ...]:
    names = [spec.name for spec in FLIGHT_ATTRIBUTES]
    schema = [
        a for a in names
        if rng.random() < config.attribute_popularity.get(a, 0.5)
    ]
    for required in ("Scheduled departure",):
        if required not in schema:
            schema.insert(0, required)
    while len(schema) < minimum:
        extra = names[int(rng.integers(len(names)))]
        if extra not in schema:
            schema.append(extra)
    return tuple(a for a in names if a in schema)


def build_flight_profiles(
    world: FlightWorld, config: FlightConfig
) -> List[SourceProfile]:
    """The 38-source population: 3 airlines, 8 airports, 27 third parties."""
    rng = rng_for(config.seed, "flight-profiles")
    all_attrs = tuple(spec.name for spec in FLIGHT_ATTRIBUTES)
    profiles: List[SourceProfile] = []

    # -- three airline websites (the gold standard) ----------------------
    for airline in _AIRLINES:
        covered = frozenset(
            o for o in world.object_ids if world.airline_of(o) == airline
        )
        profiles.append(
            SourceProfile(
                meta=SourceMeta(f"airline_{airline.lower()}", f"{airline} Airlines",
                                SourceCategory.AIRLINE, is_authority=True),
                schema=all_attrs,
                covered_objects=covered,
                error_rate=0.01,
                error_mix=_flight_error_mix(),
            )
        )

    # -- eight airport websites: accurate, tiny coverage -----------------
    airport_picks = [
        _SPOKES[int(i)]
        for i in rng.choice(len(_SPOKES), size=8, replace=False)
    ]
    for airport in airport_picks:
        covered = frozenset(
            o for o in world.object_ids if airport in world.airports_of(o)
        )
        if not covered:  # tiny worlds may miss an airport entirely
            covered = frozenset(world.object_ids[:1])
        profiles.append(
            SourceProfile(
                meta=SourceMeta(f"airport_{airport.lower()}", f"{airport} Airport",
                                SourceCategory.AIRPORT),
                schema=all_attrs,
                covered_objects=covered,
                error_rate=0.05,
                error_mix=_flight_error_mix(),
            )
        )

    # -- 27 third-party sites --------------------------------------------
    # Two high-quality aggregators (Orbitz/Travelocity analogues, Table 4).
    profiles.append(
        SourceProfile(
            meta=SourceMeta("orbitz", "Orbitz", SourceCategory.THIRD_PARTY),
            schema=all_attrs,
            object_coverage=0.9,
            error_rate=0.02,
            error_mix=_flight_error_mix(),
        )
    )
    profiles.append(
        SourceProfile(
            meta=SourceMeta("travelocity", "Travelocity", SourceCategory.THIRD_PARTY),
            schema=all_attrs,
            object_coverage=0.72,
            error_rate=0.04,
            error_mix=_flight_error_mix(),
        )
    )
    # The systematically-wrong scheduled-arrival source (FlightAware anecdote).
    profiles.append(
        SourceProfile(
            meta=SourceMeta("flightalert", "FlightAlert", SourceCategory.THIRD_PARTY),
            schema=all_attrs,
            object_coverage=0.85,
            error_rate=0.08,
            error_mix=_flight_error_mix(),
            semantic_variants={"Scheduled arrival": "padded-schedule"},
        )
    )

    # Five copying groups (Table 5).
    for group_id, size, error_rate, coverage, _remark in _COPY_GROUPS:
        schema = _draw_flight_schema(rng, config)
        variants: Dict[str, str] = {}
        if error_rate > 0.2:  # the low-quality groups also misuse semantics
            if "Actual departure" in schema and rng.random() < 0.8:
                variants["Actual departure"] = "takeoff"
            if "Actual arrival" in schema and rng.random() < 0.7:
                variants["Actual arrival"] = "landing"
        original_id = f"{group_id}_orig"
        profiles.append(
            SourceProfile(
                meta=SourceMeta(original_id, f"{group_id.upper()} original",
                                SourceCategory.THIRD_PARTY),
                schema=schema,
                object_coverage=coverage,
                error_rate=error_rate,
                error_mix=_flight_error_mix(),
                semantic_variants=variants,
            )
        )
        for k in range(size - 1):
            copier_schema = schema
            if rng.random() < 0.4 and len(schema) > 4:
                copier_schema = schema[:-1]  # Table 5: schema similarity < 1
            profiles.append(
                SourceProfile(
                    meta=SourceMeta(f"{group_id}_cop{k}", f"{group_id.upper()} mirror {k + 1}",
                                    SourceCategory.THIRD_PARTY,
                                    copies_from=original_id, copy_rate=0.995),
                    schema=copier_schema,
                    object_coverage=coverage,
                    error_rate=error_rate,
                    error_mix=_flight_error_mix(),
                    semantic_variants=variants,
                )
            )

    # Remaining independent third parties.
    remaining = 27 - 3 - sum(size for _g, size, _e, _c, _r in _COPY_GROUPS)
    volatile_pick = int(rng.integers(remaining))
    for k in range(remaining):
        schema = _draw_flight_schema(rng, config)
        roll = rng.random()
        if roll < 0.25:
            error_rate = float(rng.uniform(0.01, 0.06))
        elif roll < 0.8:
            error_rate = float(rng.uniform(0.08, 0.30))
        else:
            error_rate = float(rng.uniform(0.25, 0.5))
        variants = {}
        for (attribute, variant), adoption in config.variant_adoption.items():
            if attribute in schema and rng.random() < adoption:
                variants[attribute] = variant
        volatile_days: FrozenSet[int] = frozenset()
        volatile_factor = 1.0
        if k == volatile_pick:
            # Dedicated stream: the population must not depend on num_days.
            vol_rng = rng_for(config.seed, "flight-volatile", k)
            n_spike = max(1, config.num_days // 6)
            volatile_days = frozenset(
                int(d)
                for d in vol_rng.choice(config.num_days, size=n_spike, replace=False)
            )
            volatile_factor = float(vol_rng.uniform(4.0, 7.0))
        profiles.append(
            SourceProfile(
                meta=SourceMeta(f"flightweb_{k:02d}", f"FlightWeb {k + 1}",
                                SourceCategory.THIRD_PARTY),
                schema=schema,
                object_coverage=float(rng.uniform(0.25, 0.80)),
                error_rate=error_rate,
                error_mix=_flight_error_mix(),
                semantic_variants=variants,
                volatile_days=volatile_days,
                volatile_factor=volatile_factor,
            )
        )

    return _attach_local_schemas(profiles, config)


def _attach_local_schemas(
    profiles: List[SourceProfile], config: FlightConfig
) -> List[SourceProfile]:
    """Local spellings plus tail attributes (15 global / 43 local, Table 1)."""
    rng = rng_for(config.seed, "flight-schemas")
    tail_names = [
        "Aircraft type", "Flight status", "Baggage claim", "Terminal",
        "On-time rating", "Codeshare", "Average delay", "Distance", "Duration",
    ]
    tail_popularity = (0.45, 0.40, 0.24, 0.22, 0.15, 0.12, 0.10, 0.08, 0.07)
    finished: List[SourceProfile] = []
    for profile in profiles:
        local_names = {}
        for attribute in profile.schema:
            pool = FLIGHT_SYNONYMS.get(attribute, (attribute,))
            local_names[attribute] = str(pool[int(rng.integers(len(pool)))])
        tail = tuple(
            name for name, p in zip(tail_names, tail_popularity)
            if rng.random() < p
        )
        for name in tail:
            local_names[name] = name
        finished.append(
            SourceProfile(
                meta=profile.meta,
                schema=profile.schema,
                full_schema=profile.schema + tail,
                local_names=local_names,
                object_coverage=profile.object_coverage,
                covered_objects=profile.covered_objects,
                error_rate=profile.error_rate,
                error_mix=profile.error_mix,
                semantic_variants=profile.semantic_variants,
                basis_offsets=profile.basis_offsets,
                instance_confusions=profile.instance_confusions,
                rounding_sigfigs=profile.rounding_sigfigs,
                frozen_at_day=profile.frozen_at_day,
                volatile_days=profile.volatile_days,
                volatile_factor=profile.volatile_factor,
            )
        )
    return finished


def generate_flight_collection(
    config: Optional[FlightConfig] = None,
) -> DomainCollection:
    """Generate the full Flight collection: snapshots, profiles, gold standards."""
    config = config or FlightConfig()
    world = FlightWorld(
        n_objects=config.n_objects, num_days=config.num_days, seed=config.seed
    )
    profiles = build_flight_profiles(world, config)
    labels = config.day_labels()
    series = generate_series(DOMAIN, world, profiles, labels, seed=config.seed)

    rng = rng_for(config.seed, "flight-gold-objects")
    n_gold = min(config.n_gold_objects, config.n_objects)
    picks = rng.choice(config.n_objects, size=n_gold, replace=False)
    gold_objects = [world.object_ids[int(i)] for i in picks]

    airline_ids = [p.source_id for p in profiles if p.meta.is_authority]
    gold_by_day = {
        snapshot.day: build_gold_standard(
            snapshot, gold_objects, min_providers=1, authority_ids=airline_ids
        )
        for snapshot in series
    }
    return DomainCollection(
        domain=DOMAIN,
        world=world,
        profiles=profiles,
        series=series,
        gold_by_day=gold_by_day,
        gold_objects=gold_objects,
        report_day=config.report_day(),
        config=config,
    )
