"""Ground-truth worlds for the Deep-Web simulator.

The paper observes real Deep-Web sources; we cannot, so each domain defines a
*world*: a deterministic ground truth ``(object, attribute, day) -> value``
plus the alternative-semantics readings that drive the paper's dominant
inconsistency cause (Figure 6).  A semantics *variant* is a deterministic
function of the world — e.g. "dividend per quarter" is the annual dividend
divided by four — so every source adopting the same variant reports the same
(wrong-relative-to-gold) value, exactly the correlated-error structure the
paper describes.

Worlds also expose *aliases* for instance ambiguity (terminated stock symbols
that some sources map to a different entity, Section 3.2).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.core.attributes import AttributeTable
from repro.core.records import Value
from repro.errors import ConfigError


class World(abc.ABC):
    """Deterministic ground truth for one domain."""

    #: Global attribute table (both considered and tail attributes).
    attributes: AttributeTable

    @property
    @abc.abstractmethod
    def object_ids(self) -> List[str]:
        """All real-world object ids (stable order)."""

    @property
    @abc.abstractmethod
    def num_days(self) -> int:
        """Number of observation days generated (day indices 0..num_days-1)."""

    @abc.abstractmethod
    def true_value(self, object_id: str, attribute: str, day: int) -> Value:
        """The single true value of a data item on a given day.

        ``day`` may be negative (the pre-observation period) so out-of-date
        sources can report genuinely stale truths on day 0.
        """

    @abc.abstractmethod
    def variant_value(
        self, object_id: str, attribute: str, day: int, variant: str
    ) -> Value:
        """The value under an alternative semantics ``variant``.

        Raises :class:`~repro.errors.ConfigError` for unknown variants.
        """

    @abc.abstractmethod
    def variants_of(self, attribute: str) -> List[str]:
        """The alternative-semantics variant ids available for an attribute."""

    def alias_of(self, object_id: str) -> Optional[str]:
        """The confusable alias of an object (instance ambiguity), if any."""
        return None

    @property
    def aliased_objects(self) -> Dict[str, str]:
        """All objects with a confusable alias; default none."""
        return {}

    def check_variant(self, attribute: str, variant: str) -> None:
        if variant not in self.variants_of(attribute):
            raise ConfigError(
                f"attribute {attribute!r} has no semantics variant {variant!r}"
            )
