"""Per-source generation profiles for the Deep-Web simulator.

A :class:`SourceProfile` is everything that distinguishes one simulated
Deep-Web source: which objects and attributes it covers, how accurate it is,
*how* it is wrong when it is wrong (the Figure 6 error taxonomy), whether it
systematically applies an alternative semantics on some attributes, whether it
rounds values, whether it is stale, and whether it copies another source
(Table 5).

The profile parameters map one-to-one onto the phenomena Section 3 measures:

=========================  ====================================================
Profile field              Paper phenomenon
=========================  ====================================================
``object_coverage``        object redundancy (Figure 2)
``schema``                 data-item redundancy, attribute coverage (Figs 1, 3)
``error_rate``             source accuracy (Figure 8a)
``error_mix``              reasons for inconsistency (Figure 6)
``semantic_variants``      semantics ambiguity, per-attribute quality
``instance_confusions``    instance ambiguity (terminated symbols, Volume)
``rounding_sigfigs``       value formatting (ACCUFORMAT evidence)
``frozen_at_day``          the stale StockSmart source
``volatile_days``          accuracy deviation over time (Figure 8b)
``meta.copies_from``       copying groups (Table 5, ACCUCOPY)
=========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.records import ErrorReason, SourceMeta
from repro.errors import ConfigError

#: Error-mix keys allowed for the per-claim (non-systematic) error draw.
_MIX_REASONS = (
    ErrorReason.OUT_OF_DATE,
    ErrorReason.UNIT_ERROR,
    ErrorReason.PURE_ERROR,
)


@dataclass(frozen=True)
class SourceProfile:
    """Generation parameters of one simulated source."""

    meta: SourceMeta
    #: Considered global attributes this source provides.
    schema: Tuple[str, ...]
    #: Full local schema (considered + tail attributes) for Table 1 / Figure 1.
    full_schema: Tuple[str, ...] = ()
    #: Map global attribute -> this source's local attribute label.
    local_names: Dict[str, str] = field(default_factory=dict)
    #: Fraction of world objects covered (ignored if covered_objects given).
    object_coverage: float = 1.0
    #: Explicit covered-object set (airport sources); overrides coverage.
    covered_objects: Optional[FrozenSet[str]] = None
    #: Per-claim probability of a non-systematic error.
    error_rate: float = 0.05
    #: Relative weights of the per-claim error reasons.
    error_mix: Dict[ErrorReason, float] = field(
        default_factory=lambda: {
            ErrorReason.OUT_OF_DATE: 0.4,
            ErrorReason.PURE_ERROR: 0.6,
        }
    )
    #: Attributes on which the source systematically applies a variant.
    semantic_variants: Dict[str, str] = field(default_factory=dict)
    #: Attributes computed on an idiosyncratic basis: value is multiplied by
    #: this persistent factor (numeric kinds only).  Models the long tail of
    #: per-site computation differences behind Table 3's high value counts on
    #: statistical attributes; tagged as semantics ambiguity.
    basis_offsets: Dict[str, float] = field(default_factory=dict)
    #: Objects this source confuses with another entity (instance ambiguity).
    instance_confusions: Dict[str, str] = field(default_factory=dict)
    #: Attributes the source rounds, mapped to significant figures kept.
    rounding_sigfigs: Dict[str, int] = field(default_factory=dict)
    #: If set, the source stopped refreshing: reports truths of this day.
    frozen_at_day: Optional[int] = None
    #: Days (indices) on which error_rate is multiplied by volatile_factor.
    volatile_days: FrozenSet[int] = frozenset()
    volatile_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.schema:
            raise ConfigError(f"source {self.meta.source_id} has empty schema")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ConfigError(
                f"error_rate must be in [0,1], got {self.error_rate}"
            )
        if not 0.0 <= self.object_coverage <= 1.0:
            raise ConfigError(
                f"object_coverage must be in [0,1], got {self.object_coverage}"
            )
        for reason in self.error_mix:
            if reason not in _MIX_REASONS:
                raise ConfigError(
                    f"error_mix may only contain {_MIX_REASONS}, got {reason}"
                )
        if self.error_mix and sum(self.error_mix.values()) <= 0:
            raise ConfigError("error_mix weights must sum to a positive value")

    @property
    def source_id(self) -> str:
        return self.meta.source_id

    @property
    def is_copier(self) -> bool:
        return self.meta.copies_from is not None

    def error_rate_on(self, day: int) -> float:
        """The effective per-claim error rate on a given day."""
        rate = self.error_rate
        if day in self.volatile_days:
            rate = min(1.0, rate * self.volatile_factor)
        return rate

    def effective_schema(self) -> Tuple[str, ...]:
        """Full schema if declared, else the considered schema."""
        return self.full_schema if self.full_schema else self.schema

    def local_label(self, attribute: str) -> str:
        """The source's local spelling of a global attribute."""
        return self.local_names.get(attribute, attribute)
