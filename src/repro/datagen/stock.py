"""The Stock domain: world, attributes, and the 55-source collection.

Reproduces the data collection of Section 2.2: 55 sources observed every
weekday of July 2011 over 1000 symbols and the 16 examined attributes of
Table 2.  The simulated source population is calibrated to the paper's
Section 3 statistics:

* five authority sources (Google Finance, Yahoo! Finance, NASDAQ, MSN Money,
  Bloomberg) with accuracies ~.94/.93/.92/.91/.83 and coverage ~.8-.9
  (Table 4); Bloomberg's deficit comes from alternative semantics on
  statistical attributes, as the paper observes;
* a copying group of 11 sources fed by a market-data service (accuracy ~.92)
  and a pair of merged sites (accuracy ~.75) — Table 5;
* one stale source, ``StockSmart``, frozen a month before the observation
  period (the paper's accuracy-0.06 outlier);
* a long tail of third-party sources with accuracies between ~.54 and ~.97
  averaging ~.86 (Figure 8a), a handful of which are volatile over time
  (Figure 8b);
* widespread alternative semantics on statistical attributes (Dividend
  period, trailing/forward EPS and P/E, quarterly Yield, diluted shares and
  market cap, consolidated Volume, 52-week window endpoints), producing the
  paper's headline result that ~46% of Stock inconsistency is semantics
  ambiguity (Figure 6);
* ten terminated symbols that a few sources map to the wrong entity
  (instance ambiguity — the paper's Volume-deviation culprit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.attributes import AttributeSpec, AttributeTable, ValueKind
from repro.core.gold import build_gold_standard
from repro.core.records import ErrorReason, SourceCategory, SourceMeta, Value
from repro.datagen.generator import (
    DomainCollection,
    generate_series,
    rng_for,
)
from repro.datagen.profiles import SourceProfile
from repro.datagen.worlds import World
from repro.errors import ConfigError

DOMAIN = "stock"

#: The 16 examined attributes of Table 2.
STOCK_ATTRIBUTES: Tuple[AttributeSpec, ...] = (
    AttributeSpec("Last price", ValueKind.NUMERIC),
    AttributeSpec("Open price", ValueKind.NUMERIC),
    AttributeSpec("Today's change ($)", ValueKind.NUMERIC),
    AttributeSpec("Today's change (%)", ValueKind.PERCENT),
    AttributeSpec("Market cap", ValueKind.NUMERIC, statistical=True),
    AttributeSpec("Volume", ValueKind.NUMERIC, statistical=True),
    AttributeSpec("Today's high price", ValueKind.NUMERIC),
    AttributeSpec("Today's low price", ValueKind.NUMERIC),
    AttributeSpec("Dividend", ValueKind.NUMERIC, statistical=True),
    AttributeSpec("Yield", ValueKind.PERCENT, statistical=True),
    AttributeSpec("52-week high price", ValueKind.NUMERIC, statistical=True),
    AttributeSpec("52-week low price", ValueKind.NUMERIC, statistical=True),
    AttributeSpec("EPS", ValueKind.NUMERIC, statistical=True),
    AttributeSpec("P/E", ValueKind.NUMERIC, statistical=True),
    AttributeSpec("Shares outstanding", ValueKind.NUMERIC, statistical=True),
    AttributeSpec("Previous close", ValueKind.NUMERIC),
)

#: Weekdays of July 2011 (21 observation days, Table 1).
STOCK_DAY_LABELS: Tuple[str, ...] = tuple(
    f"2011-07-{day:02d}"
    for day in (1, 4, 5, 6, 7, 8, 11, 12, 13, 14, 15, 18, 19, 20, 21, 22, 25, 26, 27, 28, 29)
)

#: The randomly-chosen snapshot the paper reports in detail (Section 3).
STOCK_REPORT_DAY = "2011-07-07"

#: Local-name synonym pools (schema-level heterogeneity, Section 2.1).
STOCK_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "Last price": ("Last price", "Last trade", "Price", "Last"),
    "Open price": ("Open price", "Open", "Today's open"),
    "Today's change ($)": ("Today's change ($)", "Change", "Chg"),
    "Today's change (%)": ("Today's change (%)", "Change %", "Chg %", "% change"),
    "Market cap": ("Market cap", "Mkt cap", "Market capitalization"),
    "Volume": ("Volume", "Vol", "Share volume"),
    "Today's high price": ("Today's high price", "Day high", "High"),
    "Today's low price": ("Today's low price", "Day low", "Low"),
    "Dividend": ("Dividend", "Div", "Dividend rate"),
    "Yield": ("Yield", "Div yield", "Dividend yield"),
    "52-week high price": ("52-week high price", "52wk high", "52 week high", "Year high"),
    "52-week low price": ("52-week low price", "52wk low", "52 week low", "Year low"),
    "EPS": ("EPS", "Earnings per share", "EPS (ttm)"),
    "P/E": ("P/E", "PE ratio", "Price/earnings"),
    "Shares outstanding": ("Shares outstanding", "Shares out", "Outstanding shares"),
    "Previous close": ("Previous close", "Prev close", "Prior close"),
}

_PRE_DAYS = 45  # pre-observation history for out-of-date / frozen sources


class StockWorld(World):
    """Random-walk market ground truth for ``n_objects`` symbols."""

    def __init__(self, n_objects: int = 1000, num_days: int = 21, seed: int = 0,
                 n_terminated: int = 10):
        if n_objects < 20:
            raise ConfigError("StockWorld needs at least 20 objects")
        self.attributes = AttributeTable.from_specs(list(STOCK_ATTRIBUTES))
        self._num_days = num_days
        self._n = n_objects
        self._ids = [f"STK{i:04d}" for i in range(n_objects)]
        self._index = {o: i for i, o in enumerate(self._ids)}

        rng = rng_for(seed, "stock-world")
        total = num_days + _PRE_DAYS
        price0 = np.exp(rng.normal(3.3, 0.8, size=n_objects))
        returns = rng.normal(0.0, 0.02, size=(n_objects, total))
        self._close = price0[:, None] * np.exp(np.cumsum(returns, axis=1))
        prev = np.concatenate([price0[:, None], self._close[:, :-1]], axis=1)
        self._prev_close = prev
        self._open = prev * np.exp(rng.normal(0.0, 0.008, size=(n_objects, total)))
        hi_jitter = np.abs(rng.normal(0.0, 0.008, size=(n_objects, total)))
        lo_jitter = np.abs(rng.normal(0.0, 0.008, size=(n_objects, total)))
        self._high = np.maximum(self._open, self._close) * (1.0 + hi_jitter)
        self._low = np.minimum(self._open, self._close) * (1.0 - lo_jitter)

        self._shares = np.exp(rng.normal(19.0, 1.0, size=n_objects))
        self._diluted_shares = self._shares * rng.uniform(1.02, 1.12, size=n_objects)
        self._float_shares = self._shares * rng.uniform(0.6, 0.95, size=n_objects)
        self._eps = price0 / 20.0 * rng.uniform(0.5, 1.5, size=n_objects)
        self._forward_eps = self._eps * rng.uniform(0.70, 0.95, size=n_objects)
        dividend = price0 * rng.uniform(0.0, 0.05, size=n_objects)
        dividend[rng.random(n_objects) < 0.3] = 0.0
        self._dividend = dividend
        self._volume = self._shares[:, None] * np.exp(
            rng.normal(-4.0, 0.8, size=(n_objects, total))
        )
        self._consolidation = rng.uniform(1.10, 1.40, size=n_objects)

        low_base = price0 * (1.0 - rng.uniform(0.10, 0.50, size=n_objects))
        high_base = price0 * (1.0 + rng.uniform(0.10, 0.50, size=n_objects))
        self._wk_low = np.minimum(low_base[:, None], np.minimum.accumulate(self._low, axis=1))
        self._wk_high = np.maximum(high_base[:, None], np.maximum.accumulate(self._high, axis=1))

        terminated = self._ids[-n_terminated:] if n_terminated else []
        alias_pool = rng.choice(n_objects - n_terminated, size=len(terminated), replace=False)
        self._aliases = {
            sym: self._ids[int(alias)] for sym, alias in zip(terminated, alias_pool)
        }

    # ------------------------------------------------------------------ World
    @property
    def object_ids(self) -> List[str]:
        return list(self._ids)

    @property
    def num_days(self) -> int:
        return self._num_days

    @property
    def aliased_objects(self) -> Dict[str, str]:
        return dict(self._aliases)

    def alias_of(self, object_id: str) -> Optional[str]:
        return self._aliases.get(object_id)

    def _t(self, day: int) -> int:
        t = day + _PRE_DAYS
        if t < 0:
            t = 0
        if t >= self._close.shape[1]:
            raise ConfigError(f"day {day} outside generated horizon")
        return t

    def true_value(self, object_id: str, attribute: str, day: int) -> Value:
        i = self._index[object_id]
        t = self._t(day)
        if attribute == "Last price":
            return float(self._close[i, t])
        if attribute == "Previous close":
            return float(self._prev_close[i, t])
        if attribute == "Open price":
            return float(self._open[i, t])
        if attribute == "Today's high price":
            return float(self._high[i, t])
        if attribute == "Today's low price":
            return float(self._low[i, t])
        if attribute == "Today's change ($)":
            return float(self._close[i, t] - self._prev_close[i, t])
        if attribute == "Today's change (%)":
            return float(100.0 * (self._close[i, t] / self._prev_close[i, t] - 1.0))
        if attribute == "Volume":
            return float(self._volume[i, t])
        if attribute == "Market cap":
            return float(self._close[i, t] * self._shares[i])
        if attribute == "Shares outstanding":
            return float(self._shares[i])
        if attribute == "EPS":
            return float(self._eps[i])
        if attribute == "P/E":
            return float(self._close[i, t] / self._eps[i])
        if attribute == "Dividend":
            return float(self._dividend[i])
        if attribute == "Yield":
            return float(100.0 * self._dividend[i] / self._close[i, t])
        if attribute == "52-week high price":
            return float(self._wk_high[i, t])
        if attribute == "52-week low price":
            return float(self._wk_low[i, t])
        raise ConfigError(f"unknown stock attribute {attribute!r}")

    _VARIANTS: Dict[str, Tuple[str, ...]] = {
        "Dividend": ("quarterly", "semiannual"),
        "Yield": ("quarterly", "prevclose-basis"),
        "EPS": ("forward",),
        "P/E": ("forward",),
        "Market cap": ("diluted",),
        "Shares outstanding": ("diluted", "float"),
        "Volume": ("consolidated",),
        "52-week high price": ("prior-window",),
        "52-week low price": ("prior-window",),
    }

    def variants_of(self, attribute: str) -> List[str]:
        return list(self._VARIANTS.get(attribute, ()))

    def variant_value(
        self, object_id: str, attribute: str, day: int, variant: str
    ) -> Value:
        self.check_variant(attribute, variant)
        i = self._index[object_id]
        t = self._t(day)
        if attribute == "Dividend":
            div = 4.0 if variant == "quarterly" else 2.0
            return float(self._dividend[i] / div)
        if attribute == "Yield":
            if variant == "quarterly":
                return float(25.0 * self._dividend[i] / self._close[i, t])
            return float(100.0 * self._dividend[i] / self._prev_close[i, t])
        if attribute == "EPS":
            return float(self._forward_eps[i])
        if attribute == "P/E":
            return float(self._close[i, t] / self._forward_eps[i])
        if attribute == "Market cap":
            return float(self._close[i, t] * self._diluted_shares[i])
        if attribute == "Shares outstanding":
            shares = self._diluted_shares if variant == "diluted" else self._float_shares
            return float(shares[i])
        if attribute == "Volume":
            return float(self._volume[i, t] * self._consolidation[i])
        if attribute in ("52-week high price", "52-week low price"):
            arr = self._wk_high if attribute.startswith("52-week high") else self._wk_low
            return float(arr[i, max(0, t - 1)])
        raise ConfigError(f"unknown variant {variant!r} for {attribute!r}")


# --------------------------------------------------------------------- config
@dataclass
class StockConfig:
    """Scale and population parameters of the Stock collection."""

    n_objects: int = 200
    num_days: int = 21
    n_sources: int = 55
    n_gold_objects: int = 100
    n_terminated: int = 6
    seed: int = 6

    #: Per-attribute schema popularity (probability a source provides it).
    attribute_popularity: Dict[str, float] = field(
        default_factory=lambda: {
            "Last price": 0.97,
            "Previous close": 0.92,
            "Open price": 0.85,
            "Volume": 0.85,
            "Today's high price": 0.82,
            "Today's low price": 0.82,
            "Today's change (%)": 0.75,
            "Today's change ($)": 0.70,
            "Market cap": 0.70,
            "P/E": 0.62,
            "EPS": 0.60,
            "52-week high price": 0.60,
            "52-week low price": 0.60,
            "Dividend": 0.50,
            "Yield": 0.50,
            "Shares outstanding": 0.42,
        }
    )

    #: Fraction of non-authority independent sources adopting each variant.
    variant_adoption: Dict[Tuple[str, str], float] = field(
        default_factory=lambda: {
            ("Dividend", "quarterly"): 0.50,
            ("Dividend", "semiannual"): 0.12,
            ("Yield", "quarterly"): 0.50,
            ("Yield", "prevclose-basis"): 0.08,
            ("EPS", "forward"): 0.48,
            ("P/E", "forward"): 0.45,
            ("Market cap", "diluted"): 0.25,
            ("Shares outstanding", "diluted"): 0.25,
            ("Shares outstanding", "float"): 0.10,
            ("Volume", "consolidated"): 0.15,
            ("52-week high price", "prior-window"): 0.25,
            ("52-week low price", "prior-window"): 0.25,
        }
    )

    #: Probability that a tail source computes a statistical attribute on its
    #: own idiosyncratic basis, and the spread of that basis multiplier.
    basis_offset_probability: float = 0.22
    basis_offset_sigma: float = 0.10

    @classmethod
    def paper_scale(cls, seed: int = 6) -> "StockConfig":
        return cls(n_objects=1000, num_days=21, n_gold_objects=200,
                   n_terminated=10, seed=seed)

    @classmethod
    def small(cls, seed: int = 6) -> "StockConfig":
        return cls(n_objects=80, num_days=8, n_gold_objects=50,
                   n_terminated=4, seed=seed)

    @classmethod
    def tiny(cls, seed: int = 6) -> "StockConfig":
        return cls(n_objects=30, num_days=3, n_gold_objects=20,
                   n_terminated=2, seed=seed)

    @classmethod
    def large_corpus(cls, seed: int = 6, n_objects: int = 1500) -> "StockConfig":
        """A wide, shallow corpus: many objects, two days — the sharding
        workload (items dominate, so K >> 1 object shards stay balanced)."""
        return cls(
            n_objects=n_objects,
            num_days=2,
            n_gold_objects=min(200, n_objects),
            n_terminated=max(2, n_objects // 150),
            seed=seed,
        )

    def day_labels(self) -> Tuple[str, ...]:
        if self.num_days > len(STOCK_DAY_LABELS):
            raise ConfigError(
                f"at most {len(STOCK_DAY_LABELS)} stock days available"
            )
        return STOCK_DAY_LABELS[: self.num_days]

    def report_day(self) -> str:
        labels = self.day_labels()
        return STOCK_REPORT_DAY if STOCK_REPORT_DAY in labels else labels[-1]


_AUTHORITIES = (
    # (id, name, base error rate, semantic attrs)
    ("google_finance", "Google Finance", 0.045, ()),
    ("yahoo_finance", "Yahoo! Finance", 0.055, ()),
    ("nasdaq", "NASDAQ", 0.065, ()),
    ("msn_money", "MSN Money", 0.075, ()),
    ("bloomberg", "Bloomberg", 0.035,
     (("EPS", "forward"), ("P/E", "forward"), ("Yield", "quarterly"))),
)


def _draw_schema(rng: np.random.Generator, config: StockConfig,
                 minimum: int = 3) -> Tuple[str, ...]:
    names = [spec.name for spec in STOCK_ATTRIBUTES]
    popularity = config.attribute_popularity
    schema = [a for a in names if rng.random() < popularity.get(a, 0.5)]
    if "Last price" not in schema:
        schema.insert(0, "Last price")
    while len(schema) < minimum:
        extra = names[int(rng.integers(len(names)))]
        if extra not in schema:
            schema.append(extra)
    return tuple(a for a in names if a in schema)


def _draw_variants(rng: np.random.Generator, config: StockConfig,
                   schema: Tuple[str, ...]) -> Dict[str, str]:
    variants: Dict[str, str] = {}
    for (attribute, variant), adoption in config.variant_adoption.items():
        if attribute not in schema or attribute in variants:
            continue
        if rng.random() < adoption:
            variants[attribute] = variant
    return variants


def _draw_offsets(rng: np.random.Generator, config: StockConfig,
                  schema: Tuple[str, ...],
                  variants: Dict[str, str]) -> Dict[str, float]:
    """Idiosyncratic computation bases on statistical attributes (Table 3)."""
    offsets: Dict[str, float] = {}
    for spec in STOCK_ATTRIBUTES:
        if not spec.statistical or spec.name not in schema:
            continue
        if spec.name in variants:
            continue
        if rng.random() < config.basis_offset_probability:
            factor = float(
                np.clip(rng.normal(1.0, config.basis_offset_sigma), 0.7, 1.3)
            )
            offsets[spec.name] = factor
    return offsets


def _draw_rounding(rng: np.random.Generator, schema: Tuple[str, ...]) -> Dict[str, int]:
    rounding: Dict[str, int] = {}
    for attribute, probability, sigfigs_choices in (
        ("Volume", 0.35, (2, 3)),
        ("Market cap", 0.40, (3, 4)),
        ("Shares outstanding", 0.30, (3,)),
    ):
        if attribute in schema and rng.random() < probability:
            rounding[attribute] = int(rng.choice(sigfigs_choices))
    return rounding


def _stock_error_mix() -> Dict[ErrorReason, float]:
    return {
        ErrorReason.OUT_OF_DATE: 0.62,
        ErrorReason.UNIT_ERROR: 0.03,
        ErrorReason.PURE_ERROR: 0.35,
    }


def build_stock_profiles(world: StockWorld, config: StockConfig) -> List[SourceProfile]:
    """The 55-source population of Section 2.2, calibrated to Section 3."""
    rng = rng_for(config.seed, "stock-profiles")
    all_attrs = tuple(spec.name for spec in STOCK_ATTRIBUTES)
    profiles: List[SourceProfile] = []

    # -- five authorities (Table 4) -------------------------------------
    for source_id, name, error_rate, semantic in _AUTHORITIES:
        schema = tuple(a for a in all_attrs if rng.random() < 0.93)
        profiles.append(
            SourceProfile(
                meta=SourceMeta(source_id, name,
                                SourceCategory.FINANCIAL_AGGREGATOR,
                                is_authority=True),
                schema=schema if len(schema) >= 12 else all_attrs,
                object_coverage=float(rng.uniform(0.90, 0.98)),
                error_rate=error_rate,
                error_mix=_stock_error_mix(),
                semantic_variants={a: v for a, v in semantic},
                rounding_sigfigs={},
            )
        )

    # -- copying group 1: market-data service + 10 copiers (Table 5) ----
    # A market-data feed carries real-time quote fields only; the statistical
    # attributes are left to the long tail, which keeps semantic disagreement
    # on them competitive with the truth (the paper's low-dominance items).
    fincontent_schema = tuple(
        a for a in all_attrs
        if a in (
            "Last price", "Open price", "Today's change ($)",
            "Today's change (%)", "Volume", "Today's high price",
            "Today's low price", "Market cap", "Previous close",
        )
    )
    # The feed reports consolidated volume (all venues), a semantics the
    # gold-standard authorities do not use: its 11 mirrors form a coherent
    # wrong cluster on Volume items, which is why removing copiers raises
    # the precision of dominant values (Section 3.4).
    profiles.append(
        SourceProfile(
            meta=SourceMeta("fincontent", "FinancialContent",
                            SourceCategory.FINANCIAL_NEWS),
            schema=fincontent_schema,
            object_coverage=1.0,
            error_rate=0.08,
            error_mix=_stock_error_mix(),
            semantic_variants={"Volume": "consolidated"},
        )
    )
    for k in range(10):
        profiles.append(
            SourceProfile(
                meta=SourceMeta(f"fincontent_copier_{k:02d}",
                                f"FC Affiliate {k + 1}",
                                SourceCategory.FINANCIAL_NEWS,
                                copies_from="fincontent", copy_rate=0.99),
                schema=fincontent_schema,
                object_coverage=1.0,
                error_rate=0.08,
                error_mix=_stock_error_mix(),
                semantic_variants={"Volume": "consolidated"},
            )
        )

    # -- copying group 2: two merged sites, accuracy ~.75 ----------------
    merged_schema = _draw_schema(rng, config, minimum=8)
    merged_variants = {"Dividend": "quarterly", "Yield": "quarterly"}
    merged_variants = {a: v for a, v in merged_variants.items() if a in merged_schema}
    profiles.append(
        SourceProfile(
            meta=SourceMeta("merged_a", "MergedSite A", SourceCategory.THIRD_PARTY),
            schema=merged_schema,
            object_coverage=0.97,
            error_rate=0.16,
            error_mix=_stock_error_mix(),
            semantic_variants=merged_variants,
        )
    )
    profiles.append(
        SourceProfile(
            meta=SourceMeta("merged_b", "MergedSite B", SourceCategory.THIRD_PARTY,
                            copies_from="merged_a", copy_rate=0.995),
            schema=merged_schema,
            object_coverage=0.97,
            error_rate=0.16,
            error_mix=_stock_error_mix(),
            semantic_variants=merged_variants,
        )
    )

    # -- the stale StockSmart source -------------------------------------
    dynamic_attrs = tuple(
        a for a in all_attrs
        if a not in ("Shares outstanding", "EPS", "Dividend")
    )
    profiles.append(
        SourceProfile(
            meta=SourceMeta("stocksmart", "StockSmart", SourceCategory.THIRD_PARTY),
            schema=dynamic_attrs,
            object_coverage=0.95,
            error_rate=0.05,
            error_mix=_stock_error_mix(),
            frozen_at_day=-30,
        )
    )

    # -- long tail of independent sources --------------------------------
    confused_sources = 0
    remaining = config.n_sources - len(profiles)
    if remaining < 0:
        raise ConfigError(
            f"n_sources={config.n_sources} too small for the fixed population"
        )
    volatile_picks = set(rng.choice(remaining, size=min(4, remaining), replace=False))
    low_quality_picks = set(rng.choice(remaining, size=min(3, remaining), replace=False))
    for k in range(remaining):
        schema = _draw_schema(rng, config)
        if k in low_quality_picks:
            error_rate = float(rng.uniform(0.25, 0.46))
        else:
            error_rate = float(rng.uniform(0.02, 0.15))
        variants = _draw_variants(rng, config, schema)
        offsets = _draw_offsets(rng, config, schema, variants)
        confusions: Dict[str, str] = {}
        if confused_sources < 6 and rng.random() < 0.2 and world.aliased_objects:
            confusions = dict(world.aliased_objects)
            confused_sources += 1
        volatile_days = frozenset()
        volatile_factor = 1.0
        if k in volatile_picks:
            # Dedicated stream: the population must not depend on num_days.
            vol_rng = rng_for(config.seed, "stock-volatile", k)
            n_spike = max(1, config.num_days // 5)
            volatile_days = frozenset(
                int(d)
                for d in vol_rng.choice(config.num_days, size=n_spike, replace=False)
            )
            volatile_factor = float(vol_rng.uniform(4.0, 8.0))
        profiles.append(
            SourceProfile(
                meta=SourceMeta(f"stockweb_{k:02d}", f"StockWeb {k + 1}",
                                SourceCategory.THIRD_PARTY),
                schema=schema,
                object_coverage=float(rng.uniform(0.90, 1.0)),
                error_rate=error_rate,
                error_mix=_stock_error_mix(),
                semantic_variants=variants,
                basis_offsets=offsets,
                instance_confusions=confusions,
                rounding_sigfigs=_draw_rounding(rng, schema),
                volatile_days=volatile_days,
                volatile_factor=volatile_factor,
            )
        )

    return _attach_local_schemas(profiles, config)


def _attach_local_schemas(
    profiles: List[SourceProfile], config: StockConfig
) -> List[SourceProfile]:
    """Assign local attribute spellings and tail attributes (Fig 1, Table 1)."""
    rng = rng_for(config.seed, "stock-schemas")
    n_tail = 137  # 153 global attributes - 16 considered (Table 1)
    tail_names = [f"Stat attribute {i + 1}" for i in range(n_tail)]
    tail_popularity = 0.30 / (1.0 + 0.10 * np.arange(n_tail))
    tail_synonyms = {
        name: (name, f"{name} (alt)") for name in tail_names
    }
    finished: List[SourceProfile] = []
    for profile in profiles:
        local_names = {}
        for attribute in profile.schema:
            pool = STOCK_SYNONYMS.get(attribute, (attribute,))
            local_names[attribute] = str(pool[int(rng.integers(len(pool)))])
        tail = tuple(
            name for name, p in zip(tail_names, tail_popularity)
            if rng.random() < p
        )
        full = profile.schema + tail
        for name in tail:
            pool = tail_synonyms[name]
            local_names[name] = str(pool[int(rng.integers(len(pool)))])
        finished.append(
            SourceProfile(
                meta=profile.meta,
                schema=profile.schema,
                full_schema=full,
                local_names=local_names,
                object_coverage=profile.object_coverage,
                covered_objects=profile.covered_objects,
                error_rate=profile.error_rate,
                error_mix=profile.error_mix,
                semantic_variants=profile.semantic_variants,
                basis_offsets=profile.basis_offsets,
                instance_confusions=profile.instance_confusions,
                rounding_sigfigs=profile.rounding_sigfigs,
                frozen_at_day=profile.frozen_at_day,
                volatile_days=profile.volatile_days,
                volatile_factor=profile.volatile_factor,
            )
        )
    return finished


def generate_stock_collection(config: Optional[StockConfig] = None) -> DomainCollection:
    """Generate the full Stock collection: snapshots, profiles, gold standards."""
    config = config or StockConfig()
    world = StockWorld(
        n_objects=config.n_objects,
        num_days=config.num_days,
        seed=config.seed,
        n_terminated=config.n_terminated,
    )
    profiles = build_stock_profiles(world, config)
    labels = config.day_labels()
    series = generate_series(DOMAIN, world, profiles, labels, seed=config.seed)

    rng = rng_for(config.seed, "stock-gold-objects")
    n_gold = min(config.n_gold_objects, config.n_objects)
    picks = rng.choice(config.n_objects, size=n_gold, replace=False)
    gold_objects = [world.object_ids[int(i)] for i in picks]

    gold_by_day = {
        snapshot.day: build_gold_standard(snapshot, gold_objects, min_providers=3)
        for snapshot in series
    }
    return DomainCollection(
        domain=DOMAIN,
        world=world,
        profiles=profiles,
        series=series,
        gold_by_day=gold_by_day,
        gold_objects=gold_objects,
        report_day=config.report_day(),
        config=config,
    )
