"""Deep-Web claim simulator: worlds, source profiles, domain collections."""

from repro.datagen.flight import (
    FLIGHT_ATTRIBUTES,
    FLIGHT_DAY_LABELS,
    FLIGHT_REPORT_DAY,
    FlightConfig,
    FlightWorld,
    build_flight_profiles,
    generate_flight_collection,
)
from repro.datagen.generator import (
    ClaimGenerator,
    DomainCollection,
    covered_objects_for,
    generate_series,
    generate_snapshot,
    rng_for,
)
from repro.datagen.profiles import SourceProfile
from repro.datagen.streams import ClaimStream, perturbed_claim_stream
from repro.datagen.stock import (
    STOCK_ATTRIBUTES,
    STOCK_DAY_LABELS,
    STOCK_REPORT_DAY,
    StockConfig,
    StockWorld,
    build_stock_profiles,
    generate_stock_collection,
)
from repro.datagen.worlds import World

__all__ = [
    "ClaimStream",
    "perturbed_claim_stream",
    "FLIGHT_ATTRIBUTES",
    "FLIGHT_DAY_LABELS",
    "FLIGHT_REPORT_DAY",
    "FlightConfig",
    "FlightWorld",
    "build_flight_profiles",
    "generate_flight_collection",
    "ClaimGenerator",
    "DomainCollection",
    "covered_objects_for",
    "generate_series",
    "generate_snapshot",
    "rng_for",
    "SourceProfile",
    "STOCK_ATTRIBUTES",
    "STOCK_DAY_LABELS",
    "STOCK_REPORT_DAY",
    "StockConfig",
    "StockWorld",
    "build_stock_profiles",
    "generate_stock_collection",
    "World",
]
