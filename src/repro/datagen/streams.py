"""Synthetic low-churn claim streams for streaming benchmarks and tests.

The generated daily collections re-draw every per-claim error realization
each day, which models the paper's *measurement* setup (independent daily
observations) but not its *data* characteristics: consecutive Deep-Web
snapshots share the overwhelming majority of their claims.  This module
derives such a stream from one base snapshot: each day a small fraction of
(source, item) cells is touched — most get a slightly perturbed value, some
are retracted — producing both the explicit :class:`ClaimDelta` feed a
streaming deployment would consume and the equivalent full ``Dataset``
snapshots a from-scratch pipeline would recompile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.delta import ClaimDelta
from repro.core.records import Claim, DataItem


@dataclass
class ClaimStream:
    """A base snapshot plus aligned per-day deltas and full snapshots."""

    base: Dataset
    deltas: List[ClaimDelta]
    snapshots: List[Dataset]

    @property
    def days(self) -> List[str]:
        return [delta.day for delta in self.deltas]


def perturbed_claim_stream(
    base: Dataset,
    n_days: int,
    churn: float = 0.003,
    retract_share: float = 0.15,
    jitter: float = 0.005,
    seed: int = 0,
) -> ClaimStream:
    """Derive ``n_days`` of low-churn daily changes from one snapshot.

    Each day, ``churn`` of the live (source, item) cells are touched:
    ``retract_share`` of them are retracted, the rest get their numeric
    value nudged by a relative N(0, ``jitter``) step (string values are
    kept as-is, modelling re-confirmation).  Deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    current: Dict[Tuple[str, DataItem], Claim] = {}
    for item, source_id, claim in base.iter_claims():
        current[(source_id, item)] = claim
    metas = list(base.sources.values())

    deltas: List[ClaimDelta] = []
    snapshots: List[Dataset] = []
    for step in range(1, n_days + 1):
        day = f"{base.day}+{step}"
        cells = list(current.keys())
        n_touched = max(1, int(len(cells) * churn))
        touched = rng.choice(len(cells), size=n_touched, replace=False)
        added: List[Tuple[str, DataItem, Claim]] = []
        retracted: List[Tuple[str, DataItem]] = []
        for index in touched:
            source_id, item = cells[index]
            old = current[(source_id, item)]
            if rng.random() < retract_share:
                retracted.append((source_id, item))
                del current[(source_id, item)]
                continue
            value = old.value
            if not isinstance(value, str):
                value = float(value) * (1.0 + float(rng.normal(0.0, jitter)))
            claim = Claim(value=value, granularity=old.granularity)
            added.append((source_id, item, claim))
            current[(source_id, item)] = claim
        deltas.append(
            ClaimDelta(day=day, added=tuple(added), retracted=tuple(retracted))
        )
        snapshot = Dataset(
            domain=base.domain, day=day, attributes=base.attributes
        )
        for meta in metas:
            snapshot.add_source(meta)
        for (source_id, item), claim in current.items():
            snapshot.add_claim(source_id, item, claim)
        snapshots.append(snapshot.freeze())
    return ClaimStream(base=base, deltas=deltas, snapshots=snapshots)
