"""Error analysis of the best fusion method (Section 4.2, Figure 11).

The paper manually classified a sample of the best method's mistakes into
seven causes.  We reproduce the taxonomy with a diagnostic cascade over each
error item:

1. *Selecting finer-granularity value* — the selected value rounds onto the
   gold value at some power-of-ten granularity (not really an error);
2. *Imprecise trustworthiness* — rerunning the method with the sampled
   source trustworthiness fixes the item;
3. *Not considering correct copying* — rerunning with sampled trust plus the
   known copying relationships fixes the item;
4. *Similar "false" values are provided* — similar values split/boost the
   wrong cluster;
5. *"False" value provided by high-accuracy sources*;
6. *"False" value dominant* — the wrong value is the dominant one with a
   majority;
7. *No one value dominant* — nothing stands out and the gold value has no
   edge in support or provider accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.core.records import DataItem, Value
from repro.evaluation.metrics import error_items
from repro.fusion.base import FusionResult

#: Figure 11 category labels, in the paper's legend order.
ERROR_CATEGORIES = (
    "Selecting finer-granularity value",
    "Imprecise trustworthiness",
    "Not considering correct copying",
    'Similar "false" values are provided',
    '"False" value provided by high-accuracy sources',
    '"False" value dominant',
    "No one value dominant",
)


@dataclass
class ErrorAnalysis:
    """Figure 11: error counts of the best method by diagnosed cause."""

    method: str
    counts: Dict[str, int]
    num_errors: int

    def shares(self) -> Dict[str, float]:
        total = sum(self.counts.values())
        if total == 0:
            return {label: 0.0 for label in ERROR_CATEGORIES}
        return {
            label: self.counts.get(label, 0) / total for label in ERROR_CATEGORIES
        }


def _is_finer_granularity(selected: Value, truth: Value) -> bool:
    """Whether ``selected`` rounds onto ``truth`` at a power-of-ten step."""
    try:
        fine, coarse = float(selected), float(truth)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return False
    if fine == coarse or coarse == 0:
        return fine == coarse
    magnitude = math.floor(math.log10(abs(coarse))) if coarse else 0
    for exponent in range(magnitude - 5, magnitude + 1):
        granularity = 10.0 ** exponent
        if abs(round(fine / granularity) * granularity - coarse) <= granularity * 1e-9:
            return True
    return False


def classify_error(
    dataset: Dataset,
    gold: GoldStandard,
    item: DataItem,
    result: FusionResult,
    fixed_by_trust: bool,
    fixed_by_copying: bool,
    sampled_accuracy: Dict[str, float],
) -> str:
    """Diagnose one fusion error into a Figure 11 category."""
    selected = result.selected.get(item)
    truth = gold[item]
    if selected is not None and _is_finer_granularity(selected, truth):
        return ERROR_CATEGORIES[0]
    if fixed_by_trust:
        return ERROR_CATEGORIES[1]
    if fixed_by_copying:
        return ERROR_CATEGORIES[2]

    clustering = dataset.clustering(item)
    selected_cluster = None
    gold_cluster = None
    for cluster in clustering.clusters:
        if selected is not None and dataset.values_match(
            item.attribute, cluster.representative, selected
        ):
            selected_cluster = selected_cluster or cluster
        if dataset.values_match(item.attribute, cluster.representative, truth):
            gold_cluster = gold_cluster or cluster

    # Similar false values: several distinct near-by values back the winner.
    if selected_cluster is not None:
        tolerance = dataset.tolerance(item.attribute)
        if tolerance > 0:
            try:
                chosen = float(selected_cluster.representative)  # type: ignore[arg-type]
                neighbors = sum(
                    cluster.support
                    for cluster in clustering.clusters
                    if cluster is not selected_cluster
                    and abs(float(cluster.representative) - chosen)  # type: ignore[arg-type]
                    <= 5 * tolerance
                )
                if neighbors >= max(2, selected_cluster.support // 2):
                    return ERROR_CATEGORIES[3]
            except (TypeError, ValueError):
                pass

    def mean_accuracy(cluster) -> Optional[float]:
        values = [
            sampled_accuracy[s]
            for s in cluster.providers
            if s in sampled_accuracy
        ]
        return sum(values) / len(values) if values else None

    if selected_cluster is not None and gold_cluster is not None:
        chosen_acc = mean_accuracy(selected_cluster)
        gold_acc = mean_accuracy(gold_cluster)
        if chosen_acc is not None and gold_acc is not None and chosen_acc > gold_acc + 0.05:
            return ERROR_CATEGORIES[4]

    if (
        selected_cluster is not None
        and selected_cluster is clustering.dominant
        and clustering.dominance_factor >= 0.5
    ):
        return ERROR_CATEGORIES[5]
    return ERROR_CATEGORIES[6]


def analyze_errors(
    dataset: Dataset,
    gold: GoldStandard,
    result: FusionResult,
    result_with_trust: FusionResult,
    result_with_copying: Optional[FusionResult],
    sampled_accuracy: Dict[str, float],
    sample_size: int = 20,
) -> ErrorAnalysis:
    """Figure 11: classify (a sample of) the method's errors by cause."""
    errors = sorted(error_items(dataset, gold, result))
    trust_errors = error_items(dataset, gold, result_with_trust)
    copy_errors = (
        error_items(dataset, gold, result_with_copying)
        if result_with_copying is not None
        else trust_errors
    )
    stride = max(1, len(errors) // max(sample_size, 1))
    sampled = errors[::stride][:sample_size]
    counts: Dict[str, int] = {}
    for item in sampled:
        category = classify_error(
            dataset,
            gold,
            item,
            result,
            fixed_by_trust=item not in trust_errors,
            fixed_by_copying=item not in copy_errors,
            sampled_accuracy=sampled_accuracy,
        )
        counts[category] = counts.get(category, 0) + 1
    return ErrorAnalysis(method=result.method, counts=counts, num_errors=len(errors))
