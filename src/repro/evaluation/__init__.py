"""Evaluation harness: precision/recall, comparisons, time series, errors."""

from repro.evaluation.compare import (
    TABLE8_PAIRS,
    MethodComparison,
    compare_methods,
)
from repro.evaluation.efficiency import EfficiencyPoint, efficiency_profile
from repro.evaluation.errors import (
    ERROR_CATEGORIES,
    ErrorAnalysis,
    analyze_errors,
    classify_error,
)
from repro.evaluation.metrics import (
    PrecisionRecall,
    error_items,
    evaluate,
    precision_by_dominance,
)
from repro.evaluation.selection import (
    SelectionResult,
    greedy_source_selection,
    recall_prefix_selection,
)
from repro.evaluation.ordering import (
    RecallCurve,
    recall_as_sources_added,
    sources_by_recall,
)
from repro.evaluation.timeseries import PrecisionSeries, precision_over_time

__all__ = [
    "TABLE8_PAIRS",
    "MethodComparison",
    "compare_methods",
    "EfficiencyPoint",
    "efficiency_profile",
    "ERROR_CATEGORIES",
    "ErrorAnalysis",
    "analyze_errors",
    "classify_error",
    "PrecisionRecall",
    "error_items",
    "evaluate",
    "precision_by_dominance",
    "SelectionResult",
    "greedy_source_selection",
    "recall_prefix_selection",
    "RecallCurve",
    "recall_as_sources_added",
    "sources_by_recall",
    "PrecisionSeries",
    "precision_over_time",
]
