"""Precision / recall of fusion results against a gold standard (Section 4.2).

* **precision** — fraction of output values (on gold items) consistent with
  the gold standard;
* **recall** — fraction of gold items whose value is output *and* correct.
  When all sources are fused every gold item is output, and recall equals
  precision (as the paper notes).

Figure 10 buckets precision by the item's dominance factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Union

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.core.records import DataItem
from repro.fusion.base import FusionProblem, FusionResult
from repro.profiling.dominance import DOMINANCE_BUCKETS, dominance_bucket

#: Anything exposing ``values_match(attribute, a, b)`` — a snapshot or a
#: compiled (possibly source-restricted) fusion problem.
DatasetLike = Union[Dataset, FusionProblem]


@dataclass
class PrecisionRecall:
    """Precision/recall of one fusion run."""

    precision: float
    recall: float
    num_output: int
    num_gold: int
    num_correct: int
    errors: List[DataItem]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"({self.num_correct}/{self.num_output} output, {self.num_gold} gold)"
        )


def evaluate(
    dataset: DatasetLike, gold: GoldStandard, result: FusionResult
) -> PrecisionRecall:
    """Score one fusion result against the gold standard.

    ``dataset`` may be the snapshot or the compiled :class:`FusionProblem`
    the result was produced from (both provide the tolerance-aware
    ``values_match`` used for gold matching) — source-restricted problems
    have no backing dataset.
    """
    num_output = num_correct = 0
    errors: List[DataItem] = []
    for item in gold.items:
        value = result.selected.get(item)
        if value is None:
            continue
        num_output += 1
        if gold.is_correct(dataset, item, value):
            num_correct += 1
        else:
            errors.append(item)
    num_gold = len(gold)
    return PrecisionRecall(
        precision=num_correct / num_output if num_output else 0.0,
        recall=num_correct / num_gold if num_gold else 0.0,
        num_output=num_output,
        num_gold=num_gold,
        num_correct=num_correct,
        errors=errors,
    )


def error_items(
    dataset: DatasetLike, gold: GoldStandard, result: FusionResult
) -> Set[DataItem]:
    """Gold items on which the result is wrong (or missing)."""
    wrong: Set[DataItem] = set()
    for item in gold.items:
        value = result.selected.get(item)
        if value is None or not gold.is_correct(dataset, item, value):
            wrong.add(item)
    return wrong


def precision_by_dominance(
    dataset: Dataset, gold: GoldStandard, result: FusionResult
) -> Dict[float, Optional[float]]:
    """Figure 10: fusion precision bucketed by dominance factor."""
    correct: Dict[float, int] = {b: 0 for b in DOMINANCE_BUCKETS}
    total: Dict[float, int] = {b: 0 for b in DOMINANCE_BUCKETS}
    for item in gold.items:
        value = result.selected.get(item)
        if value is None:
            continue
        clustering = dataset.clustering(item)
        if not clustering.clusters:
            continue
        bucket = dominance_bucket(clustering.dominance_factor)
        total[bucket] += 1
        if gold.is_correct(dataset, item, value):
            correct[bucket] += 1
    return {
        b: (correct[b] / total[b] if total[b] else None) for b in DOMINANCE_BUCKETS
    }
