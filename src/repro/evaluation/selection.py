"""Source selection (Section 5, and Dong-Saha-Srivastava "Less is More").

The paper: *"on both data sets we observed that fusion on a few high recall
sources obtains the highest recall, but on all sources obtains a lower
recall ... This calls for source selection — can we automatically select a
subset of sources that lead to the best integration results?"*

Two selectors over a validation gold standard:

* :func:`greedy_source_selection` — forward selection: repeatedly add the
  source whose addition most improves fusion recall, stopping when no
  candidate improves it by at least ``min_gain``.
* :func:`recall_prefix_selection` — the paper's simpler heuristic: order
  sources by individual recall and cut the prefix at the recall peak
  (the Figure 9 curve's maximizer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.errors import FusionError
from repro.evaluation.metrics import evaluate
from repro.evaluation.ordering import sources_by_recall
from repro.fusion.base import FusionProblem
from repro.fusion.registry import make_method


@dataclass
class SelectionResult:
    """Outcome of a source-selection run."""

    selected: List[str]
    recall: float
    all_sources_recall: float
    history: List[float] = field(default_factory=list)

    @property
    def gain_over_all_sources(self) -> float:
        return self.recall - self.all_sources_recall


def _fusion_recall(
    base: FusionProblem, gold: GoldStandard, sources: Sequence[str], method: str
) -> float:
    """Fusion recall on a source subset, carved from the compiled problem."""
    try:
        subproblem = base.restrict_sources(sources)
    except FusionError:  # every item lost all its claims
        return 0.0
    result = make_method(method).run(subproblem)
    return evaluate(subproblem, gold, result).recall


def _subset_recalls(
    base: FusionProblem,
    gold: GoldStandard,
    subsets: Sequence[Sequence[str]],
    method: str,
    workers: int = 0,
    scheduler=None,
) -> List[float]:
    """Fusion recall of ``method`` on every subset (batched / parallel).

    Every subset is an independent ``restrict_sources`` solve, so they go
    through the planned scheduler as one sweep — identical recalls to the
    one-at-a-time :func:`_fusion_recall` loop.
    """
    from repro.parallel import solve_sweep

    rows = solve_sweep(
        base,
        [method],
        subsets,
        gold=gold,
        workers=workers,
        scheduler=scheduler,
        evaluate=True,
        return_selection=False,
    )
    return [row[0].recall or 0.0 for row in rows]


def greedy_source_selection(
    dataset: Dataset,
    gold: GoldStandard,
    method: str = "Vote",
    max_sources: Optional[int] = None,
    min_gain: float = 1e-4,
    candidate_pool: Optional[Sequence[str]] = None,
    workers: int = 0,
    scheduler=None,
) -> SelectionResult:
    """Greedy forward selection maximizing fusion recall on the gold slice.

    ``candidate_pool`` restricts the candidates (default: all sources,
    pre-ordered by individual recall so ties resolve sensibly).  Complexity
    is O(|selected| * |pool|) fusion runs — each round's candidate
    evaluations are independent and run as one batched (optionally
    multi-worker) sweep.
    """
    pool = list(
        candidate_pool if candidate_pool is not None else sources_by_recall(dataset, gold)
    )
    if not pool:
        raise FusionError("no candidate sources to select from")
    limit = max_sources if max_sources is not None else len(pool)
    base = FusionProblem(dataset)

    selected: List[str] = []
    history: List[float] = []
    current = 0.0
    while pool and len(selected) < limit:
        recalls = _subset_recalls(
            base, gold, [selected + [c] for c in pool], method,
            workers=workers, scheduler=scheduler,
        )
        best_source = None
        best_recall = current
        for candidate, recall in zip(pool, recalls):
            if recall > best_recall + min_gain or (
                best_source is None and not selected
            ):
                if recall >= best_recall:
                    best_source = candidate
                    best_recall = recall
        if best_source is None:
            break
        selected.append(best_source)
        pool.remove(best_source)
        current = best_recall
        history.append(current)

    all_recall = _fusion_recall(base, gold, dataset.source_ids, method)
    return SelectionResult(
        selected=selected,
        recall=current,
        all_sources_recall=all_recall,
        history=history,
    )


def recall_prefix_selection(
    dataset: Dataset,
    gold: GoldStandard,
    method: str = "Vote",
    max_prefix: Optional[int] = None,
    workers: int = 0,
    scheduler=None,
) -> SelectionResult:
    """Cut the recall-ordered source list at the fusion-recall peak."""
    order = sources_by_recall(dataset, gold)
    limit = min(max_prefix or len(order), len(order))
    base = FusionProblem(dataset)
    history = _subset_recalls(
        base, gold, [order[:size] for size in range(1, limit + 1)], method,
        workers=workers, scheduler=scheduler,
    )
    best_size = max(range(len(history)), key=lambda i: (history[i], -i)) + 1
    best_recall = history[best_size - 1]
    all_recall = history[-1] if limit == len(order) else _fusion_recall(
        base, gold, order, method
    )
    return SelectionResult(
        selected=order[:best_size],
        recall=best_recall,
        all_sources_recall=all_recall,
        history=history,
    )
