"""Incremental source ordering (Section 4.2, Figure 9).

The paper orders sources by recall (coverage x accuracy against the gold
standard), fuses growing prefixes, and plots recall versus the number of
sources.  The signature finding: recall peaks after a handful of high-recall
sources (5 for Stock, 9 for Flight) and *declines* as the long tail of
low-quality sources is added.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard, recall_of_source
from repro.evaluation.metrics import evaluate
from repro.fusion.base import FusionProblem
from repro.fusion.registry import make_method


def sources_by_recall(dataset: Dataset, gold: GoldStandard) -> List[str]:
    """Source ids ordered by decreasing recall (Figure 9's x-axis order)."""
    scored = [
        (recall_of_source(dataset, gold, source_id), source_id)
        for source_id in dataset.source_ids
    ]
    scored.sort(key=lambda pair: (-pair[0], pair[1]))
    return [source_id for _recall, source_id in scored]


@dataclass
class RecallCurve:
    """Recall of one method at every source-prefix size."""

    method: str
    recalls: List[float]

    @property
    def peak(self) -> int:
        """1-based prefix size at which recall peaks."""
        best = max(range(len(self.recalls)), key=lambda i: self.recalls[i])
        return best + 1

    @property
    def final(self) -> float:
        return self.recalls[-1] if self.recalls else 0.0

    @property
    def peak_recall(self) -> float:
        return max(self.recalls) if self.recalls else 0.0


def recall_as_sources_added(
    dataset: Dataset,
    gold: GoldStandard,
    method_names: Sequence[str],
    ordering: Optional[List[str]] = None,
    prefix_sizes: Optional[Sequence[int]] = None,
    problem: Optional[FusionProblem] = None,
    workers: int = 0,
    scheduler=None,
    batched: bool = True,
) -> Dict[str, RecallCurve]:
    """Figure 9: recall of each method over growing source prefixes.

    ``prefix_sizes`` defaults to every size from 1 to all sources; pass a
    sparser grid to keep large sweeps fast.  The snapshot is compiled to a
    :class:`FusionProblem` once (pass ``problem`` to reuse a cached one) and
    every prefix is carved out with ``restrict_sources`` — no per-prefix
    dataset copies or re-clustering.

    Prefixes are independent solves, so the sweep runs through the batched
    restriction solver (:mod:`repro.fusion.batch`) and, with ``workers > 1``
    (or a shared :class:`~repro.parallel.SolveScheduler`), fans out across
    worker processes — identical recalls either way.  ``batched=False``
    forces the original per-prefix loop.
    """
    from repro.parallel import solve_sweep

    order = ordering if ordering is not None else sources_by_recall(dataset, gold)
    sizes = list(prefix_sizes) if prefix_sizes is not None else list(
        range(1, len(order) + 1)
    )
    base = problem if problem is not None else FusionProblem(dataset)
    if not batched and workers <= 1 and scheduler is None:
        # The historical per-prefix loop, kept as the benchmark baseline.
        curves: Dict[str, List[float]] = {name: [] for name in method_names}
        for size in sizes:
            subproblem = base.restrict_sources(order[:size])
            for name in method_names:
                result = make_method(name).run(subproblem)
                curves[name].append(evaluate(subproblem, gold, result).recall)
        return {
            name: RecallCurve(method=name, recalls=values)
            for name, values in curves.items()
        }
    rows = solve_sweep(
        base,
        list(method_names),
        [order[:size] for size in sizes],
        gold=gold,
        workers=workers,
        scheduler=scheduler,
        evaluate=True,
        batched=batched,
        return_selection=False,
    )
    return {
        name: RecallCurve(
            method=name, recalls=[row[c].recall or 0.0 for row in rows]
        )
        for c, name in enumerate(method_names)
    }
