"""Pairwise method comparison (Section 4.2, Table 8).

For each (basic, advanced) method pair the paper counts how many of the
basic method's errors the advanced method fixes, how many new errors it
introduces, and the net precision change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.evaluation.metrics import error_items, evaluate
from repro.fusion.base import FusionProblem, FusionResult

#: The method pairs compared in Table 8.
TABLE8_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("Hub", "AvgLog"),
    ("Invest", "PooledInvest"),
    ("2-Estimates", "3-Estimates"),
    ("TruthFinder", "AccuSim"),
    ("AccuPr", "AccuSim"),
    ("AccuPr", "PopAccu"),
    ("AccuSim", "AccuSimAttr"),
    ("AccuSimAttr", "AccuFormatAttr"),
    ("AccuFormatAttr", "AccuCopy"),
)


@dataclass
class MethodComparison:
    """One Table 8 row: how the advanced method changes the basic one."""

    basic: str
    advanced: str
    fixed_errors: int
    new_errors: int
    precision_delta: float


def compare_methods(
    dataset: Dataset,
    gold: GoldStandard,
    basic_result: FusionResult,
    advanced_result: FusionResult,
) -> MethodComparison:
    """Count fixed/new errors between two fusion results (Table 8)."""
    basic_errors = error_items(dataset, gold, basic_result)
    advanced_errors = error_items(dataset, gold, advanced_result)
    fixed = len(basic_errors - advanced_errors)
    new = len(advanced_errors - basic_errors)
    basic_precision = evaluate(dataset, gold, basic_result).precision
    advanced_precision = evaluate(dataset, gold, advanced_result).precision
    return MethodComparison(
        basic=basic_result.method,
        advanced=advanced_result.method,
        fixed_errors=fixed,
        new_errors=new,
        precision_delta=advanced_precision - basic_precision,
    )


def run_comparisons(
    dataset: Dataset,
    gold: GoldStandard,
    problem: Optional[FusionProblem] = None,
    pairs: Sequence[Tuple[str, str]] = TABLE8_PAIRS,
    workers: int = 0,
    scheduler=None,
) -> List[MethodComparison]:
    """Run every method named in ``pairs`` once and compare the pairs.

    The distinct methods are one solve each on the shared compiled problem
    — an embarrassingly parallel plan, so they fan out through the solve
    scheduler when ``workers > 1`` (or a shared scheduler is passed).
    """
    from repro.fusion.registry import make_method
    from repro.parallel import solve_methods

    names: List[str] = []
    for basic, advanced in pairs:
        for name in (basic, advanced):
            if name not in names:
                names.append(name)
    base = problem if problem is not None else FusionProblem(dataset)
    if workers <= 1 and scheduler is None:
        results: Dict[str, FusionResult] = {
            name: make_method(name).run(base) for name in names
        }
    else:
        outcomes = solve_methods(
            base, names, workers=workers, scheduler=scheduler
        )
        results = {name: oc.result for name, oc in zip(names, outcomes)}
    return [
        compare_methods(dataset, gold, results[basic], results[advanced])
        for basic, advanced in pairs
    ]
