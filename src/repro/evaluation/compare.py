"""Pairwise method comparison (Section 4.2, Table 8).

For each (basic, advanced) method pair the paper counts how many of the
basic method's errors the advanced method fixes, how many new errors it
introduces, and the net precision change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.evaluation.metrics import error_items, evaluate
from repro.fusion.base import FusionResult

#: The method pairs compared in Table 8.
TABLE8_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("Hub", "AvgLog"),
    ("Invest", "PooledInvest"),
    ("2-Estimates", "3-Estimates"),
    ("TruthFinder", "AccuSim"),
    ("AccuPr", "AccuSim"),
    ("AccuPr", "PopAccu"),
    ("AccuSim", "AccuSimAttr"),
    ("AccuSimAttr", "AccuFormatAttr"),
    ("AccuFormatAttr", "AccuCopy"),
)


@dataclass
class MethodComparison:
    """One Table 8 row: how the advanced method changes the basic one."""

    basic: str
    advanced: str
    fixed_errors: int
    new_errors: int
    precision_delta: float


def compare_methods(
    dataset: Dataset,
    gold: GoldStandard,
    basic_result: FusionResult,
    advanced_result: FusionResult,
) -> MethodComparison:
    """Count fixed/new errors between two fusion results (Table 8)."""
    basic_errors = error_items(dataset, gold, basic_result)
    advanced_errors = error_items(dataset, gold, advanced_result)
    fixed = len(basic_errors - advanced_errors)
    new = len(advanced_errors - basic_errors)
    basic_precision = evaluate(dataset, gold, basic_result).precision
    advanced_precision = evaluate(dataset, gold, advanced_result).precision
    return MethodComparison(
        basic=basic_result.method,
        advanced=advanced_result.method,
        fixed_errors=fixed,
        new_errors=new,
        precision_delta=advanced_precision - basic_precision,
    )
