"""Fusion precision over the observation period (Section 4.2, Table 9).

Runs every method on every daily snapshot and reports, per method, the
average, minimum, and standard deviation of the daily precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.dataset import DatasetSeries
from repro.core.gold import GoldStandard
from repro.evaluation.metrics import evaluate
from repro.fusion.base import FusionProblem
from repro.fusion.registry import make_method


@dataclass
class PrecisionSeries:
    """One method's per-day precision plus the Table 9 summary."""

    method: str
    days: List[str]
    precisions: List[float]

    @property
    def average(self) -> float:
        return sum(self.precisions) / len(self.precisions) if self.precisions else 0.0

    @property
    def minimum(self) -> float:
        return min(self.precisions) if self.precisions else 0.0

    @property
    def deviation(self) -> float:
        if len(self.precisions) < 2:
            return 0.0
        mean = self.average
        return math.sqrt(
            sum((p - mean) ** 2 for p in self.precisions) / len(self.precisions)
        )


def precision_over_time(
    series: DatasetSeries,
    gold_by_day: Dict[str, GoldStandard],
    method_names: Sequence[str],
    days: Optional[Sequence[str]] = None,
    method_kwargs: Optional[Dict[str, dict]] = None,
) -> Dict[str, PrecisionSeries]:
    """Table 9: run each method on each day and summarize precision."""
    wanted_days = set(days) if days is not None else None
    per_method: Dict[str, PrecisionSeries] = {
        name: PrecisionSeries(method=name, days=[], precisions=[])
        for name in method_names
    }
    for snapshot in series:
        if wanted_days is not None and snapshot.day not in wanted_days:
            continue
        gold = gold_by_day[snapshot.day]
        problem = FusionProblem(snapshot)
        for name in method_names:
            kwargs = (method_kwargs or {}).get(name, {})
            result = make_method(name, **kwargs).run(problem)
            score = evaluate(snapshot, gold, result)
            per_method[name].days.append(snapshot.day)
            per_method[name].precisions.append(score.precision)
    return per_method
