"""Fusion precision over the observation period (Section 4.2, Table 9).

Runs every method on every daily snapshot and reports, per method, the
average, minimum, and standard deviation of the daily precision.

The sweep runs on **fusion sessions** by default: the day's claims are
diff-compiled against the previous day's universe
(:class:`~repro.core.delta.SeriesCompiler`) instead of recompiled from
scratch, and one compiled problem is shared by all methods.  With the
default ``warm_start=False`` every day still cold-starts the fixed point,
so the selections — and therefore every Table 9 number — are identical to
the legacy per-day rebuild (``engine="cold"``, kept for comparison);
``warm_start=True`` additionally resumes each method from the previous
day's converged trust, trading bit-equality for fewer rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.dataset import DatasetSeries
from repro.core.gold import GoldStandard
from repro.errors import FusionError
from repro.evaluation.metrics import evaluate
from repro.fusion.base import FusionProblem
from repro.fusion.registry import make_method


@dataclass
class PrecisionSeries:
    """One method's per-day precision plus the Table 9 summary."""

    method: str
    days: List[str]
    precisions: List[float]

    @property
    def average(self) -> float:
        return sum(self.precisions) / len(self.precisions) if self.precisions else 0.0

    @property
    def minimum(self) -> float:
        return min(self.precisions) if self.precisions else 0.0

    @property
    def deviation(self) -> float:
        if len(self.precisions) < 2:
            return 0.0
        mean = self.average
        return math.sqrt(
            sum((p - mean) ** 2 for p in self.precisions) / len(self.precisions)
        )


def precision_over_time(
    series: DatasetSeries,
    gold_by_day: Dict[str, GoldStandard],
    method_names: Sequence[str],
    days: Optional[Sequence[str]] = None,
    method_kwargs: Optional[Dict[str, dict]] = None,
    engine: str = "session",
    warm_start: bool = False,
    workers: int = 0,
) -> Dict[str, PrecisionSeries]:
    """Table 9: run each method on each day and summarize precision.

    Days stay sequential (delta compilation and warm starts are causal),
    but with ``workers > 1`` the methods within each day solve in parallel
    through the stream runner's scheduler — identical numbers either way.
    """
    if engine not in ("session", "cold"):
        raise FusionError(f"unknown timeseries engine {engine!r}")
    wanted_days = set(days) if days is not None else None
    per_method: Dict[str, PrecisionSeries] = {
        name: PrecisionSeries(method=name, days=[], precisions=[])
        for name in method_names
    }
    runner = None
    if engine == "session":
        from repro.streaming import StreamRunner

        runner = StreamRunner(
            method_names, method_kwargs, warm_start=warm_start,
            workers=workers,
        )
    try:
        for snapshot in series:
            if wanted_days is not None and snapshot.day not in wanted_days:
                continue
            gold = gold_by_day[snapshot.day]
            if runner is not None:
                step = runner.push(snapshot)
                results = step.results
            else:
                problem = FusionProblem(snapshot)
                results = {
                    name: make_method(
                        name, **(method_kwargs or {}).get(name, {})
                    ).run(problem)
                    for name in method_names
                }
            for name in method_names:
                score = evaluate(snapshot, gold, results[name])
                per_method[name].days.append(snapshot.day)
                per_method[name].precisions.append(score.precision)
    finally:
        if runner is not None:
            runner.close()
    return per_method
