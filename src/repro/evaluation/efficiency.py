"""Precision versus efficiency (Section 4.2, Figure 12).

Runs every method on one snapshot, recording wall-clock runtime and
precision.  Absolute times are hardware-specific; the paper's finding is the
*relative* ordering — VOTE sub-second, iterative methods an order of
magnitude slower, per-attribute and copy-aware variants the slowest — which
is asymptotic and survives the port.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.evaluation.metrics import evaluate
from repro.fusion.base import FusionProblem
from repro.fusion.registry import make_method
from repro.fusion.spec import FusionSession, MethodSpec


@dataclass
class EfficiencyPoint:
    """One Figure 12 point: a method's runtime and precision."""

    method: str
    runtime_seconds: float
    precision: float
    rounds: int


def efficiency_profile(
    dataset: Dataset,
    gold: GoldStandard,
    method_names: Sequence[str],
    problem: Optional[FusionProblem] = None,
    method_kwargs: Optional[Dict[str, dict]] = None,
) -> List[EfficiencyPoint]:
    """Time every method on one snapshot (problem construction excluded).

    Methods run as cold fusion sessions (the canonical solver entry since
    the spec/session split).  Selection-independent caches that are shared
    across methods — the copy-detection membership/overlap structures —
    are warmed *outside* the timed region: Figure 12 reports the cost of
    the solve, not of whichever method happens to take the cache miss.
    """
    shared = problem if problem is not None else FusionProblem(dataset)
    points: List[EfficiencyPoint] = []
    for name in method_names:
        kwargs = (method_kwargs or {}).get(name, {})
        spec = MethodSpec.of(make_method(name, **kwargs))
        if spec.uses_copy_detection:
            shared.copy_structures  # noqa: B018 - warm the shared cache
        session = FusionSession(spec, warm_start=False)
        started = time.perf_counter()
        result = session.step(shared)
        elapsed = time.perf_counter() - started
        score = evaluate(dataset, gold, result)
        points.append(
            EfficiencyPoint(
                method=name,
                runtime_seconds=elapsed,
                precision=score.precision,
                rounds=result.rounds,
            )
        )
    return points
