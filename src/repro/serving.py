"""The queryable truth-serving layer: versioned stores over fused truths.

Fusing a corpus answers *every* item at once, but serving traffic asks for
one ``(object, attribute)`` at a time and cannot wait for a solve.  This
module is the read path:

* :class:`TruthStore` — an immutable-snapshot, versioned store of fused
  truths.  Writers build a complete new :class:`StoreSnapshot` and swap it
  in atomically (one reference assignment under a lock), so readers —
  which never lock — can never observe a torn version: every answer they
  compute comes from exactly one published snapshot and carries its
  version.  Queries are point lookups by ``(object, attribute)`` (per
  method or the store's default), per-source trust reads, and
  method-ensemble answers (majority vote across the published methods).
  Publishing accepts a plain ``{method: FusionResult}`` mapping, a
  :class:`~repro.streaming.StreamStep` (the incremental path: each
  :class:`~repro.streaming.StreamRunner` day is delta-compiled by the
  series compiler and republished here), or the per-shard results of a
  :class:`~repro.core.shard.ShardPlan` — independent shards partition the
  items, and their per-source trust merges by claim-weighted mean.
* :class:`TruthService` — glue that owns a :class:`StreamRunner` and a
  store: ``ingest(dataset)`` / ``apply(delta)`` advance the runner's warm
  sessions one day and publish the day's results as the next store version.

Stores serialize to JSON (:meth:`TruthStore.save` / :meth:`TruthStore.load`)
so ``cli serve`` can solve once and ``cli query`` can answer point lookups
from the file without ever re-solving.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.records import DataItem, Value
from repro.errors import FusionError, StalePublishError
from repro.io import PathLike, _decode_value, _encode_value

__all__ = [
    "TruthAnswer",
    "StoreSnapshot",
    "TruthStore",
    "TruthService",
    "merge_shard_trust",
]


def merge_shard_trust(
    trusts: Sequence[Dict[str, float]],
    weights: Optional[Sequence[Dict[str, float]]] = None,
) -> Dict[str, float]:
    """Merge per-shard per-source trust by weighted mean.

    ``weights[i][source]`` is shard ``i``'s evidence mass for the source
    (claim counts); without weights every shard's estimate counts equally.
    A source no shard has evidence for falls back to the plain mean of its
    estimates.  The single implementation behind both
    :meth:`TruthStore.publish_shards` and the independent-mode sharded
    stream merge (:class:`repro.streaming.StreamRunner`), so the two paths
    cannot drift apart.
    """
    if weights is not None and len(weights) < len(trusts):
        raise FusionError(
            f"merge_shard_trust got {len(trusts)} shard trust maps but only "
            f"{len(weights)} weight maps; every shard needs its weights"
        )
    weighted: Dict[str, float] = {}
    weight_sum: Dict[str, float] = {}
    plain_sum: Dict[str, float] = {}
    plain_n: Dict[str, int] = {}
    for index, trust in enumerate(trusts):
        for source_id, value in trust.items():
            weight = 1.0
            if weights is not None:
                weight = float(weights[index].get(source_id, 0.0))
            weighted[source_id] = weighted.get(source_id, 0.0) + weight * value
            weight_sum[source_id] = weight_sum.get(source_id, 0.0) + weight
            plain_sum[source_id] = plain_sum.get(source_id, 0.0) + value
            plain_n[source_id] = plain_n.get(source_id, 0) + 1
    return {
        source_id: (
            weighted[source_id] / weight_sum[source_id]
            if weight_sum[source_id] > 0
            else plain_sum[source_id] / plain_n[source_id]
        )
        for source_id in weighted
    }

ItemKey = Tuple[str, str]  # (object_id, attribute)


@dataclass(frozen=True)
class TruthAnswer:
    """One point-query answer, stamped with the snapshot it came from."""

    object_id: str
    attribute: str
    value: Value
    method: str
    version: int
    day: Optional[str]


@dataclass(frozen=True)
class StoreSnapshot:
    """One immutable published version of the store.

    ``truths`` maps ``(object_id, attribute)`` to the per-method selected
    values; ``trust`` maps method -> source -> trustworthiness.  Snapshots
    are never mutated after publication — readers holding one can issue any
    number of internally-consistent queries against it.
    """

    version: int
    day: Optional[str] = None
    methods: Tuple[str, ...] = ()
    truths: Dict[ItemKey, Dict[str, Value]] = field(default_factory=dict)
    trust: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def n_items(self) -> int:
        return len(self.truths)


class TruthStore:
    """A versioned, queryable store of fused truths (see module docstring).

    With ``monotonic_days=True`` publishes must carry nondecreasing days
    (lexicographic order — days are ISO-date-like strings): a delayed
    re-publish of an older day raises :class:`~repro.errors.StalePublishError`
    instead of silently overwriting a newer snapshot.  The HTTP front-end
    (:mod:`repro.server`) enables it, because its publish loop is exactly
    where out-of-order completion is real.  Re-publishing the *same* day is
    always allowed (it is how a day's refreshed solve lands).
    """

    def __init__(self, *, monotonic_days: bool = False):
        self._snapshot = StoreSnapshot(version=0)
        self._lock = threading.Lock()
        self._monotonic_days = bool(monotonic_days)
        self._listeners: List[Callable[[StoreSnapshot], None]] = []

    # ---------------------------------------------------------------- reads
    def snapshot(self) -> StoreSnapshot:
        """The current published snapshot (grab once for multi-read queries)."""
        return self._snapshot

    @property
    def version(self) -> int:
        return self._snapshot.version

    @property
    def day(self) -> Optional[str]:
        return self._snapshot.day

    @property
    def methods(self) -> Tuple[str, ...]:
        return self._snapshot.methods

    @property
    def n_items(self) -> int:
        return self._snapshot.n_items

    def lookup(
        self,
        object_id: str,
        attribute: str,
        method: Optional[str] = None,
        snapshot: Optional[StoreSnapshot] = None,
    ) -> Optional[TruthAnswer]:
        """The fused truth of one data item (``None`` if unknown).

        ``method`` defaults to the first published method.  Pass a
        ``snapshot`` (from :meth:`snapshot`) to pin several lookups to one
        version.
        """
        snap = snapshot if snapshot is not None else self._snapshot
        values = snap.truths.get((object_id, attribute))
        if values is None:
            return None
        if method is None:
            method = snap.methods[0] if snap.methods else None
        if method is None or method not in values:
            return None
        return TruthAnswer(
            object_id=object_id,
            attribute=attribute,
            value=values[method],
            method=method,
            version=snap.version,
            day=snap.day,
        )

    def ensemble(
        self,
        object_id: str,
        attribute: str,
        snapshot: Optional[StoreSnapshot] = None,
    ) -> Optional[TruthAnswer]:
        """Majority vote across the published methods' answers.

        Values are pooled by exact equality (method selections share the
        cluster representatives, so agreeing methods agree exactly); ties
        break toward the earliest method in publish order.
        """
        snap = snapshot if snapshot is not None else self._snapshot
        values = snap.truths.get((object_id, attribute))
        if not values:
            return None
        candidates: List[Tuple[Value, int, int]] = []  # value, votes, first order
        for order, method in enumerate(snap.methods):
            value = values.get(method)
            if value is None:
                continue
            for i, (existing, votes, first) in enumerate(candidates):
                if existing == value:
                    candidates[i] = (existing, votes + 1, first)
                    break
            else:
                candidates.append((value, 1, order))
        if not candidates:
            return None
        best = min(candidates, key=lambda c: (-c[1], c[2]))
        return TruthAnswer(
            object_id=object_id,
            attribute=attribute,
            value=best[0],
            method="Ensemble",
            version=snap.version,
            day=snap.day,
        )

    def trust(
        self,
        source_id: str,
        method: Optional[str] = None,
        snapshot: Optional[StoreSnapshot] = None,
    ) -> Optional[float]:
        """The published trustworthiness of one source (``None`` if unknown)."""
        snap = snapshot if snapshot is not None else self._snapshot
        if method is None:
            method = snap.methods[0] if snap.methods else None
        if method is None:
            return None
        return snap.trust.get(method, {}).get(source_id)

    # --------------------------------------------------------------- writes
    def add_listener(self, callback: Callable[[StoreSnapshot], None]) -> None:
        """Register ``callback(snapshot)`` invoked after every publish.

        Callbacks run under the publish lock so they observe versions in
        order; keep them cheap (the HTTP front-end bridges into its event
        loop with ``call_soon_threadsafe`` and returns immediately).
        """
        with self._lock:
            self._listeners.append(callback)

    def _swap(
        self,
        day: Optional[str],
        methods: Sequence[str],
        truths: Dict[ItemKey, Dict[str, Value]],
        trust: Dict[str, Dict[str, float]],
    ) -> int:
        with self._lock:
            current = self._snapshot
            if (
                self._monotonic_days
                and day is not None
                and current.day is not None
                and day < current.day
            ):
                raise StalePublishError(
                    f"publish of day {day!r} rejected: the store already "
                    f"serves day {current.day!r} (version {current.version}) "
                    "and was built with monotonic_days=True"
                )
            snapshot = StoreSnapshot(
                version=current.version + 1,
                day=day,
                methods=tuple(methods),
                truths=truths,
                trust=trust,
            )
            self._snapshot = snapshot
            for listener in self._listeners:
                listener(snapshot)
            return snapshot.version

    def publish(self, day: Optional[str], results: Dict[str, object]) -> int:
        """Publish one day's ``{method: FusionResult}``; returns the version."""
        if not results:
            raise FusionError("publish needs at least one method result")
        methods = list(results)
        truths: Dict[ItemKey, Dict[str, Value]] = {}
        trust: Dict[str, Dict[str, float]] = {}
        for method in methods:
            result = results[method]
            for item, value in result.selected.items():
                truths.setdefault((item.object_id, item.attribute), {})[method] = value
            trust[method] = dict(result.trust)
        return self._swap(day, methods, truths, trust)

    def publish_shards(
        self,
        day: Optional[str],
        shard_results: Sequence[Dict[str, object]],
        source_weights: Optional[Sequence[Dict[str, float]]] = None,
    ) -> int:
        """Merge per-shard ``{method: FusionResult}`` dicts into one version.

        Shards partition the items, so their truths union disjointly.  Per
        -source trust is merged by weighted mean across the shards —
        ``source_weights[i][source]`` is the shard's evidence mass for the
        source (claim counts from :class:`~repro.core.shard.ShardedCorpus`);
        without weights every shard's estimate counts equally.
        """
        if not shard_results:
            raise FusionError("publish_shards needs at least one shard")
        methods = list(shard_results[0])
        # Validate the full cross-product up front: a shard missing a method
        # (partial shard failure) must fail the publish cleanly before any
        # state is assembled, not as a bare KeyError halfway through.
        for index, results in enumerate(shard_results):
            for method in methods:
                if method not in results:
                    raise FusionError(
                        f"shard {index} is missing method {method!r}: every "
                        "shard must carry the same methods "
                        f"(shard 0 published {methods!r}); refusing the "
                        "partial publish"
                    )
            for method in results:
                if method not in methods:
                    raise FusionError(
                        f"shard {index} carries extra method {method!r} "
                        f"absent from shard 0 ({methods!r}); refusing the "
                        "inconsistent publish"
                    )
        truths: Dict[ItemKey, Dict[str, Value]] = {}
        trust: Dict[str, Dict[str, float]] = {}
        for method in methods:
            for results in shard_results:
                for item, value in results[method].selected.items():
                    key = (item.object_id, item.attribute)
                    truths.setdefault(key, {})[method] = value
            trust[method] = merge_shard_trust(
                [results[method].trust for results in shard_results],
                source_weights,
            )
        return self._swap(day, methods, truths, trust)

    def publish_step(self, step) -> int:
        """Publish one :class:`~repro.streaming.StreamStep` (incremental path)."""
        return self.publish(step.day, step.results)

    def publish_plan(self, plan_result) -> int:
        """Publish a :class:`~repro.core.shard.ShardPlanResult` (either mode)."""
        if plan_result.mode == "exact":
            return self.publish(plan_result.day, plan_result.results)
        return self.publish_shards(
            plan_result.day,
            plan_result.shard_results,
            source_weights=plan_result.source_weights,
        )

    # -------------------------------------------------------------- persist
    def save(self, path: PathLike) -> None:
        """Serialize the current snapshot to JSON (the ``cli serve`` output).

        The write is atomic: the payload lands in a temporary file in the
        target's directory and is :func:`os.replace`\\ d over ``path``, so a
        crash mid-write can never leave a torn store behind — readers (and
        ``cli query``) see either the previous complete file or the new one.
        """
        snap = self._snapshot
        payload = {
            "version": snap.version,
            "day": snap.day,
            "methods": list(snap.methods),
            "truths": [
                {
                    "object": object_id,
                    "attribute": attribute,
                    "values": {
                        method: _encode_value(value)
                        for method, value in values.items()
                    },
                }
                for (object_id, attribute), values in sorted(snap.truths.items())
            ],
            "trust": snap.trust,
        }
        target = os.fspath(path)
        directory = os.path.dirname(target) or "."
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(tmp_path, target)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: PathLike) -> "TruthStore":
        """Load a store written by :meth:`save`; queries need no solver."""
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        store = cls()
        truths: Dict[ItemKey, Dict[str, Value]] = {}
        for entry in payload["truths"]:
            truths[(entry["object"], entry["attribute"])] = {
                method: _decode_value(text)
                for method, text in entry["values"].items()
            }
        store._snapshot = StoreSnapshot(
            version=int(payload["version"]),
            day=payload.get("day"),
            methods=tuple(payload["methods"]),
            truths=truths,
            trust={
                method: dict(by_source)
                for method, by_source in payload["trust"].items()
            },
        )
        return store


class TruthService:
    """A stream of daily snapshots/deltas kept queryable through a store.

    One :class:`~repro.streaming.StreamRunner` (shared delta compiler, warm
    per-method sessions, optional worker pool) feeds one
    :class:`TruthStore`: every ingested day becomes the next store version,
    so reads stay consistent while the solve of the following day runs.
    """

    def __init__(
        self,
        method_names: Sequence[str],
        method_kwargs: Optional[Dict[str, dict]] = None,
        *,
        warm_start: bool = True,
        workers: int = 0,
        store: Optional[TruthStore] = None,
        shards: int = 1,
        cross_shard: str = "exact",
    ):
        from repro.streaming import StreamRunner

        self.runner = StreamRunner(
            method_names,
            method_kwargs,
            warm_start=warm_start,
            workers=workers,
            shards=shards,
            cross_shard=cross_shard,
        )
        self.store = store if store is not None else TruthStore()

    def ingest(self, dataset) -> int:
        """Fuse one full daily snapshot and publish it; returns the version."""
        return self.store.publish_step(self.runner.push(dataset))

    def apply(self, delta) -> int:
        """Apply one :class:`~repro.core.delta.ClaimDelta` and publish it."""
        return self.store.publish_step(self.runner.push_delta(delta))

    def close(self) -> None:
        self.runner.close()

    def __enter__(self) -> "TruthService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
