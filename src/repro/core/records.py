"""Fundamental record types: data items, claims, sources, error reasons.

A *data item* is a (object, attribute) pair (Section 2.1): "a particular
attribute of a particular object".  A *claim* is one source's provided value
for one data item.  Claims optionally carry provenance metadata produced by
the Deep-Web simulator — the ground-truth *reason* a value is wrong, and the
*granularity* a source rounded to — which the profiling and evaluation layers
use to regenerate Figure 6 (reasons for inconsistency) and to implement
formatting-aware fusion (ACCUFORMAT).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple, Optional, Union

Value = Union[float, str]


class DataItem(NamedTuple):
    """A (object, attribute) pair, the unit of truth discovery."""

    object_id: str
    attribute: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.object_id}/{self.attribute}"


class ErrorReason(enum.Enum):
    """Why a provided value deviates from the truth (Figure 6 taxonomy)."""

    SEMANTICS_AMBIGUITY = "semantics ambiguity"
    INSTANCE_AMBIGUITY = "instance ambiguity"
    OUT_OF_DATE = "out-of-date"
    UNIT_ERROR = "unit error"
    PURE_ERROR = "pure error"
    COPIED = "copied"  # value taken verbatim from another source


class SourceCategory(enum.Enum):
    """Coarse provenance class of a Deep-Web source (Section 2.2)."""

    FINANCIAL_AGGREGATOR = "financial aggregator"
    STOCK_MARKET = "official stock market"
    FINANCIAL_NEWS = "financial news"
    AIRLINE = "airline"
    AIRPORT = "airport"
    THIRD_PARTY = "third party"


@dataclass(frozen=True)
class SourceMeta:
    """Static metadata about one Deep-Web source.

    ``is_authority`` marks the sources whose majority vote builds the gold
    standard (five popular financial sites for Stock; the three airline sites
    for Flight).  ``copies_from`` records the simulator's ground-truth copying
    relationship (Table 5); detection code never reads it — it is used only to
    evaluate detection and to implement the "known copying given as input"
    mode of Table 7.
    """

    source_id: str
    name: str = ""
    category: SourceCategory = SourceCategory.THIRD_PARTY
    is_authority: bool = False
    copies_from: Optional[str] = None
    copy_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.source_id:
            raise ValueError("source_id must be non-empty")

    @property
    def display_name(self) -> str:
        return self.name or self.source_id


@dataclass(frozen=True)
class Claim:
    """One source's provided value on one data item.

    Parameters
    ----------
    value:
        The canonical (normalized) provided value: ``float`` for numeric and
        time kinds (time = minutes since midnight), ``str`` otherwise.
    granularity:
        If the source rounds this attribute (e.g. volumes to the nearest
        million), the rounding step; ``None`` for exact values.  Drives
        the *formatting* evidence of ACCUFORMAT (Section 4.1).
    reason:
        Ground-truth error tag from the simulator; ``None`` when the value is
        correct.  Real crawled data would not carry this; it substitutes for
        the authors' manual inspection when regenerating Figures 6 and 11.
    """

    value: Value
    granularity: Optional[float] = None
    reason: Optional[ErrorReason] = None

    @property
    def is_rounded(self) -> bool:
        return self.granularity is not None

    def with_reason(self, reason: Optional[ErrorReason]) -> "Claim":
        return Claim(self.value, self.granularity, reason)
