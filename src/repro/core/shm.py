"""Shared-memory export of numpy array bundles.

The parallel execution engine (:mod:`repro.parallel`) fans fusion solves out
to worker processes.  The solver kernels only read flat numpy arrays — the
columnar view columns and the compiled :class:`~repro.fusion.base.FusionProblem`
arrays — so instead of pickling megabytes of arrays into every worker, the
parent packs each problem's arrays **once** into a single
``multiprocessing.shared_memory`` segment and ships workers a tiny
:class:`BundleDescriptor` (segment name + per-array dtype/shape/offset).
Workers rehydrate zero-copy read-only views over the same physical pages.

Ownership contract: the *creator* of a :class:`SharedArrayBundle` is
responsible for ``unlink()``; attachers only ``close()``.

:class:`ViewBundle` is the **view-only export**: it packs a raw
:class:`~repro.core.columnar.ColumnarView` — the claim columns plus the
interned value tables — into one segment *without* compiling a
:class:`~repro.fusion.base.FusionProblem` first.  Independent-mode shard
plans ship this instead of a compiled problem, so the parent pays O(view
build) where it used to pay a full monolithic compile; each worker carves
and compiles only its own shard from the shared pages
(:func:`repro.core.shard.shard_problem_from_view`).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly on import
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without POSIX shm
    _shared_memory = None

#: Prefix of every segment this library creates (leak checks key off it).
SEGMENT_PREFIX = "reprofuse_"
#: Array payloads are aligned so vector loads stay aligned.
_ALIGN = 64


def shared_memory_available() -> bool:
    """Whether this platform supports ``multiprocessing.shared_memory``."""
    return _shared_memory is not None


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside a shared segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class BundleDescriptor:
    """Everything a worker needs to attach a bundle (small and picklable)."""

    segment: str
    specs: Tuple[ArraySpec, ...]
    nbytes: int


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayBundle:
    """Creator-side handle: named arrays packed into one shm segment."""

    def __init__(self, shm, descriptor: BundleDescriptor):
        self._shm = shm
        self.descriptor = descriptor

    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray]) -> "SharedArrayBundle":
        if _shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        specs = []
        offset = 0
        contiguous: Dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous[name] = array
            offset = _aligned(offset)
            specs.append(
                ArraySpec(
                    name=name,
                    dtype=array.dtype.str,
                    shape=tuple(array.shape),
                    offset=offset,
                )
            )
            offset += array.nbytes
        total = max(offset, 1)
        shm = _shared_memory.SharedMemory(
            create=True,
            size=total,
            name=SEGMENT_PREFIX + secrets.token_hex(8),
        )
        for spec, name in zip(specs, contiguous):
            source = contiguous[name]
            if source.nbytes:
                view = np.ndarray(
                    source.shape, dtype=source.dtype,
                    buffer=shm.buf, offset=spec.offset,
                )
                view[...] = source
        descriptor = BundleDescriptor(
            segment=shm.name, specs=tuple(specs), nbytes=total
        )
        return cls(shm, descriptor)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        try:
            self._shm.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


#: The columnar-view array columns a :class:`ViewBundle` exports, in order.
VIEW_ARRAY_FIELDS = (
    "item_attr",
    "item_start",
    "claim_item",
    "claim_source",
    "claim_value",
    "claim_numeric",
    "claim_granularity",
    "value_numeric",
    "value_str_rank",
)


def view_arrays(view) -> Dict[str, np.ndarray]:
    """The packable numpy columns of a ``ColumnarView`` (``v_``-prefixed)."""
    return {f"v_{name}": getattr(view, name) for name in VIEW_ARRAY_FIELDS}


class ViewBundle(SharedArrayBundle):
    """A raw columnar view in shared memory — no compiled problem attached.

    ``extras`` lets the exporter ride small derived arrays along in the same
    segment (the object→shard assignment codes, precomputed Equation-3
    tolerances).  The Python object tables (items, sources, interned values,
    attribute specs) are *not* arrays and travel in the exporter's pickle
    sidecar, exactly like a problem export's.
    """

    @classmethod
    def create_from_view(
        cls, view, extras: Optional[Dict[str, np.ndarray]] = None
    ) -> "ViewBundle":
        arrays = view_arrays(view)
        if extras:
            arrays.update(extras)
        return cls.create(arrays)

    @staticmethod
    def rebuild_view(bundle: "AttachedBundle", tables: Dict[str, object]):
        """A zero-copy ``ColumnarView`` over an attached view bundle.

        ``tables`` supplies the sidecar's object tables (``items``,
        ``sources``, ``attr_names``, ``attr_specs``, ``values``).
        """
        from repro.core.columnar import ColumnarView

        return ColumnarView(
            items=tables["items"],
            sources=tables["sources"],
            attr_names=tables["attr_names"],
            attr_specs=tables["attr_specs"],
            values=tables["values"],
            **{name: bundle[f"v_{name}"] for name in VIEW_ARRAY_FIELDS},
        )


class AttachedBundle:
    """Worker-side handle: zero-copy read-only views over a shared segment.

    Keep the instance alive as long as any of its arrays is in use — the
    views borrow the segment's buffer.
    """

    def __init__(self, descriptor: BundleDescriptor):
        if _shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        # Attaching re-registers the segment with the resource tracker; the
        # tracker process is shared across the (forked/spawned) pool, and its
        # name cache is a set, so the re-registration is a no-op and the
        # creator's single unlink keeps the books balanced.  Do NOT
        # unregister here — that would strip the creator's entry.
        self._shm = _shared_memory.SharedMemory(name=descriptor.segment)
        self.arrays: Dict[str, np.ndarray] = {}
        for spec in descriptor.specs:
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf,
                offset=spec.offset,
            )
            view.flags.writeable = False
            self.arrays[spec.name] = view

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def get(self, name: str) -> Optional[np.ndarray]:
        return self.arrays.get(name)

    def close(self) -> None:
        self.arrays = {}
        try:
            self._shm.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
