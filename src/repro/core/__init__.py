"""Core data model: attributes, claims, datasets, tolerance, gold standards."""

from repro.core.attributes import (
    DEFAULT_TOLERANCE_FACTOR,
    TIME_TOLERANCE_MINUTES,
    AttributeSpec,
    AttributeTable,
    ValueKind,
)
from repro.core.dataset import Dataset, DatasetSeries
from repro.core.delta import (
    ClaimDelta,
    DayCompilation,
    DayStats,
    SeriesCompiler,
    splice_compiled,
)
from repro.core.gold import (
    GoldStandard,
    accuracy_of_source,
    build_gold_standard,
    coverage_of_source,
    recall_of_source,
)
from repro.core.shard import (
    ShardedCorpus,
    ShardPlan,
    ShardPlanResult,
    ShardSpec,
    pack_shard_codes,
    shard_of_object,
    shard_problem,
    shard_problem_from_view,
)
from repro.core.records import (
    Claim,
    DataItem,
    ErrorReason,
    SourceCategory,
    SourceMeta,
    Value,
)
from repro.core.tolerance import (
    ItemClustering,
    ValueCluster,
    attribute_tolerance,
    cluster_claims,
    values_match,
)

__all__ = [
    "DEFAULT_TOLERANCE_FACTOR",
    "TIME_TOLERANCE_MINUTES",
    "AttributeSpec",
    "AttributeTable",
    "ValueKind",
    "Dataset",
    "DatasetSeries",
    "ClaimDelta",
    "DayCompilation",
    "DayStats",
    "SeriesCompiler",
    "splice_compiled",
    "ShardedCorpus",
    "ShardPlan",
    "ShardPlanResult",
    "ShardSpec",
    "pack_shard_codes",
    "shard_of_object",
    "shard_problem",
    "shard_problem_from_view",
    "GoldStandard",
    "accuracy_of_source",
    "build_gold_standard",
    "coverage_of_source",
    "recall_of_source",
    "Claim",
    "DataItem",
    "ErrorReason",
    "SourceCategory",
    "SourceMeta",
    "Value",
    "ItemClustering",
    "ValueCluster",
    "attribute_tolerance",
    "cluster_claims",
    "values_match",
]
