"""The central claim-matrix container: one snapshot of one domain.

A :class:`Dataset` holds everything collected on one day for one domain
(Section 2.2): source metadata, the global attribute table, and the sparse
claim matrix ``(data item, source) -> Claim``.  It lazily computes the
per-attribute tolerances of Equation (3) and the per-item value clusterings
of Section 3.2, which every profiling measure and fusion method consumes.

Datasets are append-only while being built (by ``repro.datagen``) and are
treated as immutable afterwards; ``freeze()`` enforces that and enables the
caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.core.attributes import AttributeSpec, AttributeTable, ValueKind
from repro.core.columnar import (
    ColumnarView,
    build_view,
    compile_clusters,
    compute_tolerances,
    materialize_clusterings,
)
from repro.core.records import Claim, DataItem, SourceMeta, Value
from repro.core.tolerance import ItemClustering, attribute_tolerance, cluster_claims
from repro.errors import SchemaError


@dataclass
class Dataset:
    """One snapshot (one day) of claims from every source of a domain."""

    domain: str
    day: str
    attributes: AttributeTable
    sources: Dict[str, SourceMeta] = field(default_factory=dict)

    _by_item: Dict[DataItem, Dict[str, Claim]] = field(default_factory=dict)
    _by_source: Dict[str, Dict[DataItem, Claim]] = field(default_factory=dict)
    _objects: Set[str] = field(default_factory=set)
    _frozen: bool = False
    _tolerances: Optional[Dict[str, float]] = None
    _clusterings: Optional[Dict[DataItem, ItemClustering]] = None
    _columnar: Optional[ColumnarView] = field(default=None, repr=False)
    _source_ids: Optional[List[str]] = field(default=None, repr=False)
    _num_claims: Optional[int] = None

    # ------------------------------------------------------------------ build
    def add_source(self, meta: SourceMeta) -> None:
        if self._frozen:
            raise SchemaError("dataset is frozen")
        if meta.source_id in self.sources:
            raise SchemaError(f"duplicate source {meta.source_id!r}")
        self.sources[meta.source_id] = meta
        self._by_source.setdefault(meta.source_id, {})

    def add_claim(self, source_id: str, item: DataItem, claim: Claim) -> None:
        if self._frozen:
            raise SchemaError("dataset is frozen")
        if source_id not in self.sources:
            raise SchemaError(f"unknown source {source_id!r}")
        if item.attribute not in self.attributes:
            raise SchemaError(f"unknown attribute {item.attribute!r}")
        self._by_item.setdefault(item, {})[source_id] = claim
        self._by_source[source_id][item] = claim
        self._objects.add(item.object_id)

    def freeze(self) -> "Dataset":
        """Mark the snapshot immutable, enabling the derived-data caches.

        The columnar claim view is built lazily on first use and cached from
        then on (building it here eagerly would tax every daily snapshot and
        ``without_sources`` clone, most of which are only read through the
        dict views).
        """
        self._frozen = True
        return self

    # ------------------------------------------------------------------ views
    @property
    def columnar(self) -> ColumnarView:
        """The snapshot's claims as flat numpy columns (cached once frozen).

        Every vectorized kernel — tolerances, bulk clustering, fusion-problem
        compilation, source subsetting — runs off this view instead of
        re-walking the claim dicts.
        """
        if self._columnar is not None:
            return self._columnar
        view = build_view(self._by_item, self.sources, self.attributes)
        if self._frozen:
            self._columnar = view
        return view

    @property
    def source_ids(self) -> List[str]:
        if not self._frozen:
            return list(self.sources)
        if self._source_ids is None:
            self._source_ids = list(self.sources)
        return list(self._source_ids)  # copy: callers may sort/mutate

    @property
    def num_sources(self) -> int:
        return len(self.sources)

    @property
    def objects(self) -> Set[str]:
        return self._objects

    @property
    def num_objects(self) -> int:
        return len(self._objects)

    @property
    def items(self) -> Iterable[DataItem]:
        return self._by_item.keys()

    @property
    def num_items(self) -> int:
        return len(self._by_item)

    @property
    def num_claims(self) -> int:
        if not self._frozen:
            return sum(len(claims) for claims in self._by_item.values())
        if self._num_claims is None:
            self._num_claims = sum(
                len(claims) for claims in self._by_item.values()
            )
        return self._num_claims

    def claims_on(self, item: DataItem) -> Dict[str, Claim]:
        """All claims on one data item, keyed by source id."""
        return self._by_item.get(item, {})

    def claims_by(self, source_id: str) -> Dict[DataItem, Claim]:
        """All claims provided by one source."""
        if source_id not in self.sources:
            raise SchemaError(f"unknown source {source_id!r}")
        return self._by_source[source_id]

    def value_of(self, source_id: str, item: DataItem) -> Optional[Value]:
        claim = self._by_item.get(item, {}).get(source_id)
        return claim.value if claim is not None else None

    def providers_of(self, item: DataItem) -> List[str]:
        return list(self._by_item.get(item, {}))

    def spec(self, attribute: str) -> AttributeSpec:
        return self.attributes[attribute]

    def iter_claims(self) -> Iterator[Tuple[DataItem, str, Claim]]:
        for item, claims in self._by_item.items():
            for source_id, claim in claims.items():
                yield item, source_id, claim

    # --------------------------------------------------------------- derived
    def tolerance(self, attribute: str) -> float:
        """Absolute tolerance ``tau(A)`` for an attribute (Equation 3)."""
        if self._tolerances is None:
            self._tolerances = self._compute_tolerances()
        if attribute not in self.attributes:
            raise SchemaError(f"unknown attribute {attribute!r}")
        return self._tolerances.get(attribute, 0.0)

    def _compute_tolerances(self) -> Dict[str, float]:
        if self._frozen:
            view = self.columnar
            per_attr = compute_tolerances(view)
            return dict(zip(view.attr_names, per_attr.tolist()))
        return self._compute_tolerances_python()

    def _compute_tolerances_python(self) -> Dict[str, float]:
        values_by_attr: Dict[str, List[float]] = {}
        for item, claims in self._by_item.items():
            spec = self.attributes[item.attribute]
            if not (spec.kind.is_numeric):
                continue
            bucket = values_by_attr.setdefault(item.attribute, [])
            for claim in claims.values():
                try:
                    bucket.append(float(claim.value))  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue
        tolerances: Dict[str, float] = {}
        for spec in self.attributes:
            tolerances[spec.name] = attribute_tolerance(
                spec, values_by_attr.get(spec.name, [])
            )
        return tolerances

    def clustering(self, item: DataItem) -> ItemClustering:
        """The bucketed value clustering of one item (cached once frozen).

        On a frozen dataset the first request compiles *every* item's
        clustering in one vectorized pass over the columnar view; later
        requests are dict lookups.  Items the vectorized kernel cannot handle
        (non-numeric values under a bucketed attribute) fall back to the
        per-item Python path, preserving the legacy behaviour.
        """
        if self._clusterings is None:
            self._clusterings = {}
            if self._frozen:
                view = self.columnar
                tolerances = self._tolerance_array()
                try:
                    compiled = compile_clusters(view, tolerances)
                except ValueError:
                    pass  # per-item fallback below reproduces the legacy error
                else:
                    self._clusterings = materialize_clusterings(view, compiled)
        cached = self._clusterings.get(item)
        if cached is not None:
            return cached
        spec = self.attributes[item.attribute]
        clustering = cluster_claims(
            self.claims_on(item), spec, self.tolerance(item.attribute)
        )
        if self._frozen:
            self._clusterings[item] = clustering
        return clustering

    def _tolerance_array(self) -> np.ndarray:
        """Tolerances aligned with the columnar view's attribute order."""
        if self._tolerances is None:
            self._tolerances = self._compute_tolerances()
        return np.asarray(
            [self._tolerances[name] for name in self.attributes.names],
            dtype=np.float64,
        )

    def values_match(self, attribute: str, a: Value, b: Value) -> bool:
        """Tolerance-aware equality of two values of one attribute."""
        spec = self.attributes[attribute]
        return spec.matches(a, b, self.tolerance(attribute))

    # ------------------------------------------------------------ mutation-ish
    def without_sources(self, excluded: Iterable[str]) -> "Dataset":
        """A copy of this snapshot with some sources (e.g. copiers) removed."""
        excluded_set = set(excluded)
        clone = Dataset(domain=self.domain, day=self.day, attributes=self.attributes)
        for source_id, meta in self.sources.items():
            if source_id not in excluded_set:
                clone.add_source(meta)
        for item, claims in self._by_item.items():
            for source_id, claim in claims.items():
                if source_id not in excluded_set:
                    clone.add_claim(source_id, item, claim)
        return clone.freeze()

    def restricted_to_sources(self, kept: Iterable[str]) -> "Dataset":
        """A copy containing only the given sources (Figure 9 prefixes)."""
        kept_set = set(kept)
        excluded = [s for s in self.sources if s not in kept_set]
        return self.without_sources(excluded)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.domain!r}, day={self.day!r}, sources={self.num_sources}, "
            f"objects={self.num_objects}, items={self.num_items}, claims={self.num_claims})"
        )


@dataclass
class DatasetSeries:
    """A sequence of daily snapshots of one domain (the month of data)."""

    domain: str
    snapshots: List[Dataset] = field(default_factory=list)
    _day_index: Optional[Dict[str, int]] = field(
        default=None, repr=False, compare=False
    )

    def add(self, dataset: Dataset) -> None:
        if dataset.domain != self.domain:
            raise SchemaError(
                f"snapshot domain {dataset.domain!r} != series domain {self.domain!r}"
            )
        self.snapshots.append(dataset)
        self._day_index = None  # rebuilt lazily on next lookup

    @property
    def days(self) -> List[str]:
        return [snapshot.day for snapshot in self.snapshots]

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self.snapshots)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, index: int) -> Dataset:
        return self.snapshots[index]

    def snapshot(self, day: str) -> Dataset:
        """The snapshot of one day (first match, O(1) via a lazy index)."""
        if self._day_index is None:
            index: Dict[str, int] = {}
            for position, candidate in enumerate(self.snapshots):
                index.setdefault(candidate.day, position)
            self._day_index = index
        position = self._day_index.get(day)
        if position is None:
            available = ", ".join(self.days) or "(series is empty)"
            raise SchemaError(
                f"no snapshot for day {day!r}; available days: {available}"
            )
        return self.snapshots[position]
