"""Attribute specifications and value kinds.

The paper models each domain as a set of *objects* described by *global
attributes* (Section 2.1).  Attributes differ in the kind of value they carry,
which determines how values are compared:

* ``NUMERIC`` — prices, volumes, ratios.  Two values match when they differ by
  at most the attribute tolerance ``tau(A) = alpha * median(V(A))``
  (Section 3.2, Equation 3).
* ``PERCENT`` — numeric, but reported in percent; same tolerance rule.
* ``TIME`` — minutes since midnight; two values match when they differ by at
  most 10 minutes (the paper's fixed time tolerance).
* ``STRING`` — categorical values such as gates; compared exactly after
  normalization.

``AttributeSpec`` carries everything the rest of the library needs to know
about an attribute: its kind, tolerance parameters, and whether the attribute
is *statistical* (derived, semantics-prone: Dividend, P/E, ...) versus
*real-time* (Last price, Actual departure...).  The paper observes that
statistical attributes suffer far more semantics ambiguity (Section 3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError

#: Default relative tolerance factor ``alpha`` from Equation (3).
DEFAULT_TOLERANCE_FACTOR = 0.01

#: Fixed tolerance for TIME attributes, in minutes (Section 3.2).
TIME_TOLERANCE_MINUTES = 10.0


class ValueKind(enum.Enum):
    """The comparison semantics of an attribute's values."""

    NUMERIC = "numeric"
    PERCENT = "percent"
    TIME = "time"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this kind are compared with a relative tolerance."""
        return self in (ValueKind.NUMERIC, ValueKind.PERCENT)


@dataclass(frozen=True)
class AttributeSpec:
    """Description of one global attribute of a domain.

    Parameters
    ----------
    name:
        Canonical (global) attribute name, e.g. ``"Last price"``.
    kind:
        The :class:`ValueKind` governing comparisons.
    tolerance_factor:
        ``alpha`` in Equation (3); ignored for TIME and STRING kinds.
    statistical:
        True for derived attributes (Dividend, P/E, EPS, Yield, 52-week
        prices...) which the paper finds prone to semantics ambiguity.
    unit:
        Optional human-readable unit, used only for rendering.
    """

    name: str
    kind: ValueKind = ValueKind.NUMERIC
    tolerance_factor: float = DEFAULT_TOLERANCE_FACTOR
    statistical: bool = False
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.tolerance_factor <= 0:
            raise SchemaError(
                f"tolerance_factor must be positive, got {self.tolerance_factor}"
            )

    def matches(self, a: object, b: object, tolerance: float) -> bool:
        """Whether two provided values agree under this attribute's semantics.

        ``tolerance`` is the absolute tolerance for this attribute, typically
        obtained from :meth:`repro.core.dataset.Dataset.tolerance` which
        implements Equation (3) over the snapshot's values.
        """
        if self.kind is ValueKind.STRING:
            return a == b
        try:
            fa, fb = float(a), float(b)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return a == b
        if self.kind is ValueKind.TIME:
            return abs(fa - fb) <= TIME_TOLERANCE_MINUTES
        return abs(fa - fb) <= tolerance


@dataclass
class AttributeTable:
    """An ordered registry of the global attributes of a domain."""

    specs: dict[str, AttributeSpec] = field(default_factory=dict)

    @classmethod
    def from_specs(cls, specs: "list[AttributeSpec] | tuple[AttributeSpec, ...]") -> "AttributeTable":
        table = cls()
        for spec in specs:
            table.add(spec)
        return table

    def add(self, spec: AttributeSpec) -> None:
        if spec.name in self.specs:
            raise SchemaError(f"duplicate attribute {spec.name!r}")
        self.specs[spec.name] = spec

    def __getitem__(self, name: str) -> AttributeSpec:
        try:
            return self.specs[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.specs

    def __iter__(self):
        return iter(self.specs.values())

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def names(self) -> list[str]:
        return list(self.specs)
