"""Delta compilation across daily snapshots.

The observation period is a month of daily snapshots that share the vast
majority of their claims, yet the one-shot pipeline recompiles every day
from scratch: flatten the claim dicts, recompute tolerances, re-bucket
every item, rebuild the fusion problem.  :class:`SeriesCompiler` amortizes
that across days by maintaining a **union claim universe** — items,
sources, and exact values interned once, every distinct
``(item, source, value, granularity)`` claim stored once, grouped by item
in first-arrival order — together with a per-day *active mask* over the
stored claims.

Compiling day ``d`` then reduces to a diff against day ``d-1``:

1. match the day's claims against the store (one vectorized
   ``searchsorted`` over composite int64 keys) and insert the new ones at
   the end of their item segments;
2. mark *dirty* items — those whose active claim set changed, plus every
   item of an attribute whose Equation-(3) tolerance moved (tolerances are
   medians over the day's claims, so a shifted median re-grids the whole
   attribute);
3. re-cluster **only the dirty items** with the ordinary
   :func:`~repro.core.columnar.compile_clusters` kernel and splice their
   fresh segments into yesterday's compiled arrays (:func:`splice_compiled`).

Because the Section 3.2 bucketing is independent across items, the spliced
result is equal to a full recompile of the day (the equivalence suite holds
both paths to identical selections), but the per-day cost scales with the
churn, not the snapshot.

Two entry points produce a :class:`DayCompilation`:

* :meth:`SeriesCompiler.ingest` — diff a full :class:`Dataset` snapshot
  (pays one pass over the day's columnar view);
* :meth:`SeriesCompiler.apply_delta` — apply an explicit
  :class:`ClaimDelta` (added/retracted claims, new sources) when the
  upstream feed already knows what changed.  This path is fully
  incremental: sorted value ranks, per-attribute tolerance medians, and
  the pairwise copy-detection overlap counts are all patched rather than
  recomputed, so its cost scales with the delta.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.attributes import (
    TIME_TOLERANCE_MINUTES,
    AttributeTable,
    ValueKind,
)
from repro.core.columnar import (
    ColumnarView,
    CompiledClusters,
    compile_clusters,
    compute_tolerances,
)
from repro.core.dataset import Dataset
from repro.core.records import Claim, DataItem, SourceMeta, Value
from repro.errors import FusionError, SchemaError

#: Composite claim-key layout, low to high:
#: granularity code | value code | source code | item code.
_GRAN_BITS = 6
_VAL_BITS = 30
_SRC_BITS = 10
_VAL_SHIFT = _GRAN_BITS
_SRC_SHIFT = _GRAN_BITS + _VAL_BITS
_ITEM_SHIFT = _SRC_SHIFT + _SRC_BITS

#: Recompile everything when more than this fraction of the day's items are
#: dirty — the splice bookkeeping stops paying for itself.
FULL_COMPILE_THRESHOLD = 0.5
#: Compact the claim store when inactive claims outnumber active ones by
#: this factor (high-churn feeds would otherwise grow it without bound).
DEFAULT_MAX_INACTIVE_RATIO = 1.0
#: New-value batches above this size take the dense re-rank path instead of
#: fractional insertion between existing ranks.
_RANK_BULK = 4096
#: Re-rank densely when fractional insertion would create gaps this small.
_RANK_MIN_GAP = 1e-9


def _run_offsets(sorted_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Occurrence index of each element within its run of equal keys.

    ``sorted_keys`` must be sorted so equal keys are consecutive.  Returns
    ``(offsets, sizes)`` — per element, its 0-based position inside its run
    and the run's total length.
    """
    n = len(sorted_keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    run_start = np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    run_id = np.cumsum(run_start) - 1
    run_len = np.bincount(run_id)
    sizes = np.repeat(run_len, run_len)
    offsets = np.arange(n, dtype=np.int64) - np.repeat(
        np.cumsum(run_len) - run_len, run_len
    )
    return offsets, sizes


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[start, start+count)`` ranges, vectorized."""
    counts = counts.astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    base = np.repeat(starts.astype(np.int64), counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return base + offsets


def _scatter_insert_map(
    n_old: int, positions: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Destination indices for a batched ``np.insert``-equivalent.

    ``positions`` are original-coordinate insertion points (sorted,
    duplicates allowed, ``np.insert`` semantics).  Returns
    ``(old_dest, new_dest)``: where each existing element lands and where
    each inserted element lands in the grown array.  One index computation
    serves every parallel column — the store's five columns, the key index,
    and the callers' activity masks all scatter through the same maps
    instead of paying ``np.insert``'s per-array re-derivation.
    """
    k = len(positions)
    counts = np.bincount(positions, minlength=n_old + 1)
    old_dest = np.arange(n_old, dtype=np.int64)
    if k:
        old_dest += np.cumsum(counts[:n_old])
    new_dest = positions + np.arange(k, dtype=np.int64)
    return old_dest, new_dest


def _scatter_insert(
    old: np.ndarray,
    values,
    old_dest: np.ndarray,
    new_dest: np.ndarray,
    fill=None,
) -> np.ndarray:
    """One allocation + two scatters: ``np.insert(old, positions, values)``."""
    out = np.empty(len(old_dest) + len(new_dest), dtype=old.dtype)
    out[old_dest] = old
    out[new_dest] = fill if values is None else values
    return out


def _two_source_gather(
    from_first: np.ndarray,
    indices: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
) -> np.ndarray:
    """Gather from two arrays, picking the source per element."""
    dtype = first.dtype if len(first) else second.dtype
    out = np.empty(len(indices), dtype=dtype)
    out[from_first] = first[indices[from_first]]
    rest = ~from_first
    out[rest] = second[indices[rest]]
    return out


def splice_compiled(
    prev: CompiledClusters,
    partial: CompiledClusters,
    dirty_items: np.ndarray,
) -> CompiledClusters:
    """Merge yesterday's clean item segments with freshly compiled dirty ones.

    ``prev`` is yesterday's full compilation, ``partial`` the compilation of
    today's claims restricted to dirty items, and ``dirty_items`` a boolean
    mask over union item codes.  Clean items keep yesterday's cluster and
    claim segments verbatim; dirty items take today's.  Because the
    clustering kernel treats items independently, the result equals a full
    compile of today's claims.
    """
    prev_keep = ~dirty_items[prev.item_index]

    prev_ccount = np.diff(prev.item_start)
    part_ccount = np.diff(partial.item_start)
    prev_claim_bounds = np.concatenate(
        ([0], np.cumsum(prev.cluster_support))
    ).astype(np.int64)
    part_claim_bounds = np.concatenate(
        ([0], np.cumsum(partial.cluster_support))
    ).astype(np.int64)

    items = np.concatenate((prev.item_index[prev_keep], partial.item_index))
    attrs = np.concatenate((prev.item_attr[prev_keep], partial.item_attr))
    from_prev = np.concatenate(
        (
            np.ones(int(prev_keep.sum()), dtype=bool),
            np.zeros(len(partial.item_index), dtype=bool),
        )
    )
    seg_cstart = np.concatenate(
        (prev.item_start[:-1][prev_keep], partial.item_start[:-1])
    )
    seg_ccount = np.concatenate((prev_ccount[prev_keep], part_ccount))
    seg_qstart = np.concatenate(
        (
            prev_claim_bounds[prev.item_start[:-1]][prev_keep],
            part_claim_bounds[partial.item_start[:-1]],
        )
    )
    seg_qend = np.concatenate(
        (
            prev_claim_bounds[prev.item_start[1:]][prev_keep],
            part_claim_bounds[partial.item_start[1:]],
        )
    )
    seg_qcount = seg_qend - seg_qstart

    order = np.argsort(items, kind="stable")  # union codes are disjoint
    items = items[order]
    attrs = attrs[order]
    from_prev = from_prev[order]
    seg_cstart = seg_cstart[order]
    seg_ccount = seg_ccount[order]
    seg_qstart = seg_qstart[order]
    seg_qcount = seg_qcount[order]

    n_items = len(items)
    item_start = np.concatenate(([0], np.cumsum(seg_ccount))).astype(np.int64)

    # ---- cluster-level arrays
    cidx = _ranges(seg_cstart, seg_ccount)
    c_from_prev = np.repeat(from_prev, seg_ccount)
    cluster_value = _two_source_gather(
        c_from_prev, cidx, prev.cluster_value, partial.cluster_value
    )
    cluster_support = _two_source_gather(
        c_from_prev, cidx, prev.cluster_support, partial.cluster_support
    )
    cluster_item = np.repeat(np.arange(n_items, dtype=np.int64), seg_ccount)

    # ---- claim-level arrays (claims are item-contiguous in compiled order)
    qidx = _ranges(seg_qstart, seg_qcount)
    q_from_prev = np.repeat(from_prev, seg_qcount)
    claim_source = _two_source_gather(
        q_from_prev, qidx, prev.claim_source, partial.claim_source
    )
    claim_value = _two_source_gather(
        q_from_prev, qidx, prev.claim_value, partial.claim_value
    )
    claim_granularity = _two_source_gather(
        q_from_prev, qidx, prev.claim_granularity, partial.claim_granularity
    )
    src_cluster = _two_source_gather(
        q_from_prev, qidx, prev.claim_cluster, partial.claim_cluster
    )
    # Shift each claim's cluster id from its source compile's numbering to
    # the spliced numbering: subtract the item's cluster offset there, add
    # the item's cluster offset here.
    claim_cluster = (
        src_cluster
        - np.repeat(seg_cstart, seg_qcount)
        + np.repeat(item_start[:-1], seg_qcount)
    )

    return CompiledClusters(
        item_index=items,
        item_attr=attrs,
        item_start=item_start,
        cluster_item=cluster_item,
        cluster_value=cluster_value,
        cluster_support=cluster_support.astype(np.int64),
        claim_source=claim_source,
        claim_cluster=claim_cluster,
        claim_value=claim_value,
        claim_granularity=claim_granularity,
    )


def concat_compiled(parts: List[CompiledClusters]) -> CompiledClusters:
    """Merge compilations with **disjoint** item sets into item-code order.

    The N-way generalization of :func:`splice_compiled`'s segment shuffle:
    one stable sort over the union's item codes orders every part's item
    segments, and the cluster/claim arrays are gathered once — instead of
    chaining N-1 pairwise splices that rebuild the accumulated result each
    time.  Because each item's segment is copied verbatim from its part,
    the result equals a monolithic compile of the union exactly (the shard
    property suite pins it bitwise through ``ShardedCorpus.merged_compiled``).
    """
    parts = [part for part in parts if len(part.item_index)]
    if not parts:
        raise FusionError("concat_compiled needs at least one non-empty part")
    if len(parts) == 1:
        return parts[0]
    cluster_off = np.cumsum([0] + [part.n_clusters for part in parts])
    claim_off = np.cumsum([0] + [len(part.claim_source) for part in parts])

    items = np.concatenate([part.item_index for part in parts])
    attrs = np.concatenate([part.item_attr for part in parts])
    seg_cstart = np.concatenate([
        part.item_start[:-1] + off
        for part, off in zip(parts, cluster_off[:-1])
    ])
    seg_ccount = np.concatenate([np.diff(part.item_start) for part in parts])
    bounds = [
        np.concatenate(([0], np.cumsum(part.cluster_support))).astype(np.int64)
        for part in parts
    ]
    seg_qstart = np.concatenate([
        b[part.item_start[:-1]] + off
        for part, b, off in zip(parts, bounds, claim_off[:-1])
    ])
    seg_qcount = np.concatenate([
        b[part.item_start[1:]] - b[part.item_start[:-1]]
        for part, b in zip(parts, bounds)
    ])

    order = np.argsort(items, kind="stable")  # item codes are disjoint
    items = items[order]
    attrs = attrs[order]
    seg_cstart = seg_cstart[order]
    seg_ccount = seg_ccount[order]
    seg_qstart = seg_qstart[order]
    seg_qcount = seg_qcount[order]

    n_items = len(items)
    item_start = np.concatenate(([0], np.cumsum(seg_ccount))).astype(np.int64)

    all_cluster_value = np.concatenate([part.cluster_value for part in parts])
    all_cluster_support = np.concatenate([
        part.cluster_support for part in parts
    ])
    cidx = _ranges(seg_cstart, seg_ccount)
    cluster_item = np.repeat(np.arange(n_items, dtype=np.int64), seg_ccount)

    all_claim_source = np.concatenate([part.claim_source for part in parts])
    all_claim_value = np.concatenate([part.claim_value for part in parts])
    all_claim_granularity = np.concatenate([
        part.claim_granularity for part in parts
    ])
    all_claim_cluster = np.concatenate([
        part.claim_cluster + off
        for part, off in zip(parts, cluster_off[:-1])
    ])
    qidx = _ranges(seg_qstart, seg_qcount)
    # Shift each claim's cluster id from its part's block numbering to the
    # merged numbering, exactly like the pairwise splice.
    claim_cluster = (
        all_claim_cluster[qidx]
        - np.repeat(seg_cstart, seg_qcount)
        + np.repeat(item_start[:-1], seg_qcount)
    )

    return CompiledClusters(
        item_index=items,
        item_attr=attrs,
        item_start=item_start,
        cluster_item=cluster_item,
        cluster_value=all_cluster_value[cidx],
        cluster_support=all_cluster_support[cidx].astype(np.int64),
        claim_source=all_claim_source[qidx],
        claim_cluster=claim_cluster,
        claim_value=all_claim_value[qidx],
        claim_granularity=all_claim_granularity[qidx],
    )


def _pair_counts(
    source_codes: np.ndarray, group_codes: np.ndarray, n_sources: int
) -> np.ndarray:
    """Dense (S, S) counts of groups two sources both participate in."""
    import scipy.sparse as sp

    if not len(source_codes):
        return np.zeros((n_sources, n_sources), dtype=np.float64)
    _, dense = np.unique(group_codes, return_inverse=True)
    matrix = sp.csr_matrix(
        (
            np.ones(len(source_codes), dtype=np.float64),
            (source_codes, dense),
        ),
        shape=(n_sources, int(dense.max()) + 1),
    )
    return (matrix @ matrix.T).toarray()


@dataclass(frozen=True)
class ClaimDelta:
    """An explicit day-over-day change set for :meth:`SeriesCompiler.apply_delta`.

    ``added`` entries replace any existing claim of the same (source, item)
    cell — at most one add per cell per delta; ``retracted`` entries remove
    the cell's claim.  ``new_sources`` declares sources that may appear in
    ``added`` for the first time.
    """

    day: str
    added: Tuple[Tuple[str, DataItem, Claim], ...] = ()
    retracted: Tuple[Tuple[str, DataItem], ...] = ()
    new_sources: Tuple[SourceMeta, ...] = ()


@dataclass(frozen=True)
class DayStats:
    """What one day's delta compilation actually did."""

    n_active_claims: int
    n_added_claims: int
    n_removed_claims: int
    n_active_items: int
    n_dirty_items: int
    full_compile: bool
    compacted: bool
    ingest_seconds: float


@dataclass
class PendingDay:
    """A day whose claim churn is applied but whose compile hasn't run yet.

    The two-phase split (:meth:`SeriesCompiler.begin_ingest` /
    :meth:`SeriesCompiler.begin_delta` then :meth:`SeriesCompiler.finish`)
    exists for the sharded streaming runner: every shard applies its slice
    of the day first, the runner computes the day's *global* Equation-(3)
    tolerances from the merged pending magnitudes, and each shard finishes
    its compile under those shared medians — which is what makes the
    spliced-together day bit-identical to the unsharded compile.
    """

    day: str
    active: np.ndarray
    old_active: np.ndarray
    sources: List[str]
    delta: Optional[ClaimDelta]
    started: float


@dataclass
class DayCompilation:
    """One day compiled against the union universe, ready to fuse.

    ``view``/``compiled``/``claim_mask`` are exactly the inputs
    :meth:`repro.fusion.base.FusionProblem.from_compiled` expects;
    :meth:`problem` builds (and caches) that problem, seeding the
    selection-independent copy-detection counts when the compiler tracks
    them.
    """

    day: str
    view: ColumnarView
    compiled: CompiledClusters
    attr_tol: np.ndarray
    claim_mask: np.ndarray
    sources: List[str]
    source_codes: np.ndarray
    stats: DayStats
    pair_counts: Optional[Tuple[np.ndarray, np.ndarray]] = None
    _problem: Optional[object] = field(default=None, repr=False)

    def problem(self):
        """The day's :class:`~repro.fusion.base.FusionProblem` (cached)."""
        if self._problem is None:
            # Imported here: core stays importable without the fusion layer.
            from repro.fusion.base import FusionProblem

            problem = FusionProblem.from_compiled(
                view=self.view,
                compiled=self.compiled,
                sources=list(self.sources),
                source_codes=self.source_codes,
                attr_tol=self.attr_tol,
                claim_mask=self.claim_mask,
            )
            if self.pair_counts is not None:
                same, shared = self.pair_counts
                problem.seed_copy_counts(same, shared)
            self._problem = problem
        return self._problem


class SeriesCompiler:
    """Incremental compiler for a stream of daily snapshots of one domain."""

    def __init__(
        self,
        track_copy_structures: bool = False,
        full_compile_threshold: float = FULL_COMPILE_THRESHOLD,
        max_inactive_ratio: float = DEFAULT_MAX_INACTIVE_RATIO,
    ):
        self.track_copy_structures = track_copy_structures
        self.full_compile_threshold = full_compile_threshold
        self.max_inactive_ratio = max_inactive_ratio

        self._attributes: Optional[AttributeTable] = None
        self._attr_names: List[str] = []
        self._attr_specs: List[object] = []

        self._items: List[DataItem] = []
        self._item_code: Dict[DataItem, int] = {}
        self._item_attr_list: List[int] = []
        self._sources: List[str] = []
        self._source_code: Dict[str, int] = {}
        self._declared: List[str] = []

        self._values: List[Value] = []
        self._value_code: Dict[Value, int] = {}
        self._value_numeric = np.zeros(0, dtype=np.float64)
        self._rank_arr = np.zeros(0, dtype=np.float64)
        self._sorted_strs: Optional[np.ndarray] = None  # object dtype
        self._sorted_ranks: Optional[np.ndarray] = None

        self._gran_code: Dict[float, int] = {0.0: 0}
        self._gran_values: List[float] = [0.0]

        # Claim store, positional, grouped by item in first-arrival order.
        self._s_item = np.zeros(0, dtype=np.int64)
        self._s_src = np.zeros(0, dtype=np.int64)
        self._s_val = np.zeros(0, dtype=np.int64)
        self._s_granc = np.zeros(0, dtype=np.int64)
        self._s_key = np.zeros(0, dtype=np.int64)
        self._item_counts = np.zeros(0, dtype=np.int64)
        self._active = np.zeros(0, dtype=bool)
        # Key lookup index: keys in sorted order + their store positions.
        self._key_sorted = np.zeros(0, dtype=np.int64)
        self._key_pos = np.zeros(0, dtype=np.int64)

        # Per-numeric-attribute sorted |value| arrays of the active claims,
        # built lazily for the incremental-median tolerance path.
        self._attr_sorted: Optional[List[Optional[np.ndarray]]] = None

        self._prev_tol: Optional[np.ndarray] = None
        self._prev_compiled: Optional[CompiledClusters] = None
        self._same: Optional[np.ndarray] = None
        self._shared: Optional[np.ndarray] = None
        self.days: List[str] = []

    # ------------------------------------------------------------- interning
    def _check_attributes(self, attributes: AttributeTable) -> None:
        if self._attributes is None:
            self._attributes = attributes
            self._attr_names = list(attributes.names)
            self._attr_specs = [attributes[name] for name in self._attr_names]
            return
        if list(attributes.names) != self._attr_names:
            raise SchemaError(
                "snapshot attribute table differs from the stream's; "
                "a SeriesCompiler serves one domain schema"
            )

    def _intern_source(self, source_id: str) -> int:
        code = self._source_code.get(source_id)
        if code is None:
            code = len(self._sources)
            if code >= (1 << _SRC_BITS):
                raise FusionError("too many distinct sources for the claim key")
            self._sources.append(source_id)
            self._source_code[source_id] = code
        return code

    def _intern_item(self, item: DataItem, attr_code: int) -> int:
        code = self._item_code.get(item)
        if code is None:
            code = len(self._items)
            if code >= (1 << (63 - _ITEM_SHIFT)):
                raise FusionError("too many distinct items for the claim key")
            self._items.append(item)
            self._item_code[item] = code
            self._item_attr_list.append(attr_code)
        return code

    def _intern_gran(self, granularity: float) -> int:
        code = self._gran_code.get(granularity)
        if code is None:
            code = len(self._gran_values)
            if code >= (1 << _GRAN_BITS):
                raise FusionError("too many distinct granularities")
            self._gran_values.append(granularity)
            self._gran_code[granularity] = code
        return code

    def _intern_values(self, new_values: List[Value]) -> np.ndarray:
        """Register values not seen before; returns their codes."""
        codes = np.empty(len(new_values), dtype=np.int64)
        fresh: List[Value] = []
        for i, value in enumerate(new_values):
            code = self._value_code.get(value)
            if code is None:
                code = len(self._values)
                self._values.append(value)
                self._value_code[value] = code
                fresh.append(value)
            codes[i] = code
        if fresh:
            if len(self._values) >= (1 << _VAL_BITS):
                raise FusionError("too many distinct values for the claim key")
            numeric = np.empty(len(fresh), dtype=np.float64)
            for i, value in enumerate(fresh):
                try:
                    numeric[i] = float(value)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    numeric[i] = np.nan
            self._value_numeric = np.concatenate((self._value_numeric, numeric))
            self._assign_ranks(fresh)
        return codes

    # ------------------------------------------------------------ str ranks
    def _rerank_dense(self) -> None:
        """Full dense re-rank of every interned value's ``str()`` form."""
        strs = sorted(set(str(v) for v in self._values))
        rank = {s: float(i) for i, s in enumerate(strs)}
        self._rank_arr = np.asarray(
            [rank[str(v)] for v in self._values], dtype=np.float64
        )
        self._sorted_strs = np.asarray(strs, dtype=object)
        self._sorted_ranks = np.asarray(
            [rank[s] for s in strs], dtype=np.float64
        )

    def _assign_ranks(self, fresh: List[Value]) -> None:
        """Extend the monotone str-rank map to newly interned values.

        Ranks only have to be *order-isomorphic* to the ``str()`` ordering
        (the clustering kernel uses them as lexsort tie-break keys), so
        small batches are inserted fractionally between their neighbours'
        ranks; large batches (snapshot ingests, compactions) re-rank
        densely.
        """
        if (
            self._sorted_strs is None
            or len(fresh) > _RANK_BULK
            or len(self._sorted_strs) == 0
        ):
            self._rerank_dense()
            return

        fresh_strs = np.asarray([str(v) for v in fresh], dtype=object)
        uniq, inverse = np.unique(fresh_strs, return_inverse=True)
        pos = np.searchsorted(self._sorted_strs, uniq)
        exists = np.zeros(len(uniq), dtype=bool)
        inside = pos < len(self._sorted_strs)
        exists[inside] = self._sorted_strs[pos[inside]] == uniq[inside]

        ranks = np.empty(len(uniq), dtype=np.float64)
        ranks[exists] = self._sorted_ranks[pos[exists]]

        new_idx = np.flatnonzero(~exists)
        if len(new_idx):
            npos = pos[new_idx]
            left = np.where(
                npos > 0,
                self._sorted_ranks[np.maximum(npos - 1, 0)],
                self._sorted_ranks[0] - 2.0,
            )
            right = np.where(
                npos < len(self._sorted_ranks),
                self._sorted_ranks[np.minimum(npos, len(self._sorted_ranks) - 1)],
                self._sorted_ranks[-1] + 2.0,
            )
            # Spread runs that land in the same gap evenly across it; uniq
            # is sorted, so equal positions are consecutive.
            offset, sizes = _run_offsets(npos)
            step = (right - left) / (sizes + 1.0)
            if np.min(step) < _RANK_MIN_GAP:
                self._rerank_dense()  # covers the fresh values too
                return
            ranks[new_idx] = left + step * (offset + 1.0)
            self._sorted_strs = np.insert(self._sorted_strs, npos, uniq[new_idx])
            self._sorted_ranks = np.insert(self._sorted_ranks, npos, ranks[new_idx])

        self._rank_arr = np.concatenate((self._rank_arr, ranks[inverse]))

    # ----------------------------------------------------------- claim store
    def _item_start(self) -> np.ndarray:
        return np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(self._item_counts))
        )

    def _insert_claims(
        self,
        item: np.ndarray,
        src: np.ndarray,
        val: np.ndarray,
        granc: np.ndarray,
        keys: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Insert new claims at the end of their item segments.

        Returns ``(insert_positions, final_positions, old_dest)`` — the
        original-coordinate positions (``np.insert`` semantics), the claims'
        positions in the grown store, and where each pre-existing store
        position landed (callers scatter their positional masks through it).
        All segment inserts of a day go through **one** destination-map
        computation and one allocation+scatter per column, instead of
        ``np.insert`` re-deriving the index math for every array
        (``tests/core/test_delta.py`` pins the store bit-identical to the
        ``np.insert`` reference).
        """
        if len(self._item_counts) < len(self._items):
            self._item_counts = np.concatenate(
                (
                    self._item_counts,
                    np.zeros(
                        len(self._items) - len(self._item_counts),
                        dtype=np.int64,
                    ),
                )
            )
        item_start = self._item_start()
        ins = item_start[item + 1]
        # Same-position inserts must keep the store grouped by item code: a
        # claim appended to the store's last item shares its insertion point
        # with every brand-new item's first claim, so ties break by item
        # (lexsort is stable, preserving arrival order within an item).
        order = np.lexsort((item, ins))
        ins = ins[order]
        item, src = item[order], src[order]
        val, granc, keys = val[order], granc[order], keys[order]

        old_dest, final = _scatter_insert_map(len(self._s_item), ins)
        self._s_item = _scatter_insert(self._s_item, item, old_dest, final)
        self._s_src = _scatter_insert(self._s_src, src, old_dest, final)
        self._s_val = _scatter_insert(self._s_val, val, old_dest, final)
        self._s_granc = _scatter_insert(self._s_granc, granc, old_dest, final)
        self._s_key = _scatter_insert(self._s_key, keys, old_dest, final)
        np.add.at(self._item_counts, item, 1)

        # Patch the key index: existing store positions shift by the number
        # of insertions at or before them, then the new keys slot in.
        if len(self._key_pos):
            self._key_pos = self._key_pos + np.searchsorted(
                ins, self._key_pos, side="right"
            )
        korder = np.argsort(keys, kind="stable")
        kpos = np.searchsorted(self._key_sorted, keys[korder])
        k_old, k_new = _scatter_insert_map(len(self._key_sorted), kpos)
        self._key_sorted = _scatter_insert(
            self._key_sorted, keys[korder], k_old, k_new
        )
        self._key_pos = _scatter_insert(
            self._key_pos, final[korder], k_old, k_new
        )
        return ins, final, old_dest

    def _lookup(self, keys: np.ndarray) -> np.ndarray:
        """Store positions for composite keys; -1 where there is no match."""
        if not len(self._key_sorted):
            return np.full(len(keys), -1, dtype=np.int64)
        idx = np.searchsorted(self._key_sorted, keys)
        idx = np.minimum(idx, len(self._key_sorted) - 1)
        pos = self._key_pos[idx]
        return np.where(self._key_sorted[idx] == keys, pos, -1)

    def _build_view(self) -> ColumnarView:
        """The union store as a ColumnarView (zero-copy over the columns)."""
        gran_table = np.asarray(self._gran_values, dtype=np.float64)
        return ColumnarView(
            items=self._items,
            sources=self._sources,
            attr_names=self._attr_names,
            attr_specs=list(self._attr_specs),
            item_attr=np.asarray(self._item_attr_list, dtype=np.int64),
            item_start=self._item_start(),
            claim_item=self._s_item,
            claim_source=self._s_src,
            claim_value=self._s_val,
            claim_numeric=self._value_numeric[self._s_val]
            if len(self._s_val)
            else np.zeros(0, dtype=np.float64),
            claim_granularity=gran_table[self._s_granc]
            if len(self._s_granc)
            else np.zeros(0, dtype=np.float64),
            values=self._values,
            value_numeric=self._value_numeric,
            value_str_rank=self._rank_arr,
        )

    # ------------------------------------------------------------ public API
    @property
    def n_store_claims(self) -> int:
        return len(self._s_key)

    @property
    def store_items(self) -> List[DataItem]:
        """The interned item table, in first-arrival (code) order (live list)."""
        return self._items

    @property
    def store_item_attrs(self) -> List[int]:
        """Attribute code per interned item (live list, parallel to items)."""
        return self._item_attr_list

    @property
    def store_sources(self) -> List[str]:
        """The interned source-id table, in first-declared order (live list)."""
        return self._sources

    @property
    def store_values(self) -> List[Value]:
        """The interned exact-value table (live list; compaction re-codes it)."""
        return self._values

    @property
    def store_value_numeric(self) -> np.ndarray:
        """``float(value)`` (or NaN) per interned value, parallel to values."""
        return self._value_numeric

    def ingest(
        self, dataset: Dataset, attr_tol: Optional[np.ndarray] = None
    ) -> DayCompilation:
        """Diff a full snapshot against the stream and compile its day.

        ``attr_tol`` overrides the day's Equation-(3) tolerances (the
        sharded streaming runner hands every shard the global medians).
        """
        return self.finish(self.begin_ingest(dataset), attr_tol=attr_tol)

    def begin_ingest(self, dataset: Dataset) -> PendingDay:
        """Phase one of :meth:`ingest`: apply the snapshot's claim churn."""
        started = time.perf_counter()
        self._check_attributes(dataset.attributes)
        view = dataset.columnar

        attr_code = {name: i for i, name in enumerate(self._attr_names)}
        src_map = np.asarray(
            [self._intern_source(s) for s in view.sources], dtype=np.int64
        )
        item_map = np.asarray(
            [
                self._intern_item(item, attr_code[item.attribute])
                for item in view.items
            ],
            dtype=np.int64,
        )
        val_map = self._intern_values(view.values)

        u_item = item_map[view.claim_item]
        u_src = src_map[view.claim_source]
        u_val = val_map[view.claim_value]
        gran_distinct, gran_inv = np.unique(
            view.claim_granularity, return_inverse=True
        )
        gcodes = np.asarray(
            [self._intern_gran(float(g)) for g in gran_distinct], dtype=np.int64
        )
        u_granc = gcodes[gran_inv]

        keys = (
            (u_item << _ITEM_SHIFT)
            | (u_src << _SRC_SHIFT)
            | (u_val << _VAL_SHIFT)
            | u_granc
        )
        pos = self._lookup(keys)
        missing = pos < 0
        old_active = self._active
        if missing.any():
            _ins, final, old_dest = self._insert_claims(
                u_item[missing],
                u_src[missing],
                u_val[missing],
                u_granc[missing],
                keys[missing],
            )
            old_active = _scatter_insert(
                old_active, None, old_dest, final, fill=False
            )
            pos = self._lookup(keys)  # new claims are now present
        active = np.zeros(len(self._s_key), dtype=bool)
        active[pos] = True
        self._attr_sorted = None  # ingest recomputes tolerances wholesale
        return PendingDay(
            day=dataset.day,
            active=active,
            old_active=old_active,
            sources=list(view.sources),
            delta=None,
            started=started,
        )

    def apply_delta(
        self, delta: ClaimDelta, attr_tol: Optional[np.ndarray] = None
    ) -> DayCompilation:
        """Compile the next day from an explicit change set."""
        return self.finish(self.begin_delta(delta), attr_tol=attr_tol)

    def begin_delta(self, delta: ClaimDelta) -> PendingDay:
        """Phase one of :meth:`apply_delta`: apply the explicit change set."""
        started = time.perf_counter()
        if self._attributes is None:
            raise FusionError(
                "apply_delta needs a prior ingest() to seed the stream"
            )
        declared = list(self._declared)
        known = set(declared)
        for meta in delta.new_sources:
            if meta.source_id not in known:
                declared.append(meta.source_id)
                known.add(meta.source_id)
                self._intern_source(meta.source_id)
        attr_code = {name: i for i, name in enumerate(self._attr_names)}

        # ---- collect target cells (adds replace, retractions remove)
        cells: List[int] = []
        for source_id, item in delta.retracted:
            if source_id not in known:
                raise SchemaError(
                    f"retraction from unknown source {source_id!r}"
                )
            src = self._source_code[source_id]
            code = self._item_code.get(item)
            if code is not None:
                cells.append((code << _SRC_BITS) | src)
        add_item = np.empty(len(delta.added), dtype=np.int64)
        add_src = np.empty(len(delta.added), dtype=np.int64)
        add_val = np.empty(len(delta.added), dtype=np.int64)
        add_granc = np.empty(len(delta.added), dtype=np.int64)
        add_values: List[Value] = []
        add_cells: List[int] = []
        for k, (source_id, item, claim) in enumerate(delta.added):
            if source_id not in known:
                raise SchemaError(f"claim from undeclared source {source_id!r}")
            if item.attribute not in attr_code:
                raise SchemaError(f"unknown attribute {item.attribute!r}")
            add_item[k] = self._intern_item(item, attr_code[item.attribute])
            add_src[k] = self._source_code[source_id]
            add_granc[k] = self._intern_gran(claim.granularity or 0.0)
            add_values.append(claim.value)
            add_cells.append((int(add_item[k]) << _SRC_BITS) | int(add_src[k]))
        if len(add_cells) != len(set(add_cells)):
            # Two adds in one cell would leave one source with two live
            # claims on one item — impossible under the snapshot model.
            raise SchemaError(
                "delta adds two claims to one (source, item) cell"
            )
        cells.extend(add_cells)
        if len(add_values):
            add_val[:] = self._intern_values(add_values)

        old_active = self._active
        active = old_active.copy()
        if cells:
            cell_targets = np.unique(np.asarray(cells, dtype=np.int64))
            store_cells = (self._s_item << _SRC_BITS) | self._s_src
            hit = np.searchsorted(cell_targets, store_cells)
            hit = np.minimum(hit, len(cell_targets) - 1)
            in_cell = cell_targets[hit] == store_cells
            active &= ~in_cell

        if len(delta.added):
            keys = (
                (add_item << _ITEM_SHIFT)
                | (add_src << _SRC_SHIFT)
                | (add_val << _VAL_SHIFT)
                | add_granc
            )
            pos = self._lookup(keys)
            missing = pos < 0
            if missing.any():
                _ins, final, old_dest = self._insert_claims(
                    add_item[missing],
                    add_src[missing],
                    add_val[missing],
                    add_granc[missing],
                    keys[missing],
                )
                old_active = _scatter_insert(
                    old_active, None, old_dest, final, fill=False
                )
                active = _scatter_insert(
                    active, None, old_dest, final, fill=False
                )
                pos = self._lookup(keys)
            active[pos] = True
        return PendingDay(
            day=delta.day,
            active=active,
            old_active=old_active,
            sources=declared,
            delta=delta,
            started=started,
        )

    # ------------------------------------------------------------ tolerances
    def _attr_magnitudes(
        self, active: np.ndarray, sort: bool = True
    ) -> List[Optional[np.ndarray]]:
        """|value| arrays of the active claims, per numeric attribute."""
        arrays: List[Optional[np.ndarray]] = []
        item_attr = np.asarray(self._item_attr_list, dtype=np.int64)
        claim_attr = item_attr[self._s_item]
        for code, spec in enumerate(self._attr_specs):
            if spec.kind.is_numeric and spec.kind is not ValueKind.TIME:
                bucket = self._value_numeric[
                    self._s_val[active & (claim_attr == code)]
                ]
                bucket = np.abs(bucket[~np.isnan(bucket)])
                if sort:
                    bucket.sort()
                arrays.append(bucket)
            else:
                arrays.append(None)
        return arrays

    def _attr_sorted_arrays(self, active: np.ndarray) -> List[Optional[np.ndarray]]:
        """Sorted |value| arrays of the active claims, per numeric attribute."""
        return self._attr_magnitudes(active, sort=True)

    def pending_magnitudes(
        self, pending: PendingDay
    ) -> List[Optional[np.ndarray]]:
        """Per-numeric-attribute |value| arrays of a pending day's claims.

        The sharded streaming runner concatenates these across shards to
        compute the day's **global** Equation-(3) medians before calling
        :meth:`finish` on every shard with the shared tolerances.
        """
        return self._attr_magnitudes(pending.active, sort=False)

    def _patch_attr_sorted(
        self, old_active: np.ndarray, active: np.ndarray
    ) -> None:
        """Apply the day's claim churn to the per-attribute sorted arrays."""
        changed = np.flatnonzero(old_active != active)
        if not len(changed):
            return
        item_attr = np.asarray(self._item_attr_list, dtype=np.int64)
        attrs = item_attr[self._s_item[changed]]
        numeric = self._value_numeric[self._s_val[changed]]
        added = active[changed]
        for code in np.unique(attrs).tolist():
            arr = self._attr_sorted[code]
            if arr is None:
                continue
            sel = attrs == code
            vals = np.abs(numeric[sel])
            adds = np.sort(vals[added[sel] & ~np.isnan(vals)])
            drops = np.sort(vals[~added[sel] & ~np.isnan(vals)])
            if len(drops):
                idx = np.searchsorted(arr, drops, side="left")
                # Duplicates in `drops` must map to distinct positions.
                offs, _ = _run_offsets(drops)
                arr = np.delete(arr, idx + offs)
            if len(adds):
                arr = np.insert(arr, np.searchsorted(arr, adds), adds)
            self._attr_sorted[code] = arr

    def global_tolerances(
        self, buckets: List[List[Optional[np.ndarray]]]
    ) -> np.ndarray:
        """Equation (3) from per-shard magnitude buckets merged per attribute.

        ``buckets`` is one :meth:`pending_magnitudes` result per shard; the
        medians are computed over the concatenation, so they equal the
        unsharded snapshot's medians exactly (``np.median`` is a multiset
        function — element order cannot change it).
        """
        tolerances = np.zeros(len(self._attr_specs), dtype=np.float64)
        for code, spec in enumerate(self._attr_specs):
            if spec.kind is ValueKind.TIME:
                tolerances[code] = TIME_TOLERANCE_MINUTES
            elif spec.kind.is_numeric:
                parts = [b[code] for b in buckets if b[code] is not None]
                merged = (
                    np.concatenate(parts) if parts
                    else np.zeros(0, dtype=np.float64)
                )
                if merged.size:
                    tolerances[code] = spec.tolerance_factor * float(
                        np.median(merged)
                    )
        return tolerances

    def _tolerances_from_sorted(self) -> np.ndarray:
        """Equation (3) per attribute from the maintained sorted arrays."""
        tolerances = np.zeros(len(self._attr_specs), dtype=np.float64)
        for code, spec in enumerate(self._attr_specs):
            if spec.kind is ValueKind.TIME:
                tolerances[code] = TIME_TOLERANCE_MINUTES
            elif spec.kind.is_numeric:
                arr = self._attr_sorted[code]
                if arr is not None and len(arr):
                    mid = len(arr) // 2
                    if len(arr) % 2:
                        median = float(arr[mid])
                    else:
                        # Match np.median exactly: mean of the two middles.
                        median = float(
                            np.mean(arr[mid - 1: mid + 1])
                        )
                    tolerances[code] = spec.tolerance_factor * median
        return tolerances

    # ----------------------------------------------------------- compilation
    def finish(
        self, pending: PendingDay, attr_tol: Optional[np.ndarray] = None
    ) -> DayCompilation:
        """Phase two: compile a pending day (optionally under given tolerances)."""
        return self._finish_day(
            pending.day,
            pending.active,
            pending.old_active,
            pending.sources,
            pending.delta,
            pending.started,
            attr_tol_override=attr_tol,
        )

    def _finish_day(
        self,
        day: str,
        active: np.ndarray,
        old_active: np.ndarray,
        declared_sources: List[str],
        delta: Optional[ClaimDelta],
        started: float,
        attr_tol_override: Optional[np.ndarray] = None,
    ) -> DayCompilation:
        changed = active != old_active
        n_added = int((active & ~old_active).sum())
        n_removed = int((~active & old_active).sum())

        view = self._build_view()
        if attr_tol_override is not None:
            attr_tol = np.asarray(attr_tol_override, dtype=np.float64)
            # The incremental sorted arrays were not patched with this
            # day's churn; drop them so a later self-computed day rebuilds.
            self._attr_sorted = None
        elif delta is not None and self._prev_tol is not None:
            if self._attr_sorted is None:
                self._attr_sorted = self._attr_sorted_arrays(old_active)
            self._patch_attr_sorted(old_active, active)
            attr_tol = self._tolerances_from_sorted()
        else:
            attr_tol = compute_tolerances(view, active)

        n_items = len(self._items)
        dirty = np.zeros(n_items, dtype=bool)
        dirty[self._s_item[changed]] = True
        if self._prev_tol is None or self._prev_compiled is None:
            dirty[:] = True
        else:
            tol_moved = attr_tol != self._prev_tol
            if tol_moved.any():
                dirty |= tol_moved[
                    np.asarray(self._item_attr_list, dtype=np.int64)
                ]

        item_active = np.bincount(self._s_item[active], minlength=n_items) > 0
        item_was_active = (
            np.bincount(self._s_item[old_active], minlength=n_items) > 0
        )
        touched = item_active | item_was_active
        n_touched = int(touched.sum())
        n_dirty = int((dirty & touched).sum())

        full = (
            self._prev_compiled is None
            or n_touched == 0
            or (n_dirty / max(n_touched, 1)) > self.full_compile_threshold
        )
        if full:
            compiled = compile_clusters(view, attr_tol, active)
        else:
            partial_mask = active & dirty[self._s_item]
            partial = compile_clusters(view, attr_tol, partial_mask)
            compiled = splice_compiled(self._prev_compiled, partial, dirty)

        if self.track_copy_structures:
            self._update_pair_counts(full, compiled, dirty)

        source_codes = np.asarray(
            [self._source_code[s] for s in declared_sources], dtype=np.int64
        )

        self._active = active
        self._prev_compiled = compiled
        compacted = self._maybe_compact()
        self._prev_tol = attr_tol
        self._declared = list(declared_sources)
        self.days.append(day)

        stats = DayStats(
            n_active_claims=int(active.sum()),
            n_added_claims=n_added,
            n_removed_claims=n_removed,
            n_active_items=int(item_active.sum()),
            n_dirty_items=n_dirty,
            full_compile=full,
            compacted=compacted,
            ingest_seconds=time.perf_counter() - started,
        )
        pair_counts = None
        if self.track_copy_structures:
            idx = np.ix_(source_codes, source_codes)
            pair_counts = (self._same[idx].copy(), self._shared[idx].copy())
        return DayCompilation(
            day=day,
            view=view,
            compiled=compiled,
            attr_tol=attr_tol,
            claim_mask=active,
            sources=list(declared_sources),
            source_codes=source_codes,
            stats=stats,
            pair_counts=pair_counts,
        )

    # -------------------------------------------------- copy-detection counts
    def _compiled_claim_items(self, compiled: CompiledClusters) -> np.ndarray:
        """Union item code of every compiled claim."""
        return compiled.item_index[compiled.cluster_item[compiled.claim_cluster]]

    def _update_pair_counts(
        self, full: bool, compiled: CompiledClusters, dirty: np.ndarray
    ) -> None:
        n = len(self._sources)
        if self._same is None:
            self._same = np.zeros((0, 0), dtype=np.float64)
            self._shared = np.zeros((0, 0), dtype=np.float64)
        if self._same.shape[0] < n:
            grow = n - self._same.shape[0]
            self._same = np.pad(self._same, ((0, grow), (0, grow)))
            self._shared = np.pad(self._shared, ((0, grow), (0, grow)))

        new_items = self._compiled_claim_items(compiled)
        if full or self._prev_compiled is None:
            self._same = _pair_counts(
                compiled.claim_source, compiled.claim_cluster, n
            )
            self._shared = _pair_counts(compiled.claim_source, new_items, n)
            return

        prev = self._prev_compiled
        prev_items = self._compiled_claim_items(prev)
        prev_hit = dirty[prev_items]
        new_hit = dirty[new_items]
        self._same += _pair_counts(
            compiled.claim_source[new_hit], compiled.claim_cluster[new_hit], n
        ) - _pair_counts(
            prev.claim_source[prev_hit], prev.claim_cluster[prev_hit], n
        )
        self._shared += _pair_counts(
            compiled.claim_source[new_hit], new_items[new_hit], n
        ) - _pair_counts(prev.claim_source[prev_hit], prev_items[prev_hit], n)

    # ------------------------------------------------------------- compaction
    def _maybe_compact(self) -> bool:
        """Drop inactive claims (and unreferenced values) from the store.

        High-churn streams (e.g. daily stock prices) would otherwise grow
        the union store by nearly a full snapshot per day, making the
        per-day diff slower the longer the stream runs.  Compaction keeps
        only the currently active claims; a retired claim that later
        reappears is simply re-interned.
        """
        active = self._active
        n_active = int(active.sum())
        n_inactive = len(active) - n_active
        if n_inactive <= self.max_inactive_ratio * max(n_active, 1):
            return False

        keep = np.flatnonzero(active)
        self._s_item = self._s_item[keep]
        self._s_src = self._s_src[keep]
        s_val = self._s_val[keep]
        self._s_granc = self._s_granc[keep]
        self._item_counts = np.bincount(
            self._s_item, minlength=len(self._items)
        ).astype(np.int64)
        self._active = np.ones(len(keep), dtype=bool)

        # Prune the value table down to what the kept claims reference and
        # remap every structure that stores value codes.
        val_used = np.unique(s_val)
        val_remap = np.full(len(self._values), -1, dtype=np.int64)
        val_remap[val_used] = np.arange(len(val_used), dtype=np.int64)
        self._values = [self._values[int(v)] for v in val_used]
        self._value_code = {v: i for i, v in enumerate(self._values)}
        self._value_numeric = self._value_numeric[val_used]
        self._rank_arr = self._rank_arr[val_used]
        keep_strs = set(str(v) for v in self._values)
        str_keep = np.asarray(
            [s in keep_strs for s in self._sorted_strs.tolist()], dtype=bool
        ) if self._sorted_strs is not None else None
        if str_keep is not None:
            self._sorted_strs = self._sorted_strs[str_keep]
            self._sorted_ranks = self._sorted_ranks[str_keep]

        self._s_val = val_remap[s_val]
        self._s_key = (
            (self._s_item << _ITEM_SHIFT)
            | (self._s_src << _SRC_SHIFT)
            | (self._s_val << _VAL_SHIFT)
            | self._s_granc
        )
        korder = np.argsort(self._s_key, kind="stable")
        self._key_sorted = self._s_key[korder]
        self._key_pos = korder

        # Yesterday's compiled arrays reference value codes; remap them so
        # the next day's splice mixes consistently with fresh compiles.
        prev = self._prev_compiled
        self._prev_compiled = CompiledClusters(
            item_index=prev.item_index,
            item_attr=prev.item_attr,
            item_start=prev.item_start,
            cluster_item=prev.cluster_item,
            cluster_value=val_remap[prev.cluster_value],
            cluster_support=prev.cluster_support,
            claim_source=prev.claim_source,
            claim_cluster=prev.claim_cluster,
            claim_value=val_remap[prev.claim_value],
            claim_granularity=prev.claim_granularity,
        )
        return True
