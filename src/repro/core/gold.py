"""Gold-standard construction and matching (Section 2.2).

The paper cannot observe the real world directly, so it builds gold standards
from trusted sources:

* **Stock** — majority vote over five popular financial sites (NASDAQ,
  Yahoo! Finance, Google Finance, MSN Money, Bloomberg) on 200 designated
  symbols, voting only on items provided by at least three of them.
* **Flight** — the data of the three airline websites on 100 randomly
  selected flights (majority vote when they disagree).

:func:`build_gold_standard` implements both via the same primitive: vote among
the authority sources (the :class:`~repro.core.records.SourceMeta` entries
flagged ``is_authority``) on the designated gold objects, requiring a minimum
number of authority providers per item.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.dataset import Dataset
from repro.core.records import Claim, DataItem, Value
from repro.core.tolerance import cluster_claims
from repro.errors import GoldStandardError


@dataclass
class GoldStandard:
    """Truth values for a subset of data items, plus matching helpers."""

    domain: str
    values: Dict[DataItem, Value] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, item: DataItem) -> bool:
        return item in self.values

    def __getitem__(self, item: DataItem) -> Value:
        return self.values[item]

    @property
    def items(self) -> Iterable[DataItem]:
        return self.values.keys()

    @property
    def objects(self) -> Set[str]:
        return {item.object_id for item in self.values}

    def is_correct(self, dataset: Dataset, item: DataItem, value: Value) -> bool:
        """Whether ``value`` matches the gold value under the item tolerance."""
        truth = self.values.get(item)
        if truth is None:
            raise GoldStandardError(f"item {item} not in gold standard")
        return dataset.values_match(item.attribute, value, truth)

    def restrict_to(self, items: Iterable[DataItem]) -> "GoldStandard":
        wanted = set(items)
        return GoldStandard(
            domain=self.domain,
            values={i: v for i, v in self.values.items() if i in wanted},
        )


def build_gold_standard(
    dataset: Dataset,
    gold_objects: Iterable[str],
    min_providers: int = 3,
    authority_ids: Optional[Iterable[str]] = None,
) -> GoldStandard:
    """Vote among authority sources to produce a gold standard.

    Parameters
    ----------
    dataset:
        The snapshot to vote over.
    gold_objects:
        Object ids eligible for the gold standard (e.g. the 200 evaluation
        symbols for Stock).
    min_providers:
        Minimum number of authority sources that must provide an item for it
        to enter the gold standard (3 in the paper's Stock construction;
        use 1 to accept any airline-covered flight item).
    authority_ids:
        Explicit authority source ids; defaults to sources flagged
        ``is_authority`` in the dataset.
    """
    if authority_ids is None:
        authorities = [s for s, m in dataset.sources.items() if m.is_authority]
    else:
        authorities = list(authority_ids)
    if not authorities:
        raise GoldStandardError("no authority sources available for voting")
    authority_set = set(authorities)
    object_set = set(gold_objects)

    gold = GoldStandard(domain=dataset.domain)
    for item in dataset.items:
        if item.object_id not in object_set:
            continue
        claims = dataset.claims_on(item)
        authority_claims: Dict[str, Claim] = {
            s: c for s, c in claims.items() if s in authority_set
        }
        if len(authority_claims) < min_providers:
            continue
        spec = dataset.spec(item.attribute)
        clustering = cluster_claims(
            authority_claims, spec, dataset.tolerance(item.attribute)
        )
        gold.values[item] = clustering.dominant.representative
    if not gold.values:
        raise GoldStandardError(
            "gold standard is empty; check gold_objects and authority coverage"
        )
    return gold


def accuracy_of_source(
    dataset: Dataset, gold: GoldStandard, source_id: str
) -> Optional[float]:
    """Source accuracy against the gold standard (Section 3.3).

    The percentage of the source's provided true values among all its data
    items appearing in the gold standard; ``None`` when the source provides
    no gold item.
    """
    claims = dataset.claims_by(source_id)
    total = 0
    correct = 0
    for item, claim in claims.items():
        if item not in gold:
            continue
        total += 1
        if gold.is_correct(dataset, item, claim.value):
            correct += 1
    if total == 0:
        return None
    return correct / total


def coverage_of_source(dataset: Dataset, gold: GoldStandard, source_id: str) -> float:
    """Item-level coverage of the gold standard by one source (Table 4)."""
    if len(gold) == 0:
        return 0.0
    claims = dataset.claims_by(source_id)
    covered = sum(1 for item in gold.items if item in claims)
    return covered / len(gold)


def recall_of_source(dataset: Dataset, gold: GoldStandard, source_id: str) -> float:
    """Coverage x accuracy: the fraction of gold items the source gets right.

    This is the ordering key of Figure 9 ("ordered the sources by the product
    of coverage and accuracy (i.e., recall)").
    """
    claims = dataset.claims_by(source_id)
    if len(gold) == 0:
        return 0.0
    correct = 0
    for item in gold.items:
        claim = claims.get(item)
        if claim is not None and gold.is_correct(dataset, item, claim.value):
            correct += 1
    return correct / len(gold)
