"""Sharded corpus compilation: partition one snapshot by object key.

A production corpus does not fit one :class:`~repro.fusion.base.FusionProblem`:
compilation and solving must scale out.  Because the Section 3.2 bucketing is
independent across data items, a snapshot partitions cleanly **by object** —
every ``(object, attribute)`` item lands in exactly one shard, each shard
compiles independently (the parallelizable unit), and the per-shard compiled
arrays merge back, segment by segment, into *exactly* the arrays a monolithic
compile would have produced.

Two quantities are *not* item-local, and they are what the cross-shard
approximation knob governs:

* **Equation-(3) tolerances** are per-attribute medians over the whole
  snapshot.  ``cross_shard="exact"`` computes them once globally and hands
  every shard the same array, so shard compiles — and the merged problem —
  are bit-identical to the unsharded path.  ``cross_shard="independent"``
  lets each shard use its own medians: no global pass, but bucketing near
  shard-median boundaries can differ from the monolithic compile.
* **Copy-detection overlap counts** (pairwise same-cluster / shared-item
  counts) are sums over items, so per-shard counts *add up exactly*:
  :meth:`ShardedCorpus.merged_problem` seeds the sum, while an
  ``independent`` shard solve sees only shard-local overlap evidence (a
  copier pair split across shards looks less dependent than it is).

The scheduling unit is :class:`ShardSpec` — a compact, picklable description
(``n_shards``, ``index``, assignment mode, tolerance scope) that a
:class:`~repro.parallel.SolveScheduler` worker turns back into a compiled
shard problem with :func:`shard_problem`, carving the shard from the one
shared-memory export of the base problem.  :class:`ShardPlan` builds those
jobs for a :class:`ShardedCorpus` and gathers per-shard (or merged-exact)
:class:`~repro.fusion.base.FusionResult`\\ s for the serving layer
(:mod:`repro.serving`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar import (
    ColumnarView,
    CompiledClusters,
    compile_clusters,
    compute_tolerances,
)
from repro.core.dataset import Dataset
from repro.core.delta import _pair_counts, concat_compiled
from repro.errors import ConfigError, FusionError

__all__ = [
    "ShardSpec",
    "ShardedCorpus",
    "ShardPlan",
    "ShardPlanResult",
    "shard_of_object",
    "shard_problem",
    "shard_problem_from_view",
    "pack_shard_codes",
]

ASSIGN_MODES = ("hash", "contiguous")
CROSS_SHARD_MODES = ("exact", "independent")


def shard_of_object(object_id: str, n_shards: int) -> int:
    """Stable hash shard of one object key (crc32, process-independent)."""
    return zlib.crc32(object_id.encode("utf-8")) % n_shards


def _object_assignment(
    object_ids: Sequence[str], n_shards: int, assign: str
) -> Dict[str, int]:
    """Shard index per distinct object id, deterministic across processes."""
    distinct = sorted(set(object_ids))
    if assign == "hash":
        return {obj: shard_of_object(obj, n_shards) for obj in distinct}
    if assign == "contiguous":
        mapping: Dict[str, int] = {}
        for index, chunk in enumerate(np.array_split(distinct, n_shards)):
            for obj in chunk.tolist():
                mapping[obj] = index
        return mapping
    raise ConfigError(f"unknown shard assignment {assign!r}; expected {ASSIGN_MODES}")


def item_shard_codes(view: ColumnarView, n_shards: int, assign: str) -> np.ndarray:
    """Shard index of every view item, by its object key."""
    objects = [item.object_id for item in view.items]
    mapping = _object_assignment(objects, n_shards, assign)
    return np.asarray([mapping[obj] for obj in objects], dtype=np.int64)


def pack_shard_codes(codes: np.ndarray) -> np.ndarray:
    """Assignment codes in wire form: one byte per object where K permits.

    The view-only export ships these so workers index the shared array
    instead of re-hashing every object id per job.
    """
    if codes.size and int(codes.max()) > 255:
        return np.ascontiguousarray(codes, dtype=np.int64)
    return codes.astype(np.uint8)


def _cached_item_codes(
    holder, view: ColumnarView, n_shards: int, assign: str
) -> np.ndarray:
    """Per-object memo of ``item_shard_codes`` (workers reuse it across jobs)."""
    cache = holder.__dict__.setdefault("_shard_code_cache", {})
    codes = cache.get((n_shards, assign))
    if codes is None:
        codes = item_shard_codes(view, n_shards, assign)
        cache[(n_shards, assign)] = codes
    return codes


@dataclass(frozen=True)
class ShardSpec:
    """A compact, picklable recipe for carving one shard from a base problem.

    Workers recompute the (deterministic) object assignment from the shared
    view instead of receiving object lists, so a shard job costs a few bytes
    on the wire regardless of corpus size.  ``tolerance_scope`` is
    ``"global"`` (reuse the base problem's Equation-3 tolerances — the exact
    mode) or ``"shard"`` (per-shard medians — the independent approximation).
    """

    n_shards: int
    index: int
    assign: str = "hash"
    tolerance_scope: str = "global"


def shard_problem(problem, spec: ShardSpec, codes: Optional[np.ndarray] = None):
    """Compile one shard of a columnar-compiled problem (worker entry point).

    Bit-identical to compiling the shard's claims monolithically: the claim
    mask selects the shard's items, tolerances come from the spec's scope,
    and the full source universe is kept (a shard with no claims from some
    source still carries its trust row, exactly like a delta-compiled day).
    With ``n_shards=1`` the result is indistinguishable from ``problem``.

    ``codes`` supplies the per-object shard assignment when the caller
    already holds it (the view-only export ships it); otherwise it is
    computed once and memoized on ``problem``, so repeated ``ShardSpec``
    expansions against one export never re-hash the object ids.
    """
    from repro.fusion.base import FusionProblem

    view = problem._view
    if view is None:
        raise FusionError("shard_problem requires a columnar-compiled problem")
    if not 0 <= spec.index < spec.n_shards:
        raise ConfigError(f"shard index {spec.index} out of range of {spec.n_shards}")
    if codes is None:
        codes = _cached_item_codes(problem, view, spec.n_shards, spec.assign)
    mask = codes[view.claim_item] == spec.index
    if problem._claim_mask is not None:
        mask &= problem._claim_mask
    if not mask.any():
        raise FusionError(f"shard {spec.index}/{spec.n_shards} has no claims")
    full = problem._claim_mask is None and bool(mask.all())
    if spec.tolerance_scope == "global":
        attr_tol = problem._attr_tol
    elif spec.tolerance_scope == "shard":
        attr_tol = compute_tolerances(view, None if full else mask)
    else:
        raise ConfigError(f"unknown tolerance scope {spec.tolerance_scope!r}")
    compiled = compile_clusters(view, attr_tol, None if full else mask)
    return FusionProblem.from_compiled(
        view=view,
        compiled=compiled,
        sources=list(problem.sources),
        source_codes=problem._source_codes,
        attr_tol=attr_tol,
        claim_mask=None if full else mask,
    )


def shard_problem_from_view(
    view: ColumnarView,
    spec: ShardSpec,
    codes: Optional[np.ndarray] = None,
    attr_tol: Optional[np.ndarray] = None,
):
    """Compile one shard straight from a raw columnar view — no base problem.

    This is the compile-free scheduling path: the parent exports only the
    view (plus the assignment ``codes``), and each worker runs this to carve
    and compile *its own* shard.  Field for field it equals
    ``ShardedCorpus(dataset, K, ...).problem(spec.index)`` — full source
    universe, spec-scoped tolerances — without anyone ever compiling the
    monolithic snapshot.  ``attr_tol`` supplies the global Equation-(3)
    medians when ``tolerance_scope == "global"`` (the exporter precomputes
    them; a median pass, not a compile).
    """
    from repro.fusion.base import FusionProblem

    if not 0 <= spec.index < spec.n_shards:
        raise ConfigError(f"shard index {spec.index} out of range of {spec.n_shards}")
    if codes is None:
        codes = item_shard_codes(view, spec.n_shards, spec.assign)
    mask = codes[view.claim_item] == spec.index
    if not mask.any():
        raise FusionError(f"shard {spec.index}/{spec.n_shards} has no claims")
    full = bool(mask.all())
    if spec.tolerance_scope == "global":
        if attr_tol is None:
            attr_tol = compute_tolerances(view)
    elif spec.tolerance_scope == "shard":
        attr_tol = compute_tolerances(view, mask)
    else:
        raise ConfigError(f"unknown tolerance scope {spec.tolerance_scope!r}")
    compiled = compile_clusters(view, attr_tol, mask)
    return FusionProblem.from_compiled(
        view=view,
        compiled=compiled,
        sources=list(view.sources),
        source_codes=np.arange(view.n_sources, dtype=np.int64),
        attr_tol=attr_tol,
        claim_mask=None if full else mask,
    )


class ShardedCorpus:
    """A snapshot partitioned by object key into K independent shards.

    The corpus owns the snapshot's shared columnar view plus one boolean
    claim mask per shard; per-shard tolerances, compiled clusters, fusion
    problems, and copy-detection counts are computed lazily and cached.
    ``cross_shard`` is the documented approximation knob (module docstring):
    ``"exact"`` shares global tolerances so :meth:`merged_problem` equals
    the unsharded compile bit for bit; ``"independent"`` keeps every pass
    shard-local and forgoes the merged problem.
    """

    def __init__(
        self,
        dataset: Dataset,
        n_shards: int,
        assign: str = "hash",
        cross_shard: str = "exact",
    ):
        if n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
        if assign not in ASSIGN_MODES:
            raise ConfigError(f"unknown shard assignment {assign!r}")
        if cross_shard not in CROSS_SHARD_MODES:
            raise ConfigError(
                f"cross_shard must be one of {CROSS_SHARD_MODES}, got {cross_shard!r}"
            )
        self.dataset = dataset
        self.n_shards = int(n_shards)
        self.assign = assign
        self.cross_shard = cross_shard
        self.view = dataset.columnar
        self.item_codes = item_shard_codes(self.view, self.n_shards, assign)
        self._claim_codes = self.item_codes[self.view.claim_item]
        self._global_tol: Optional[np.ndarray] = None
        self._tols: Dict[int, np.ndarray] = {}
        self._compiled: Dict[int, CompiledClusters] = {}
        self._problems: Dict[int, object] = {}
        self._counts: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._merged = None
        self._base = None

    # ------------------------------------------------------------- geometry
    @property
    def tolerance_scope(self) -> str:
        return "global" if self.cross_shard == "exact" else "shard"

    @property
    def exact(self) -> bool:
        return self.cross_shard == "exact"

    def spec(self, index: int) -> ShardSpec:
        return ShardSpec(
            n_shards=self.n_shards,
            index=index,
            assign=self.assign,
            tolerance_scope=self.tolerance_scope,
        )

    def mask(self, index: int) -> np.ndarray:
        return self._claim_codes == index

    def claim_count(self, index: int) -> int:
        return int((self._claim_codes == index).sum())

    @property
    def shards(self) -> List[int]:
        """Indices of the shards that actually hold claims."""
        present = np.unique(self._claim_codes)
        return [int(i) for i in present]

    def source_claim_counts(self, index: int) -> Dict[str, float]:
        """Claims per source inside one shard (trust-merge weights)."""
        counts = np.bincount(
            self.view.claim_source[self.mask(index)],
            minlength=self.view.n_sources,
        )
        return {
            source: float(counts[code])
            for code, source in enumerate(self.view.sources)
        }

    # ----------------------------------------------------------- compilation
    def global_tolerances(self) -> np.ndarray:
        if self._global_tol is None:
            self._global_tol = self.dataset._tolerance_array()
        return self._global_tol

    def tolerances(self, index: int) -> np.ndarray:
        if index not in self._tols:
            if self.tolerance_scope == "global":
                self._tols[index] = self.global_tolerances()
            else:
                self._tols[index] = compute_tolerances(self.view, self.mask(index))
        return self._tols[index]

    def compile_shard(self, index: int) -> CompiledClusters:
        """The shard's Section-3.2 bucketing (cached)."""
        if index not in self._compiled:
            self._compiled[index] = compile_clusters(
                self.view, self.tolerances(index), self.mask(index)
            )
        return self._compiled[index]

    def problem(self, index: int):
        """The shard compiled as an independent fusion problem (cached).

        Every shard keeps the full source universe, so per-shard trust
        vectors are comparable and the K=1 shard is field-for-field the
        unsharded :class:`~repro.fusion.base.FusionProblem`.
        """
        if index not in self._problems:
            from repro.fusion.base import FusionProblem

            mask = self.mask(index)
            if not mask.any():
                raise FusionError(f"shard {index}/{self.n_shards} has no claims")
            full = bool(mask.all())
            self._problems[index] = FusionProblem.from_compiled(
                view=self.view,
                compiled=self.compile_shard(index),
                sources=list(self.view.sources),
                source_codes=np.arange(self.view.n_sources, dtype=np.int64),
                attr_tol=self.tolerances(index),
                claim_mask=None if full else mask,
            )
        return self._problems[index]

    def copy_counts(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-shard pairwise (same-cluster, shared-item) counts.

        Both counts are sums over items, so across shards they add up to
        exactly the monolithic counts — :meth:`merged_problem` relies on it.
        """
        if index not in self._counts:
            compiled = self.compile_shard(index)
            items = compiled.item_index[compiled.cluster_item[compiled.claim_cluster]]
            n = self.view.n_sources
            self._counts[index] = (
                _pair_counts(compiled.claim_source, compiled.claim_cluster, n),
                _pair_counts(compiled.claim_source, items, n),
            )
        return self._counts[index]

    # ------------------------------------------------------------- the merge
    def merged_compiled(self) -> CompiledClusters:
        """All shard compilations merged back into snapshot item order.

        Items are disjoint across shards and the clustering kernel treats
        them independently, so one K-way segment merge of the shard
        compilations in item order (:func:`repro.core.delta.concat_compiled`)
        reproduces the monolithic ``compile_clusters`` output exactly
        (the equivalence suite pins every array).
        """
        return concat_compiled([
            self.compile_shard(index) for index in self.shards
        ])

    def base_problem(self):
        """The unsharded problem of the snapshot (cached; the K=1 baseline)."""
        if self._base is None:
            from repro.fusion.base import FusionProblem

            self._base = FusionProblem(self.dataset)
        return self._base

    def merged_problem(self, with_copy: bool = False):
        """The shard compilations merged into one global problem.

        Requires ``cross_shard="exact"`` — with shard-local tolerances the
        merge would mix incompatible bucketings.  ``with_copy`` seeds the
        problem with the sum of the per-shard overlap counts instead of
        recomputing the sparse products over the whole corpus.
        """
        if not self.exact:
            raise FusionError(
                "merged_problem requires cross_shard='exact' "
                "(shard-local tolerances do not merge)"
            )
        if self._merged is None:
            from repro.fusion.base import FusionProblem

            self._merged = FusionProblem.from_compiled(
                view=self.view,
                compiled=self.merged_compiled(),
                sources=list(self.view.sources),
                source_codes=np.arange(self.view.n_sources, dtype=np.int64),
                attr_tol=self.global_tolerances(),
                claim_mask=None,
            )
        if with_copy and self._merged._copy_seed is None:
            same = np.zeros((self.view.n_sources,) * 2, dtype=np.float64)
            shared = np.zeros_like(same)
            for index in self.shards:
                shard_same, shard_shared = self.copy_counts(index)
                same += shard_same
                shared += shard_shared
            self._merged.seed_copy_counts(same, shared)
        return self._merged


# --------------------------------------------------------------------------
# Scheduling shard solves
# --------------------------------------------------------------------------

@dataclass
class ShardPlanResult:
    """Outcome of one :meth:`ShardPlan.run`, ready for the serving layer.

    ``results`` is set in exact mode (one global result per method);
    ``shard_results`` in independent mode (shard-major, one result dict per
    live shard, aligned with ``shard_ids``), together with per-shard
    per-source claim counts for trust merging.
    """

    mode: str
    day: str
    methods: List[str]
    results: Optional[Dict[str, object]] = None
    shard_results: Optional[List[Dict[str, object]]] = None
    shard_ids: Optional[List[int]] = None
    source_weights: Optional[List[Dict[str, float]]] = None
    seconds: float = 0.0


class ShardPlan:
    """Per-shard compile+solve of a corpus as a plan on the solve scheduler.

    In **exact** mode (corpus ``cross_shard="exact"``) the shards' compiled
    arrays merge into the global problem and the methods fan out across the
    pool as ordinary method jobs — answers are bit-identical to solving the
    unsharded snapshot.  In **independent** mode the base problem is
    exported once and every live shard becomes one
    :class:`~repro.parallel.SolveJob` carrying its :class:`ShardSpec`: the
    worker compiles the shard from the shared view and solves every method
    on it, K-way parallel, with shard-local trust and copy evidence.
    """

    def __init__(
        self,
        corpus: ShardedCorpus,
        methods: Sequence[str],
        method_kwargs: Optional[Dict[str, dict]] = None,
    ):
        self.corpus = corpus
        self.methods = list(methods)
        self.method_kwargs = {
            name: dict((method_kwargs or {}).get(name, {})) for name in self.methods
        }

    def _uses_copy(self) -> bool:
        from repro.parallel import MethodCall, _uses_copy_detection

        return _uses_copy_detection([
            MethodCall(name, kwargs=self.method_kwargs[name])
            for name in self.methods
        ])

    def run(self, scheduler=None, workers: int = 0) -> ShardPlanResult:
        """Execute the plan (serially without a scheduler/workers)."""
        import time as _time

        from repro.parallel import MethodCall, SolveJob, SolveScheduler, solve_methods

        corpus = self.corpus
        day = corpus.dataset.day
        started = _time.perf_counter()
        if corpus.exact:
            merged = corpus.merged_problem(with_copy=self._uses_copy())
            outcomes = solve_methods(
                merged,
                self.methods,
                scheduler=scheduler,
                workers=workers,
                method_kwargs=self.method_kwargs,
            )
            return ShardPlanResult(
                mode="exact",
                day=day,
                methods=self.methods,
                results={
                    name: outcome.result
                    for name, outcome in zip(self.methods, outcomes)
                },
                seconds=_time.perf_counter() - started,
            )

        shard_ids = corpus.shards
        own: Optional[SolveScheduler] = None
        sched = scheduler
        if sched is None:
            sched = own = SolveScheduler(workers=workers)
        try:
            # Compile-free parent: export the raw columnar view (plus the
            # object→shard assignment codes) instead of a compiled base
            # problem — workers carve and compile only their own shard, and
            # shard-local copy structures are rebuilt worker-side, so the
            # export never ships the global overlap counts either.
            key = sched.register_view(
                None,
                corpus.view,
                shard_codes=corpus.item_codes,
                n_shards=corpus.n_shards,
                assign=corpus.assign,
            )
            jobs = [
                SolveJob(
                    problem=key,
                    calls=[
                        MethodCall(name, kwargs=self.method_kwargs[name])
                        for name in self.methods
                    ],
                    shard=corpus.spec(index),
                    tag=index,
                )
                for index in shard_ids
            ]
            outcomes = sched.run(jobs)
        finally:
            if own is not None:
                own.close()
        return ShardPlanResult(
            mode="independent",
            day=day,
            methods=self.methods,
            shard_results=[
                {
                    name: call.result
                    for name, call in zip(self.methods, outcome.calls)
                }
                for outcome in outcomes
            ],
            shard_ids=list(shard_ids),
            source_weights=[
                corpus.source_claim_counts(index) for index in shard_ids
            ],
            seconds=_time.perf_counter() - started,
        )
