"""Tolerance and bucketing of provided values (Section 3.2).

The paper is "fairly tolerant to slightly different values":

* TIME values match within 10 minutes.
* Numeric values of attribute ``A`` match within
  ``tau(A) = alpha * median(V(A))`` where ``V(A)`` is every value provided for
  ``A`` in the snapshot and ``alpha`` defaults to 0.01 (Equation 3).

When measuring value distributions the paper *buckets* values around the
dominant value ``v0`` with bucket width ``tau(A)``: buckets are the intervals
``(v0 + (2k-1) tau/2, v0 + (2k+1) tau/2]`` for integer ``k``.  This module
implements that bucketing and the resulting clustering of an item's claims
into distinct values, which is the representation every downstream consumer
(entropy, dominance, fusion) works with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.attributes import (
    TIME_TOLERANCE_MINUTES,
    AttributeSpec,
    ValueKind,
)
from repro.core.records import Claim, Value


def attribute_tolerance(spec: AttributeSpec, all_values: Sequence[float]) -> float:
    """Absolute tolerance ``tau(A)`` for one attribute (Equation 3).

    ``all_values`` are all numeric values provided for the attribute across
    the snapshot.  TIME attributes ignore them and use the fixed 10-minute
    tolerance; STRING attributes get tolerance 0 (exact match).
    """
    if spec.kind is ValueKind.TIME:
        return TIME_TOLERANCE_MINUTES
    if spec.kind is ValueKind.STRING:
        return 0.0
    values = sorted(abs(float(v)) for v in all_values)
    if not values:
        return 0.0
    mid = len(values) // 2
    if len(values) % 2:
        median = values[mid]
    else:
        median = 0.5 * (values[mid - 1] + values[mid])
    return spec.tolerance_factor * median


@dataclass
class ValueCluster:
    """One bucket of agreeing values on a single data item.

    ``representative`` is the most-provided exact value inside the bucket
    (ties broken toward the smaller value for determinism).  ``providers``
    maps source id to the exact value that source provided.
    """

    representative: Value
    providers: Dict[str, Value] = field(default_factory=dict)

    @property
    def support(self) -> int:
        return len(self.providers)

    @property
    def source_ids(self) -> List[str]:
        return list(self.providers)


@dataclass
class ItemClustering:
    """All distinct (bucketed) values on one data item, ordered by support.

    ``clusters[0]`` is the dominant value's cluster.  Ties in support are
    broken deterministically (by representative value).
    """

    clusters: List[ValueCluster]

    @property
    def num_values(self) -> int:
        """``|V(d)|`` — the number of distinct values after bucketing."""
        return len(self.clusters)

    @property
    def num_providers(self) -> int:
        """``|S(d)|`` — the number of sources providing the item."""
        return sum(c.support for c in self.clusters)

    @property
    def dominant(self) -> ValueCluster:
        return self.clusters[0]

    @property
    def dominance_factor(self) -> float:
        """``F(d) = |S(d, v0)| / |S(d)|`` (Section 3.2)."""
        total = self.num_providers
        return self.dominant.support / total if total else 0.0

    def entropy(self) -> float:
        """Value entropy ``E(d)`` of Equation (1), in bits."""
        total = self.num_providers
        if total == 0:
            return 0.0
        ent = 0.0
        for cluster in self.clusters:
            p = cluster.support / total
            if p > 0:
                ent -= p * math.log2(p)
        return ent

    def deviation(self, kind: ValueKind) -> Optional[float]:
        """Value deviation ``D(d)`` of Equation (2).

        Relative to the dominant value for numeric kinds; absolute in minutes
        for TIME; ``None`` for STRING kinds or when undefined (dominant value
        is zero for a relative deviation).
        """
        if kind is ValueKind.STRING:
            return None
        try:
            v0 = float(self.dominant.representative)  # type: ignore[arg-type]
            values = [float(c.representative) for c in self.clusters]  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        if kind is ValueKind.TIME:
            sq = sum((v - v0) ** 2 for v in values)
            return math.sqrt(sq / len(values))
        if v0 == 0:
            return None
        sq = sum(((v - v0) / v0) ** 2 for v in values)
        return math.sqrt(sq / len(values))


def _dominant_exact_value(values: Sequence[Tuple[str, Value]]) -> Value:
    """The exact value with the most providers (ties -> smallest)."""
    counts: Dict[Value, int] = {}
    for _src, val in values:
        counts[val] = counts.get(val, 0) + 1
    # Sort by (-count, value-as-sort-key); mixed types sort by string repr.
    def sort_key(item: Tuple[Value, int]):
        value, count = item
        return (-count, str(value))

    return sorted(counts.items(), key=sort_key)[0][0]


def cluster_claims(
    provided: Dict[str, Claim],
    spec: AttributeSpec,
    tolerance: float,
) -> ItemClustering:
    """Bucket one item's claims into distinct values (Section 3.2).

    ``provided`` maps source id to :class:`Claim`.  Numeric and time values
    are bucketed on a grid of width ``tolerance`` centered on the dominant
    exact value ``v0``; string values cluster by exact equality.
    """
    pairs: List[Tuple[str, Value]] = [(s, c.value) for s, c in provided.items()]
    if not pairs:
        return ItemClustering(clusters=[])

    if spec.kind is ValueKind.STRING or tolerance <= 0:
        buckets: Dict[Value, Dict[str, Value]] = {}
        for src, val in pairs:
            buckets.setdefault(val, {})[src] = val
        clusters = [
            ValueCluster(representative=val, providers=members)
            for val, members in buckets.items()
        ]
    else:
        v0 = float(_dominant_exact_value(pairs))  # type: ignore[arg-type]
        numeric_buckets: Dict[int, Dict[str, Value]] = {}
        for src, val in pairs:
            idx = int(math.floor((float(val) - v0) / tolerance + 0.5))  # type: ignore[arg-type]
            numeric_buckets.setdefault(idx, {})[src] = val
        clusters = []
        for members in numeric_buckets.values():
            rep = _dominant_exact_value(list(members.items()))
            clusters.append(ValueCluster(representative=rep, providers=members))

    clusters.sort(key=lambda c: (-c.support, str(c.representative)))
    return ItemClustering(clusters=clusters)


def values_match(a: Value, b: Value, spec: AttributeSpec, tolerance: float) -> bool:
    """Tolerance-aware equality of two provided values."""
    return spec.matches(a, b, tolerance)
