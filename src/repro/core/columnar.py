"""Columnar claim storage and the vectorized compile kernels.

The dict-of-dicts layout of :class:`~repro.core.dataset.Dataset` is the right
shape for building a snapshot, but every downstream consumer — tolerances,
value clustering, fusion-problem compilation, copy detection — used to re-walk
those dicts claim by claim in Python.  This module freezes one snapshot into
flat numpy columns (:class:`ColumnarView`) and compiles everything derived
from them with array kernels:

* :func:`compute_tolerances` — Equation (3) per attribute via ``np.median``;
* :func:`compile_clusters` — the Section 3.2 bucketing of *every* item at
  once, producing the exact cluster/claim ordering of the per-item
  :func:`repro.core.tolerance.cluster_claims` walk;
* :func:`materialize_clusterings` — rehydrates the compiled arrays into
  :class:`~repro.core.tolerance.ItemClustering` objects for the profiling
  layers.

``compile_clusters`` accepts a boolean claim mask, which is what makes
zero-rebuild source subsetting possible: a source-prefix sweep (Figure 9)
filters the columns and re-runs the kernel instead of copying the dataset and
re-clustering it item by item.

Ordering contract (load-bearing for equivalence with the legacy paths):
claims are stored grouped by item in dataset insertion order and, within an
item, in claim insertion order.  Every kernel below breaks ties exactly the
way the dict-based code did — support descending, then ``str(value)``, then
first occurrence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.attributes import (
    TIME_TOLERANCE_MINUTES,
    AttributeSpec,
    AttributeTable,
    ValueKind,
)
from repro.core.records import Claim, DataItem, Value
from repro.core.tolerance import ItemClustering, ValueCluster


def _as_float(value: Value) -> float:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return math.nan


@dataclass(frozen=True)
class ColumnarView:
    """Flat, immutable arrays over one snapshot's claims.

    ``claim_item`` is nondecreasing: claims are grouped per item, items and
    claims both in dataset insertion order.  Exact provided values are
    interned into ``values`` and referenced by code, with their ``float``
    conversion (``NaN`` when not convertible) and the dense rank of their
    ``str()`` form precomputed for the clustering kernel's tie-breaks.
    """

    items: List[DataItem]
    sources: List[str]
    attr_names: List[str]
    attr_specs: List[AttributeSpec]
    item_attr: np.ndarray          # (n_items,) attribute code per item
    item_start: np.ndarray         # (n_items + 1,) claim segment offsets
    claim_item: np.ndarray         # (n_claims,) nondecreasing item codes
    claim_source: np.ndarray       # (n_claims,) source codes
    claim_value: np.ndarray        # (n_claims,) codes into ``values``
    claim_numeric: np.ndarray      # (n_claims,) float(value) or NaN
    claim_granularity: np.ndarray  # (n_claims,) 0.0 when exact
    values: List[Value]            # distinct exact values, by code
    value_numeric: np.ndarray      # (n_values,) float(value) or NaN
    value_str_rank: np.ndarray     # (n_values,) dense rank of str(value)

    @property
    def n_items(self) -> int:
        return len(self.items)

    @property
    def n_sources(self) -> int:
        return len(self.sources)

    @property
    def n_claims(self) -> int:
        return len(self.claim_item)

    @property
    def n_attrs(self) -> int:
        return len(self.attr_names)


def build_view(
    by_item: Dict[DataItem, Dict[str, Claim]],
    sources: Sequence[str],
    attributes: AttributeTable,
) -> ColumnarView:
    """Flatten a dataset's dict-of-dicts claim matrix into columns."""
    source_list = list(sources)
    source_code = {s: i for i, s in enumerate(source_list)}
    attr_names = attributes.names
    attr_specs = [attributes[name] for name in attr_names]
    attr_code = {name: i for i, name in enumerate(attr_names)}

    items: List[DataItem] = list(by_item.keys())
    item_attr = [attr_code[item.attribute] for item in items]
    counts = [len(claims) for claims in by_item.values()]
    source_ids: List[str] = []
    flat_claims: List[Claim] = []
    for claims in by_item.values():
        source_ids.extend(claims.keys())
        flat_claims.extend(claims.values())

    # Intern exact values: dict insertion order == first-occurrence order,
    # the same grouping the per-item bucket dicts produced.  Interning is by
    # ``==`` like those dicts, but global: values equal across Python types
    # (e.g. int 1 vs float 1.0) collapse to the snapshot-first object rather
    # than the item-first one.  Within the declared ``Value = float | str``
    # domain equal values have identical type and str(), so this is
    # unobservable.
    value_code: Dict[Value, int] = {}
    claim_value = [
        value_code.setdefault(claim.value, len(value_code))
        for claim in flat_claims
    ]
    values: List[Value] = list(value_code.keys())
    claim_granularity = [claim.granularity or 0.0 for claim in flat_claims]

    value_numeric = np.asarray([_as_float(v) for v in values], dtype=np.float64)
    strs = sorted(set(str(v) for v in values))
    str_rank = {s: i for i, s in enumerate(strs)}
    value_str_rank = np.asarray([str_rank[str(v)] for v in values], dtype=np.int64)

    counts_arr = np.asarray(counts, dtype=np.int64)
    claim_value_arr = np.asarray(claim_value, dtype=np.int64)
    return ColumnarView(
        items=items,
        sources=source_list,
        attr_names=attr_names,
        attr_specs=attr_specs,
        item_attr=np.asarray(item_attr, dtype=np.int64),
        item_start=np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts_arr))
        ),
        claim_item=np.repeat(np.arange(len(items), dtype=np.int64), counts_arr),
        claim_source=np.asarray(
            [source_code[s] for s in source_ids], dtype=np.int64
        ),
        claim_value=claim_value_arr,
        claim_numeric=value_numeric[claim_value_arr]
        if len(values)
        else np.zeros(0, dtype=np.float64),
        claim_granularity=np.asarray(claim_granularity, dtype=np.float64),
        values=values,
        value_numeric=value_numeric,
        value_str_rank=value_str_rank,
    )


def compute_tolerances(
    view: ColumnarView, claim_mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Per-attribute tolerance ``tau(A)`` (Equation 3), vectorized.

    Mirrors :func:`repro.core.tolerance.attribute_tolerance` over the whole
    snapshot: TIME attributes use the fixed 10-minute tolerance, STRING
    attributes get 0, numeric attributes ``alpha * median(|V(A)|)`` (0 when
    no convertible value exists).  ``claim_mask`` restricts the claim
    population — the source-subsetting hook.
    """
    claim_attr = view.item_attr[view.claim_item]
    numeric = view.claim_numeric
    if claim_mask is not None:
        claim_attr = claim_attr[claim_mask]
        numeric = numeric[claim_mask]
    tolerances = np.zeros(view.n_attrs, dtype=np.float64)
    for code, spec in enumerate(view.attr_specs):
        if spec.kind is ValueKind.TIME:
            tolerances[code] = TIME_TOLERANCE_MINUTES
        elif spec.kind.is_numeric:
            bucket = numeric[claim_attr == code]
            bucket = bucket[~np.isnan(bucket)]
            if bucket.size:
                tolerances[code] = spec.tolerance_factor * float(
                    np.median(np.abs(bucket))
                )
    return tolerances


@dataclass(frozen=True)
class CompiledClusters:
    """The Section 3.2 bucketing of every (surviving) item, as flat arrays.

    ``item_index`` maps local item positions back into ``view.items`` —
    items whose claims were all masked away are dropped.  Clusters are
    ordered per item by (support desc, str(representative), first
    occurrence); claims are grouped per cluster in claim insertion order —
    both exactly matching the legacy per-item walk.
    """

    item_index: np.ndarray       # (n_kept,) codes into view.items
    item_attr: np.ndarray        # (n_kept,) attribute code per kept item
    item_start: np.ndarray       # (n_kept + 1,) cluster segment offsets
    cluster_item: np.ndarray     # (n_clusters,) local item code per cluster
    cluster_value: np.ndarray    # (n_clusters,) representative value code
    cluster_support: np.ndarray  # (n_clusters,)
    claim_source: np.ndarray     # (n_claims,) view source codes, final order
    claim_cluster: np.ndarray    # (n_claims,)
    claim_value: np.ndarray      # (n_claims,) value codes, final order
    claim_granularity: np.ndarray  # (n_claims,)

    @property
    def n_clusters(self) -> int:
        return len(self.cluster_item)


def _segment_first(change: np.ndarray) -> np.ndarray:
    """Start offsets of the runs flagged by a boolean change array."""
    return np.flatnonzero(change)


def compile_clusters(
    view: ColumnarView,
    tolerances: np.ndarray,
    claim_mask: Optional[np.ndarray] = None,
) -> CompiledClusters:
    """Bucket every item's claims into value clusters, vectorized.

    Reproduces :func:`repro.core.tolerance.cluster_claims` for all items in
    one pass: exact-value grouping for STRING / zero-tolerance attributes,
    the ``floor((v - v0) / tau + 0.5)`` grid centered on the dominant exact
    value otherwise, with identical representative selection and ordering.
    """
    if claim_mask is None:
        pos = np.arange(view.n_claims, dtype=np.int64)
    else:
        pos = np.flatnonzero(claim_mask)
    n = len(pos)
    empty = np.zeros(0, dtype=np.int64)
    if n == 0:
        return CompiledClusters(
            item_index=empty,
            item_attr=empty,
            item_start=np.zeros(1, dtype=np.int64),
            cluster_item=empty,
            cluster_value=empty,
            cluster_support=empty,
            claim_source=empty,
            claim_cluster=empty,
            claim_value=empty,
            claim_granularity=np.zeros(0, dtype=np.float64),
        )

    c_item = view.claim_item[pos]
    c_src = view.claim_source[pos]
    c_val = view.claim_value[pos]
    c_num = view.claim_numeric[pos]
    c_gran = view.claim_granularity[pos]
    str_rank = view.value_str_rank

    # Surviving items; c_item is nondecreasing, so runs are segments.
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(c_item[1:], c_item[:-1], out=change[1:])
    seg_id = np.cumsum(change) - 1  # local item code per claim
    item_index = c_item[change]
    item_attr = view.item_attr[item_index]
    tol_item = tolerances[item_attr]
    kind_string = np.asarray(
        [spec.kind is ValueKind.STRING for spec in view.attr_specs], dtype=bool
    )
    bucketed_item = (~kind_string[item_attr]) & (tol_item > 0)

    # ---- dominant exact value per item: min (-count, str(value), first pos)
    gorder = np.lexsort((pos, c_val, seg_id))
    gi, gv = seg_id[gorder], c_val[gorder]
    gchange = np.empty(n, dtype=bool)
    gchange[0] = True
    gchange[1:] = (gi[1:] != gi[:-1]) | (gv[1:] != gv[:-1])
    gstart = _segment_first(gchange)
    g_item, g_val = gi[gstart], gv[gstart]
    g_count = np.diff(np.append(gstart, n))
    g_first = gorder[gstart]  # min masked-claim position in the group
    dorder = np.lexsort((g_first, str_rank[g_val], -g_count, g_item))
    ditem = g_item[dorder]
    dchange = np.empty(len(dorder), dtype=bool)
    dchange[0] = True
    np.not_equal(ditem[1:], ditem[:-1], out=dchange[1:])
    dom_val = g_val[dorder[_segment_first(dchange)]]  # per kept item, in order
    v0 = view.value_numeric[dom_val]

    # ---- bucket key per claim
    claim_bucketed = bucketed_item[seg_id]
    if np.any(claim_bucketed & np.isnan(c_num)):
        raise ValueError(
            "non-numeric value under a bucketed (numeric/time) attribute"
        )
    key = c_val.copy()
    if claim_bucketed.any():
        b = claim_bucketed
        key[b] = np.floor(
            (c_num[b] - v0[seg_id[b]]) / tol_item[seg_id[b]] + 0.5
        ).astype(np.int64)

    # ---- clusters = (item, bucket key) groups
    corder = np.lexsort((pos, key, seg_id))
    ci, ck = seg_id[corder], key[corder]
    cchange = np.empty(n, dtype=bool)
    cchange[0] = True
    cchange[1:] = (ci[1:] != ci[:-1]) | (ck[1:] != ck[:-1])
    cstart = _segment_first(cchange)
    cl_item = ci[cstart]
    cl_count = np.diff(np.append(cstart, n))
    cl_first = corder[cstart]
    n_clusters = len(cstart)
    raw_cluster = np.empty(n, dtype=np.int64)
    raw_cluster[corder] = np.cumsum(cchange) - 1

    # ---- representative per cluster: dominant exact value within it
    rorder = np.lexsort((pos, c_val, raw_cluster))
    ri, rv = raw_cluster[rorder], c_val[rorder]
    rchange = np.empty(n, dtype=bool)
    rchange[0] = True
    rchange[1:] = (ri[1:] != ri[:-1]) | (rv[1:] != rv[:-1])
    rstart = _segment_first(rchange)
    r_cluster, r_val = ri[rstart], rv[rstart]
    r_count = np.diff(np.append(rstart, n))
    r_first = rorder[rstart]
    sorder = np.lexsort((r_first, str_rank[r_val], -r_count, r_cluster))
    sc = r_cluster[sorder]
    schange = np.empty(len(sorder), dtype=bool)
    schange[0] = True
    np.not_equal(sc[1:], sc[:-1], out=schange[1:])
    cl_rep = r_val[sorder[_segment_first(schange)]]  # per raw cluster id

    # ---- order clusters per item: (support desc, str(rep), first occurrence)
    final_order = np.lexsort((cl_first, str_rank[cl_rep], -cl_count, cl_item))
    cluster_item = cl_item[final_order]
    cluster_value = cl_rep[final_order]
    cluster_support = cl_count[final_order]
    rank_of = np.empty(n_clusters, dtype=np.int64)
    rank_of[final_order] = np.arange(n_clusters, dtype=np.int64)
    claim_cluster = rank_of[raw_cluster]
    n_kept = len(item_index)
    item_start = np.searchsorted(
        cluster_item, np.arange(n_kept + 1, dtype=np.int64)
    )

    # ---- claims grouped per cluster, claim insertion order inside
    claim_order = np.lexsort((pos, claim_cluster))
    return CompiledClusters(
        item_index=item_index,
        item_attr=item_attr,
        item_start=item_start,
        cluster_item=cluster_item,
        cluster_value=cluster_value,
        cluster_support=cluster_support.astype(np.int64),
        claim_source=c_src[claim_order],
        claim_cluster=claim_cluster[claim_order],
        claim_value=c_val[claim_order],
        claim_granularity=c_gran[claim_order],
    )


def materialize_clusterings(
    view: ColumnarView, compiled: CompiledClusters
) -> Dict[DataItem, ItemClustering]:
    """Rehydrate compiled clusters into per-item ``ItemClustering`` objects."""
    claim_bounds = np.concatenate(
        ([0], np.cumsum(compiled.cluster_support))
    ).tolist()
    starts = compiled.item_start.tolist()
    item_codes = compiled.item_index.tolist()
    rep_codes = compiled.cluster_value.tolist()
    src_codes = compiled.claim_source.tolist()
    val_codes = compiled.claim_value.tolist()
    sources, values, items = view.sources, view.values, view.items

    clusterings: Dict[DataItem, ItemClustering] = {}
    for local, code in enumerate(item_codes):
        clusters = []
        for c in range(starts[local], starts[local + 1]):
            providers = {
                sources[src_codes[k]]: values[val_codes[k]]
                for k in range(claim_bounds[c], claim_bounds[c + 1])
            }
            clusters.append(
                ValueCluster(representative=values[rep_codes[c]], providers=providers)
            )
        clusterings[items[code]] = ItemClustering(clusters=clusters)
    return clusterings
