"""Figure 10 — fusion precision versus dominance factor.

Compares VOTE with the best advanced method per domain (ACCUFORMATATTR for
Stock, ACCUCOPY for Flight), bucketing precision by the item's dominance
factor.  The paper's point: the advanced methods win exactly on the
low-dominance items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.evaluation.metrics import evaluate, precision_by_dominance
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_series
from repro.fusion.registry import make_method
from repro.profiling.dominance import DOMINANCE_BUCKETS

BEST_METHOD = {"stock": "AccuFormatAttr", "flight": "AccuCopy"}

PAPER_REFERENCE = {
    "stock_best_method": "AccuFormatAttr",
    "flight_best_method": "AccuCopy",
    "flight_improvement_range": (0.4, 0.7),
}


@dataclass
class Figure10Result:
    buckets: List[float]
    curves: Dict[str, Dict[str, List[Optional[float]]]]
    overall: Dict[str, Dict[str, float]]


def run(
    ctx: ExperimentContext, best_method: Dict[str, str] = BEST_METHOD
) -> Figure10Result:
    curves: Dict[str, Dict[str, List[Optional[float]]]] = {}
    overall: Dict[str, Dict[str, float]] = {}
    for domain in ctx.domains:
        collection = ctx.collection(domain)
        snapshot, gold = collection.snapshot, collection.gold
        problem = ctx.problem(domain)
        domain_curves: Dict[str, List[Optional[float]]] = {}
        domain_overall: Dict[str, float] = {}
        for name in ("Vote", best_method[domain]):
            result = make_method(name).run(problem)
            by_bucket = precision_by_dominance(snapshot, gold, result)
            domain_curves[name] = [by_bucket[b] for b in DOMINANCE_BUCKETS]
            domain_overall[name] = evaluate(snapshot, gold, result).precision
        curves[domain] = domain_curves
        overall[domain] = domain_overall
    return Figure10Result(
        buckets=list(DOMINANCE_BUCKETS), curves=curves, overall=overall
    )


def render(result: Figure10Result) -> str:
    blocks = []
    for domain, series in result.curves.items():
        blocks.append(
            format_series(
                result.buckets,
                series,
                title=f"Figure 10 [{domain}]: precision vs dominance factor",
            )
        )
        blocks.append(
            "; ".join(
                f"{name} overall {value:.3f}"
                for name, value in result.overall[domain].items()
            )
        )
    return "\n\n".join(blocks)
