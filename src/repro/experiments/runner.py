"""Experiment runner: regenerate any table or figure from the paper.

Usage (CLI)::

    python -m repro.experiments <experiment-id> [--scale tiny|small|default|paper]
    python -m repro.experiments all --scale small

Experiment ids are the paper's artifact names: ``table1`` ... ``table9``,
``figure1`` ... ``figure12``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from repro.errors import ConfigError
from repro.experiments import (
    figure1,
    figure2_3,
    figure4,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.experiments.context import SCALES, get_context

#: Experiment id -> (run, render).
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "table1": (table1.run, table1.render),
    "table3": (table3.run, table3.render),
    "table4": (table4.run, table4.render),
    "table5": (table5.run, table5.render),
    "table6": (table6.run, table6.render),
    "table7": (table7.run, table7.render),
    "table8": (table8.run, table8.render),
    "table9": (table9.run, table9.render),
    "figure1": (figure1.run, figure1.render),
    "figure2_3": (figure2_3.run, figure2_3.render),
    "figure4": (figure4.run, figure4.render),
    "figure6": (figure6.run, figure6.render),
    "figure7": (figure7.run, figure7.render),
    "figure8": (figure8.run, figure8.render),
    "figure9": (figure9.run, figure9.render),
    "figure10": (figure10.run, figure10.render),
    "figure11": (figure11.run, figure11.render),
    "figure12": (figure12.run, figure12.render),
}

#: Aliases so ``figure2`` and ``figure3`` both resolve.
ALIASES = {"figure2": "figure2_3", "figure3": "figure2_3", "table2": "table1"}


def run_experiment(
    experiment_id: str,
    scale: str = "small",
    context=None,
    workers: int = 0,
) -> str:
    """Run one experiment and return its rendered report.

    Pass ``context`` to share one generated dataset + compiled problem (and
    one worker pool) across several experiments — ``main('all')`` does.
    """
    key = ALIASES.get(experiment_id, experiment_id)
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigError(f"unknown experiment {experiment_id!r}; known: {known}")
    owned = context is None
    if context is None:
        context = get_context(scale)
    prior_workers = context.workers
    if workers:
        context.workers = workers
    run, render = EXPERIMENTS[key]
    try:
        return render(run(context))
    finally:
        if owned and workers:
            # The context is the process-wide cache: don't let a one-off
            # workers override (or its worker pool) outlive this call.
            context.workers = prior_workers
            context.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (table1..table9, figure1..figure12) or 'all'",
    )
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the parallelizable experiments "
             "(method comparisons, the Figure 9 sweep, Table 9 streaming)",
    )
    args = parser.parse_args(argv)

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    context = get_context(args.scale)
    prior_workers = context.workers
    context.workers = args.workers
    try:
        if args.experiment == "all":
            # One dataset generation + one compiled problem per domain,
            # shared by every experiment below (and exported to the shared
            # worker pool at most once).
            started = time.perf_counter()
            context.prepare()
            elapsed = time.perf_counter() - started
            print(f"== context (scale={args.scale}, prepared in {elapsed:.1f}s) ==")
            print()
        for experiment_id in ids:
            started = time.perf_counter()
            report = run_experiment(experiment_id, context=context)
            elapsed = time.perf_counter() - started
            print(f"== {experiment_id} (scale={args.scale}, {elapsed:.1f}s) ==")
            print(report)
            print()
    finally:
        context.workers = prior_workers
        context.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
