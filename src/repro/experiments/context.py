"""Shared experiment context: generated collections at a chosen scale.

The paper's experiments all run over the same two data collections; this
module generates them once per scale and caches the derived fusion problems
so the per-table experiment modules stay cheap.

Scales
------
``tiny``
    A few dozen objects, 3 days — used by the unit tests.
``small``
    ~100 objects, ~8 days — quick local runs of every experiment.
``default``
    Paper-shaped: full source populations, 200 stocks / 300 flights over the
    full observation period.  This is the scale EXPERIMENTS.md reports.
``paper``
    The paper's full object counts (1000 stocks / 1200 flights).  Slow;
    numbers match ``default`` closely because every statistic is a ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.datagen.flight import FlightConfig, generate_flight_collection
from repro.datagen.generator import DomainCollection
from repro.datagen.stock import StockConfig, generate_stock_collection
from repro.errors import ConfigError
from repro.fusion.base import FusionProblem

SCALES = ("tiny", "small", "default", "paper")


def _stock_config(scale: str) -> StockConfig:
    if scale == "tiny":
        return StockConfig.tiny()
    if scale == "small":
        return StockConfig.small()
    if scale == "default":
        return StockConfig()
    if scale == "paper":
        return StockConfig.paper_scale()
    raise ConfigError(f"unknown scale {scale!r}; expected one of {SCALES}")


def _flight_config(scale: str) -> FlightConfig:
    if scale == "tiny":
        return FlightConfig.tiny()
    if scale == "small":
        return FlightConfig.small()
    if scale == "default":
        return FlightConfig()
    if scale == "paper":
        return FlightConfig.paper_scale()
    raise ConfigError(f"unknown scale {scale!r}; expected one of {SCALES}")


@dataclass
class ExperimentContext:
    """Lazily-generated collections plus cached fusion problems."""

    scale: str = "small"
    _stock: Optional[DomainCollection] = field(default=None, repr=False)
    _flight: Optional[DomainCollection] = field(default=None, repr=False)
    _problems: Dict[str, FusionProblem] = field(default_factory=dict, repr=False)

    @property
    def stock(self) -> DomainCollection:
        if self._stock is None:
            self._stock = generate_stock_collection(_stock_config(self.scale))
        return self._stock

    @property
    def flight(self) -> DomainCollection:
        if self._flight is None:
            self._flight = generate_flight_collection(_flight_config(self.scale))
        return self._flight

    def collection(self, domain: str) -> DomainCollection:
        if domain == "stock":
            return self.stock
        if domain == "flight":
            return self.flight
        raise ConfigError(f"unknown domain {domain!r}")

    def problem(self, domain: str) -> FusionProblem:
        """The report-day snapshot compiled for fusion (cached)."""
        if domain not in self._problems:
            collection = self.collection(domain)
            self._problems[domain] = FusionProblem(collection.snapshot)
        return self._problems[domain]

    @property
    def domains(self) -> tuple:
        return ("stock", "flight")


_CACHE: Dict[str, ExperimentContext] = {}


def get_context(scale: str = "small") -> ExperimentContext:
    """A process-wide shared context per scale (collections are immutable)."""
    if scale not in _CACHE:
        _CACHE[scale] = ExperimentContext(scale=scale)
    return _CACHE[scale]
