"""Shared experiment context: generated collections at a chosen scale.

The paper's experiments all run over the same two data collections; this
module generates them once per scale and caches the derived fusion problems
so the per-table experiment modules stay cheap.

Scales
------
``tiny``
    A few dozen objects, 3 days — used by the unit tests.
``small``
    ~100 objects, ~8 days — quick local runs of every experiment.
``default``
    Paper-shaped: full source populations, 200 stocks / 300 flights over the
    full observation period.  This is the scale EXPERIMENTS.md reports.
``paper``
    The paper's full object counts (1000 stocks / 1200 flights).  Slow;
    numbers match ``default`` closely because every statistic is a ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.datagen.flight import FlightConfig, generate_flight_collection
from repro.datagen.generator import DomainCollection
from repro.datagen.stock import StockConfig, generate_stock_collection
from repro.errors import ConfigError
from repro.fusion.base import FusionProblem

SCALES = ("tiny", "small", "default", "paper")


def _stock_config(scale: str) -> StockConfig:
    if scale == "tiny":
        return StockConfig.tiny()
    if scale == "small":
        return StockConfig.small()
    if scale == "default":
        return StockConfig()
    if scale == "paper":
        return StockConfig.paper_scale()
    raise ConfigError(f"unknown scale {scale!r}; expected one of {SCALES}")


def _flight_config(scale: str) -> FlightConfig:
    if scale == "tiny":
        return FlightConfig.tiny()
    if scale == "small":
        return FlightConfig.small()
    if scale == "default":
        return FlightConfig()
    if scale == "paper":
        return FlightConfig.paper_scale()
    raise ConfigError(f"unknown scale {scale!r}; expected one of {SCALES}")


@dataclass
class ExperimentContext:
    """Lazily-generated collections plus cached fusion problems.

    ``workers`` is the parallelism every experiment in this context may
    use; :meth:`scheduler` is the shared
    :class:`~repro.parallel.SolveScheduler` behind it — one worker pool,
    and one shared-memory export per compiled problem, reused by every
    experiment that runs in the context (``None`` while ``workers <= 1``).
    """

    scale: str = "small"
    workers: int = 1
    _stock: Optional[DomainCollection] = field(default=None, repr=False)
    _flight: Optional[DomainCollection] = field(default=None, repr=False)
    _problems: Dict[str, FusionProblem] = field(default_factory=dict, repr=False)
    _scheduler: Optional[object] = field(default=None, repr=False)

    @property
    def stock(self) -> DomainCollection:
        if self._stock is None:
            self._stock = generate_stock_collection(_stock_config(self.scale))
        return self._stock

    @property
    def flight(self) -> DomainCollection:
        if self._flight is None:
            self._flight = generate_flight_collection(_flight_config(self.scale))
        return self._flight

    def collection(self, domain: str) -> DomainCollection:
        if domain == "stock":
            return self.stock
        if domain == "flight":
            return self.flight
        raise ConfigError(f"unknown domain {domain!r}")

    def problem(self, domain: str) -> FusionProblem:
        """The report-day snapshot compiled for fusion (cached)."""
        if domain not in self._problems:
            collection = self.collection(domain)
            self._problems[domain] = FusionProblem(collection.snapshot)
        return self._problems[domain]

    @property
    def domains(self) -> tuple:
        return ("stock", "flight")

    # ------------------------------------------------------------ parallelism
    def scheduler(self):
        """The context-wide solve scheduler, or ``None`` when serial.

        On platforms without usable shared memory the scheduler object is
        still returned — it executes the same jobs inline — so callers can
        thread ``scheduler=ctx.scheduler()`` unconditionally.
        """
        if self.workers <= 1:
            return None
        if self._scheduler is None:
            from repro.parallel import SolveScheduler

            self._scheduler = SolveScheduler(workers=self.workers)
        return self._scheduler

    def prepare(self) -> None:
        """Generate both collections and compile their report problems now.

        ``runner all`` calls this once up front so every experiment that
        follows reuses the same datasets and compiled problems instead of
        paying the generation/compile on its first lazy access.
        """
        for domain in self.domains:
            self.collection(domain)
            self.problem(domain)

    def close(self) -> None:
        """Shut down the shared scheduler (idempotent)."""
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None


_CACHE: Dict[str, ExperimentContext] = {}


def get_context(scale: str = "small") -> ExperimentContext:
    """A process-wide shared context per scale (collections are immutable)."""
    if scale not in _CACHE:
        _CACHE[scale] = ExperimentContext(scale=scale)
    return _CACHE[scale]
