"""One module per table/figure of the paper, plus the CLI runner."""

from repro.experiments import (  # noqa: F401
    figure1,
    figure2_3,
    figure4,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.experiments.context import ExperimentContext, get_context

__all__ = [
    "ExperimentContext",
    "get_context",
    "figure1", "figure2_3", "figure4", "figure6", "figure7", "figure8",
    "figure9", "figure10", "figure11", "figure12",
    "table1", "table3", "table4", "table5", "table6", "table7", "table8",
    "table9",
]
