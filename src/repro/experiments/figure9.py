"""Figure 9 — fusion recall as sources are added.

Sources are ordered by recall (coverage x accuracy) and fused in growing
prefixes.  Paper headline: recall peaks after a few high-recall sources
(5 for Stock, 9 for Flight) and then declines as low-quality sources and
copiers join; copy-aware and popularity-aware methods flatten out instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.evaluation.ordering import (
    RecallCurve,
    recall_as_sources_added,
    sources_by_recall,
)
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_series

#: One method per category, as plotted in the paper.
STOCK_METHODS = ("Vote", "Hub", "Cosine", "3-Estimates", "AccuFormatAttr", "AccuCopy")
FLIGHT_METHODS = ("Vote", "PooledInvest", "Cosine", "2-Estimates", "PopAccu", "AccuCopy")

PAPER_REFERENCE = {
    "stock_peak_sources": 5,
    "flight_peak_sources": 9,
    "stock_single_source_best_recall": 0.93,
    "flight_single_source_best_recall": 0.91,
}


@dataclass
class Figure9Result:
    prefix_sizes: Dict[str, List[int]]
    curves: Dict[str, Dict[str, RecallCurve]]
    ordering: Dict[str, List[str]]


def run(
    ctx: ExperimentContext,
    stock_methods: Sequence[str] = STOCK_METHODS,
    flight_methods: Sequence[str] = FLIGHT_METHODS,
    prefix_step: int = 4,
) -> Figure9Result:
    curves: Dict[str, Dict[str, RecallCurve]] = {}
    orderings: Dict[str, List[str]] = {}
    sizes: Dict[str, List[int]] = {}
    for domain, methods in (("stock", stock_methods), ("flight", flight_methods)):
        collection = ctx.collection(domain)
        snapshot, gold = collection.snapshot, collection.gold
        order = sources_by_recall(snapshot, gold)
        n = len(order)
        prefix_sizes = sorted(
            set(
                list(range(1, min(12, n) + 1))
                + list(range(12, n + 1, prefix_step))
                + [n]
            )
        )
        curves[domain] = recall_as_sources_added(
            snapshot,
            gold,
            methods,
            ordering=order,
            prefix_sizes=prefix_sizes,
            problem=ctx.problem(domain),  # compile once, slice per prefix
            workers=ctx.workers,
            scheduler=ctx.scheduler(),  # prefixes fan out across the pool
        )
        orderings[domain] = order
        sizes[domain] = prefix_sizes
    return Figure9Result(prefix_sizes=sizes, curves=curves, ordering=orderings)


def render(result: Figure9Result) -> str:
    blocks = []
    for domain, curves in result.curves.items():
        series = {name: curve.recalls for name, curve in curves.items()}
        blocks.append(
            format_series(
                result.prefix_sizes[domain],
                series,
                title=f"Figure 9 [{domain}]: recall vs number of sources",
            )
        )
        peaks = ", ".join(
            f"{name} peaks at {curve.peak} sources ({curve.peak_recall:.3f},"
            f" final {curve.final:.3f})"
            for name, curve in curves.items()
        )
        blocks.append(peaks)
    return "\n\n".join(blocks)
