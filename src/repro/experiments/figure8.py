"""Figure 8 — source accuracy and its stability over time.

Three panels: (a) distribution of source accuracy on the report snapshot,
(b) distribution of per-source accuracy deviation over the observation
period, (c) precision of dominant values day by day.  Flight accuracy
statistics exclude the airline sites (they are the gold standard).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_series, format_table
from repro.profiling.accuracy import (
    accuracy_over_time,
    accuracy_profile,
    dominant_precision_over_time,
)

PAPER_REFERENCE = {
    "stock_mean_accuracy": 0.86,
    "flight_mean_accuracy": 0.80,
    "stock_mean_deviation": 0.06,
    "flight_mean_deviation": 0.05,
    "stock_steady_share": 0.59,
    "flight_steady_share": 0.60,
}


@dataclass
class Figure8Result:
    accuracy_histogram: Dict[str, Dict[float, float]]
    mean_accuracy: Dict[str, float]
    above_09: Dict[str, float]
    below_07: Dict[str, float]
    deviation_histogram: Dict[str, Dict[str, float]]
    steady_share: Dict[str, float]
    dominant_over_time: Dict[str, Dict[str, float]]


def run(ctx: ExperimentContext) -> Figure8Result:
    acc_hist: Dict[str, Dict[float, float]] = {}
    mean_acc: Dict[str, float] = {}
    above: Dict[str, float] = {}
    below: Dict[str, float] = {}
    dev_hist: Dict[str, Dict[str, float]] = {}
    steady: Dict[str, float] = {}
    dominant: Dict[str, Dict[str, float]] = {}
    for domain in ctx.domains:
        collection = ctx.collection(domain)
        source_ids = (
            collection.non_gold_source_ids() if domain == "flight" else None
        )
        profile = accuracy_profile(collection.snapshot, collection.gold, source_ids)
        acc_hist[domain] = profile.histogram()
        mean_acc[domain] = profile.mean_accuracy
        above[domain] = profile.fraction_above(0.9)
        below[domain] = profile.fraction_below(0.7)
        over_time = accuracy_over_time(
            collection.series, collection.gold_by_day, source_ids
        )
        dev_hist[domain] = over_time.deviation_histogram()
        steady[domain] = over_time.fraction_steady()
        dominant[domain] = dominant_precision_over_time(
            collection.series, collection.gold_by_day
        )
    return Figure8Result(
        accuracy_histogram=acc_hist,
        mean_accuracy=mean_acc,
        above_09=above,
        below_07=below,
        deviation_histogram=dev_hist,
        steady_share=steady,
        dominant_over_time=dominant,
    )


def render(result: Figure8Result) -> str:
    domains = list(result.accuracy_histogram.keys())
    buckets = sorted(
        {b for hist in result.accuracy_histogram.values() for b in hist}
    )
    panel_a = format_table(
        ["accuracy <="] + domains,
        [
            [b] + [result.accuracy_histogram[d].get(b, 0.0) for d in domains]
            for b in buckets
        ],
        title="Figure 8a: distribution of source accuracy",
    )
    dev_labels = list(next(iter(result.deviation_histogram.values())).keys())
    panel_b = format_table(
        ["deviation"] + domains,
        [
            [label] + [result.deviation_histogram[d].get(label, 0.0) for d in domains]
            for label in dev_labels
        ],
        title="Figure 8b: accuracy deviation over time",
    )
    days = sorted({day for series in result.dominant_over_time.values() for day in series})
    panel_c = format_series(
        days,
        {d: [result.dominant_over_time[d].get(day) for day in days] for d in domains},
        title="Figure 8c: precision of dominant values over time",
    )
    summary = "\n".join(
        f"{d}: mean accuracy {result.mean_accuracy[d]:.2f}, "
        f"{100 * result.above_09[d]:.0f}% sources above .9, "
        f"{100 * result.below_07[d]:.0f}% below .7, "
        f"{100 * result.steady_share[d]:.0f}% steady (dev < .05)"
        for d in domains
    )
    return "\n\n".join([panel_a, panel_b, panel_c, summary])
