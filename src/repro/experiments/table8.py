"""Table 8 — pairwise comparison of fusion methods.

For each (basic, advanced) pair: the number of the basic method's errors the
advanced one fixes, the number of new errors it introduces, and the net
precision change, per domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.evaluation.compare import TABLE8_PAIRS, MethodComparison, run_comparisons
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table

#: Paper Table 8: (fixed, new, delta-precision) per pair per domain.
PAPER_REFERENCE = {
    "stock": {
        ("Hub", "AvgLog"): (3, 25, -0.008),
        ("Invest", "PooledInvest"): (376, 121, 0.09),
        ("2-Estimates", "3-Estimates"): (6, 2, 0.002),
        ("TruthFinder", "AccuSim"): (37, 32, 0.002),
        ("AccuPr", "AccuSim"): (70, 31, 0.014),
        ("AccuPr", "PopAccu"): (7, 26, -0.007),
        ("AccuSim", "AccuSimAttr"): (47, 3, 0.016),
        ("AccuSimAttr", "AccuFormatAttr"): (7, 5, 0.001),
        ("AccuFormatAttr", "AccuCopy"): (33, 136, -0.038),
    },
    "flight": {
        ("Hub", "AvgLog"): (2, 12, -0.018),
        ("Invest", "PooledInvest"): (101, 10, 0.167),
        ("2-Estimates", "3-Estimates"): (70, 95, -0.046),
        ("TruthFinder", "AccuSim"): (29, 1, 0.051),
        ("AccuPr", "AccuSim"): (1, 14, -0.024),
        ("AccuPr", "PopAccu"): (46, 15, 0.057),
        ("AccuSim", "AccuSimAttr"): (5, 11, -0.011),
        ("AccuSimAttr", "AccuFormatAttr"): (0, 0, 0.0),
        ("AccuFormatAttr", "AccuCopy"): (70, 10, 0.11),
    },
}


@dataclass
class Table8Result:
    comparisons: Dict[str, List[MethodComparison]]


def run(
    ctx: ExperimentContext,
    pairs: Sequence[Tuple[str, str]] = TABLE8_PAIRS,
) -> Table8Result:
    comparisons: Dict[str, List[MethodComparison]] = {}
    for domain in ctx.domains:
        collection = ctx.collection(domain)
        comparisons[domain] = run_comparisons(
            collection.snapshot,
            collection.gold,
            problem=ctx.problem(domain),
            pairs=pairs,
            workers=ctx.workers,
            scheduler=ctx.scheduler(),
        )
    return Table8Result(comparisons=comparisons)


def render(result: Table8Result) -> str:
    blocks = []
    for domain, rows in result.comparisons.items():
        table_rows = []
        for row in rows:
            paper = PAPER_REFERENCE.get(domain, {}).get((row.basic, row.advanced))
            table_rows.append(
                (
                    row.basic,
                    row.advanced,
                    row.fixed_errors,
                    row.new_errors,
                    f"{row.precision_delta:+.3f}",
                    str(paper) if paper else "-",
                )
            )
        blocks.append(
            format_table(
                ["Basic", "Advanced", "#Fixed", "#New", "dPrec", "Paper (fixed, new, d)"],
                table_rows,
                title=f"Table 8 [{domain}]",
            )
        )
    return "\n\n".join(blocks)
