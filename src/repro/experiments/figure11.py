"""Figure 11 — error analysis of the best fusion method.

Classifies a sample of the best method's errors per domain into the paper's
seven causes (finer granularity, imprecise trustworthiness, missing copying
knowledge, similar false values, false values from accurate sources,
dominant false values, no dominant value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.evaluation.errors import ERROR_CATEGORIES, ErrorAnalysis, analyze_errors
from repro.experiments.context import ExperimentContext
from repro.experiments.figure10 import BEST_METHOD
from repro.experiments.report import format_table
from repro.fusion.copy_aware import AccuCopy
from repro.fusion.registry import make_method
from repro.fusion.trust import sample_trust, sampled_accuracy

PAPER_REFERENCE = {
    "stock": {
        "Selecting finer-granularity value": 0.20,
        "Imprecise trustworthiness": 0.35,
        "Not considering correct copying": 0.10,
        'Similar "false" values are provided': 0.05,
        '"False" value provided by high-accuracy sources': 0.05,
        '"False" value dominant': 0.15,
        "No one value dominant": 0.10,
    },
    "flight": {
        "Imprecise trustworthiness": 0.50,
        "Not considering correct copying": 0.10,
        'Similar "false" values are provided': 0.05,
        '"False" value dominant': 0.35,
    },
}


@dataclass
class Figure11Result:
    analyses: Dict[str, ErrorAnalysis]


def run(
    ctx: ExperimentContext, best_method: Dict[str, str] = BEST_METHOD
) -> Figure11Result:
    analyses: Dict[str, ErrorAnalysis] = {}
    for domain in ctx.domains:
        collection = ctx.collection(domain)
        snapshot, gold = collection.snapshot, collection.gold
        problem = ctx.problem(domain)
        name = best_method[domain]
        result = make_method(name).run(problem)
        sample = sample_trust(name, snapshot, gold) or {}
        with_trust = make_method(name).run(
            problem, trust_seed=sample, freeze_trust=True
        )
        with_copying = AccuCopy(known_groups=collection.true_copy_groups()).run(
            problem, trust_seed=sample, freeze_trust=True
        )
        analyses[domain] = analyze_errors(
            snapshot,
            gold,
            result,
            result_with_trust=with_trust,
            result_with_copying=with_copying,
            sampled_accuracy=sampled_accuracy(snapshot, gold),
        )
    return Figure11Result(analyses=analyses)


def render(result: Figure11Result) -> str:
    rows = []
    for domain, analysis in result.analyses.items():
        shares = analysis.shares()
        for category in ERROR_CATEGORIES:
            paper = PAPER_REFERENCE.get(domain, {}).get(category)
            rows.append(
                (domain, analysis.method, category, shares.get(category, 0.0), paper)
            )
    return format_table(
        ["Domain", "Method", "Error cause", "Share", "Paper"],
        rows,
        title="Figure 11: error analysis of the best fusion method",
    )
