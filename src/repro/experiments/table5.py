"""Table 5 — potential copying between sources.

Per copying group: size, schema/object/value commonality, and average
accuracy, plus the effect of removing copiers on the precision of dominant
values (Section 3.4's .908 -> .923 for Stock and .864 -> .927 for Flight).
Groups come from the simulator's ground truth (as in the paper, where they
were identified by claimed partnerships and embedded interfaces); the
detector-based experiment lives in the copy-detection ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.evaluation.metrics import evaluate
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.fusion.base import FusionProblem
from repro.fusion.vote import Vote
from repro.profiling.copying_stats import CopyGroupStats, all_copy_group_stats

PAPER_REFERENCE = {
    "stock_groups": [(11, 0.92), (2, 0.75)],
    "flight_groups": [(5, 0.71), (4, 0.53), (3, 0.92), (2, 0.93), (2, 0.61)],
    "stock_vote_gain": (0.908, 0.923),
    "flight_vote_gain": (0.864, 0.927),
}


@dataclass
class Table5Result:
    groups: Dict[str, List[CopyGroupStats]]
    vote_with_copiers: Dict[str, float]
    vote_without_copiers: Dict[str, float]


def run(ctx: ExperimentContext) -> Table5Result:
    groups: Dict[str, List[CopyGroupStats]] = {}
    with_copiers: Dict[str, float] = {}
    without_copiers: Dict[str, float] = {}
    for domain in ctx.domains:
        collection = ctx.collection(domain)
        snapshot, gold = collection.snapshot, collection.gold
        groups[domain] = all_copy_group_stats(
            snapshot, collection.true_copy_groups(), gold
        )
        vote = Vote()
        with_copiers[domain] = evaluate(
            snapshot, gold, vote.run(ctx.problem(domain))
        ).precision
        reduced = snapshot.without_sources(collection.copier_ids())
        without_copiers[domain] = evaluate(
            reduced, gold, vote.run(FusionProblem(reduced))
        ).precision
    return Table5Result(
        groups=groups,
        vote_with_copiers=with_copiers,
        vote_without_copiers=without_copiers,
    )


def render(result: Table5Result) -> str:
    rows = []
    for domain, groups in result.groups.items():
        for group in groups:
            rows.append(
                (
                    domain,
                    group.size,
                    group.schema_similarity,
                    group.object_similarity,
                    group.value_similarity,
                    group.average_accuracy,
                )
            )
    table = format_table(
        ["Domain", "Size", "Schema sim", "Object sim", "Value sim", "Avg accu"],
        rows,
        title="Table 5: potential copying between sources",
    )
    gains = "\n".join(
        f"{domain}: dominant-value precision {result.vote_with_copiers[domain]:.3f}"
        f" -> {result.vote_without_copiers[domain]:.3f} after removing copiers"
        for domain in result.vote_with_copiers
    )
    return f"{table}\n{gains}"
