"""Figures 2 and 3 — object and data-item redundancy.

Complementary CDFs of the fraction of sources providing each object (Fig. 2)
and each data item (Fig. 3).  Paper headline: mean item redundancy ~.66 for
Stock and ~.32 for Flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_series
from repro.profiling.redundancy import (
    REDUNDANCY_THRESHOLDS,
    redundancy_profile,
)

PAPER_REFERENCE = {
    "stock_mean_item_redundancy": 0.66,
    "flight_mean_item_redundancy": 0.32,
}


@dataclass
class Figure23Result:
    thresholds: List[float]
    object_ccdf: Dict[str, List[float]]
    item_ccdf: Dict[str, List[float]]
    mean_object: Dict[str, float]
    mean_item: Dict[str, float]


def run(ctx: ExperimentContext) -> Figure23Result:
    object_ccdf: Dict[str, List[float]] = {}
    item_ccdf: Dict[str, List[float]] = {}
    mean_object: Dict[str, float] = {}
    mean_item: Dict[str, float] = {}
    for domain in ctx.domains:
        profile = redundancy_profile(ctx.collection(domain).snapshot)
        object_ccdf[domain] = profile.object_ccdf()
        item_ccdf[domain] = profile.item_ccdf()
        mean_object[domain] = profile.mean_object_redundancy
        mean_item[domain] = profile.mean_item_redundancy
    return Figure23Result(
        thresholds=list(REDUNDANCY_THRESHOLDS),
        object_ccdf=object_ccdf,
        item_ccdf=item_ccdf,
        mean_object=mean_object,
        mean_item=mean_item,
    )


def render(result: Figure23Result) -> str:
    fig2 = format_series(
        result.thresholds,
        result.object_ccdf,
        title="Figure 2: fraction of objects with redundancy above x",
    )
    fig3 = format_series(
        result.thresholds,
        result.item_ccdf,
        title="Figure 3: fraction of data items with redundancy above x",
    )
    means = "\n".join(
        f"{domain}: mean object redundancy {result.mean_object[domain]:.2f}, "
        f"mean item redundancy {result.mean_item[domain]:.2f}"
        for domain in result.mean_object
    )
    return f"{fig2}\n\n{fig3}\n{means}"
