"""Figure 1 — attribute coverage.

Percentage of global attributes provided by more than 5/10/20/30/40/50
sources, per domain.  The paper observes a Zipfian distribution: few popular
attributes, a long sparse tail (over 86% of Stock attributes are provided by
fewer than 25% of the sources).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_series
from repro.profiling.coverage import (
    COVERAGE_THRESHOLDS,
    attribute_coverage,
)

#: Paper: Stock ~13.7% of attrs covered by >= 1/3 of sources; 86% by < 25%.
PAPER_REFERENCE = {
    "stock_below_quarter": 0.86,
    "flight_above_half": 0.40,
}


@dataclass
class Figure1Result:
    thresholds: List[int]
    series: Dict[str, List[float]]
    below_quarter: Dict[str, float]


def run(ctx: ExperimentContext) -> Figure1Result:
    series: Dict[str, List[float]] = {}
    below: Dict[str, float] = {}
    for domain in ctx.domains:
        profile = attribute_coverage(ctx.collection(domain).profiles)
        series[domain] = profile.series()
        below[domain] = profile.fraction_below_quarter()
    return Figure1Result(
        thresholds=list(COVERAGE_THRESHOLDS), series=series, below_quarter=below
    )


def render(result: Figure1Result) -> str:
    body = format_series(
        [f"> {t}" for t in result.thresholds],
        result.series,
        title="Figure 1: fraction of global attributes vs. provider count",
    )
    tail = "\n".join(
        f"{domain}: {100 * share:.0f}% of attributes provided by < 25% of sources"
        for domain, share in result.below_quarter.items()
    )
    return f"{body}\n{tail}"
