"""Figure 7 — dominant values.

Distribution of dominance factors and precision of the dominant value per
dominance bucket.  Paper headline: Stock dominants with factor > .5 are 98%
correct but precision collapses as the factor drops; Flight shows lower
precision even at mid factors because copied wrong values become dominant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_series
from repro.profiling.dominance import (
    DOMINANCE_BUCKETS,
    dominance_profile,
    top_k_value_precision,
)

PAPER_REFERENCE = {
    "stock_factor_over_half": 0.73,
    "stock_precision_over_half": 0.98,
    "flight_factor_over_half": 0.82,
    "flight_precision_over_half": 0.88,
    "stock_overall_dominant_precision": 0.908,
    "flight_overall_dominant_precision": 0.864,
}


@dataclass
class Figure7Result:
    buckets: List[float]
    distribution: Dict[str, List[float]]
    precision: Dict[str, List[Optional[float]]]
    overall_precision: Dict[str, float]
    over_half_share: Dict[str, float]
    low_dominance_topk: Dict[str, List[float]]


def run(ctx: ExperimentContext) -> Figure7Result:
    distribution: Dict[str, List[float]] = {}
    precision: Dict[str, List[Optional[float]]] = {}
    overall: Dict[str, float] = {}
    over_half: Dict[str, float] = {}
    topk: Dict[str, List[float]] = {}
    for domain in ctx.domains:
        collection = ctx.collection(domain)
        snapshot, gold = collection.snapshot, collection.gold
        profile = dominance_profile(snapshot, gold)
        dist = profile.distribution()
        curve = profile.precision_curve()
        distribution[domain] = [dist[b] for b in DOMINANCE_BUCKETS]
        precision[domain] = [curve[b] for b in DOMINANCE_BUCKETS]
        overall[domain] = profile.overall_precision()
        over_half[domain] = profile.fraction_with_factor_at_least(0.5)
        topk[domain] = [
            top_k_value_precision(snapshot, gold, k, max_factor=0.3)[0]
            for k in (1, 2, 3)
        ]
    return Figure7Result(
        buckets=list(DOMINANCE_BUCKETS),
        distribution=distribution,
        precision=precision,
        overall_precision=overall,
        over_half_share=over_half,
        low_dominance_topk=topk,
    )


def render(result: Figure7Result) -> str:
    left = format_series(
        result.buckets,
        result.distribution,
        title="Figure 7a: distribution of dominance factors",
    )
    right = format_series(
        result.buckets,
        result.precision,
        title="Figure 7b: precision of dominant values by dominance factor",
    )
    summary_lines = []
    for domain in result.overall_precision:
        k1, k2, k3 = result.low_dominance_topk[domain]
        summary_lines.append(
            f"{domain}: overall dominant precision "
            f"{result.overall_precision[domain]:.3f}; "
            f"{100 * result.over_half_share[domain]:.0f}% items with factor >= .5; "
            f"low-dominance top-1/2/3 precision {k1:.2f}/{k2:.2f}/{k3:.2f}"
        )
    return "\n\n".join([left, right, "\n".join(summary_lines)])
