"""Table 4 — accuracy and coverage of authoritative sources.

Per domain, the accuracy and gold-item coverage of the well-known sources
(financial aggregators for Stock; Orbitz/Travelocity plus the airport
average for Flight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.records import SourceCategory
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.profiling.accuracy import accuracy_profile

PAPER_REFERENCE = {
    "Google Finance": (0.94, 0.82),
    "Yahoo! Finance": (0.93, 0.81),
    "NASDAQ": (0.92, 0.84),
    "MSN Money": (0.91, 0.89),
    "Bloomberg": (0.83, 0.81),
    "Orbitz": (0.98, 0.87),
    "Travelocity": (0.95, 0.71),
    "Airport average": (0.94, 0.03),
}

#: Stock authorities plus the named Flight aggregators.
_STOCK_IDS = ("google_finance", "yahoo_finance", "nasdaq", "msn_money", "bloomberg")
_FLIGHT_IDS = ("orbitz", "travelocity")


@dataclass
class Table4Row:
    domain: str
    source: str
    accuracy: Optional[float]
    coverage: float


@dataclass
class Table4Result:
    rows: List[Table4Row]


def run(ctx: ExperimentContext) -> Table4Result:
    rows: List[Table4Row] = []

    stock = ctx.stock
    profile = accuracy_profile(stock.snapshot, stock.gold, _STOCK_IDS)
    for source_id in _STOCK_IDS:
        entry = profile.rows[source_id]
        name = stock.snapshot.sources[source_id].display_name
        rows.append(Table4Row("stock", name, entry.accuracy, entry.coverage))

    flight = ctx.flight
    profile = accuracy_profile(flight.snapshot, flight.gold, _FLIGHT_IDS)
    for source_id in _FLIGHT_IDS:
        entry = profile.rows[source_id]
        name = flight.snapshot.sources[source_id].display_name
        rows.append(Table4Row("flight", name, entry.accuracy, entry.coverage))

    airports = [
        s for s, meta in flight.snapshot.sources.items()
        if meta.category is SourceCategory.AIRPORT
    ]
    airport_profile = accuracy_profile(flight.snapshot, flight.gold, airports)
    accuracies = airport_profile.accuracies()
    coverages = [airport_profile.rows[s].coverage for s in airports]
    rows.append(
        Table4Row(
            "flight",
            "Airport average",
            sum(accuracies) / len(accuracies) if accuracies else None,
            sum(coverages) / len(coverages) if coverages else 0.0,
        )
    )
    return Table4Result(rows=rows)


def render(result: Table4Result) -> str:
    return format_table(
        ["Domain", "Source", "Accuracy", "Coverage", "Paper (acc, cov)"],
        [
            (
                r.domain,
                r.source,
                r.accuracy,
                r.coverage,
                str(PAPER_REFERENCE.get(r.source, "-")),
            )
            for r in result.rows
        ],
        title="Table 4: accuracy and coverage of authoritative sources",
    )
