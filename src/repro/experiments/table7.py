"""Table 7 — precision of data-fusion methods on one snapshot.

For every method and domain: precision with the sampled trustworthiness
given as input (no iteration; ACCUCOPY additionally receives the known
copying groups), precision without it (the normal iterative run), and the
trustworthiness deviation/difference between the sampled and computed trust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.evaluation.metrics import evaluate
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.fusion.registry import METHOD_NAMES
from repro.fusion.trust import sample_trust, trust_diagnostics

#: Table 7 of the paper: (prec w. trust, prec w/o trust) per method/domain.
PAPER_REFERENCE = {
    "stock": {
        "Vote": (None, 0.908), "Hub": (0.913, 0.907), "AvgLog": (0.910, 0.899),
        "Invest": (0.924, 0.764), "PooledInvest": (0.924, 0.856),
        "2-Estimates": (0.910, 0.903), "3-Estimates": (0.910, 0.905),
        "Cosine": (0.910, 0.900), "TruthFinder": (0.923, 0.911),
        "AccuPr": (0.910, 0.899), "PopAccu": (0.909, 0.892),
        "AccuSim": (0.918, 0.913), "AccuFormat": (0.918, 0.911),
        "AccuSimAttr": (0.950, 0.929), "AccuFormatAttr": (0.948, 0.930),
        "AccuCopy": (0.958, 0.892),
    },
    "flight": {
        "Vote": (None, 0.864), "Hub": (0.939, 0.857), "AvgLog": (0.919, 0.839),
        "Invest": (0.945, 0.754), "PooledInvest": (0.945, 0.921),
        "2-Estimates": (0.870, 0.754), "3-Estimates": (0.870, 0.708),
        "Cosine": (0.870, 0.791), "TruthFinder": (0.957, 0.793),
        "AccuPr": (0.910, 0.868), "PopAccu": (0.958, 0.925),
        "AccuSim": (0.903, 0.844), "AccuFormat": (0.903, 0.844),
        "AccuSimAttr": (0.952, 0.833), "AccuFormatAttr": (0.952, 0.833),
        "AccuCopy": (0.960, 0.943),
    },
}


@dataclass
class Table7Row:
    domain: str
    method: str
    precision_with_trust: Optional[float]
    precision_without_trust: float
    trust_deviation: Optional[float]
    trust_difference: Optional[float]


@dataclass
class Table7Result:
    rows: List[Table7Row]

    def row(self, domain: str, method: str) -> Table7Row:
        for candidate in self.rows:
            if candidate.domain == domain and candidate.method == method:
                return candidate
        raise KeyError((domain, method))

    def best_without_trust(self, domain: str) -> Table7Row:
        candidates = [r for r in self.rows if r.domain == domain]
        return max(candidates, key=lambda r: r.precision_without_trust)


def run(
    ctx: ExperimentContext,
    method_names: Sequence[str] = METHOD_NAMES,
) -> Table7Result:
    from repro.parallel import MethodCall, solve_methods

    rows: List[Table7Row] = []
    for domain in ctx.domains:
        collection = ctx.collection(domain)
        snapshot, gold = collection.snapshot, collection.gold
        problem = ctx.problem(domain)

        # Every (method, seeded?) cell is an independent solve on the one
        # compiled problem — plan them all and fan out across the pool.
        samples = {name: sample_trust(name, snapshot, gold) for name in method_names}
        calls = [MethodCall(name) for name in method_names]
        seeded_calls = []
        for name in method_names:
            if samples[name] is None:
                continue
            kwargs = (
                {"known_groups": collection.true_copy_groups()}
                if name == "AccuCopy" else {}
            )
            seeded_calls.append(
                MethodCall(
                    name, kwargs=kwargs,
                    trust_seed=samples[name], freeze_trust=True, tag=name,
                )
            )
        outcomes = solve_methods(
            problem, calls + seeded_calls,
            workers=ctx.workers, scheduler=ctx.scheduler(),
        )
        plain_results = {
            name: oc.result for name, oc in zip(method_names, outcomes)
        }
        seeded_results = {
            oc.tag: oc.result for oc in outcomes[len(calls):]
        }
        for name in method_names:
            plain = plain_results[name]
            plain_score = evaluate(snapshot, gold, plain)

            sample = samples[name]
            seeded_precision: Optional[float] = None
            diagnostics = None
            if sample is not None:
                seeded = seeded_results[name]
                seeded_precision = evaluate(snapshot, gold, seeded).precision
                diagnostics = trust_diagnostics(plain, sample)
            rows.append(
                Table7Row(
                    domain=domain,
                    method=name,
                    precision_with_trust=seeded_precision,
                    precision_without_trust=plain_score.precision,
                    trust_deviation=diagnostics.deviation if diagnostics else None,
                    trust_difference=diagnostics.difference if diagnostics else None,
                )
            )
    return Table7Result(rows=rows)


def render(result: Table7Result) -> str:
    blocks = []
    domains = sorted({r.domain for r in result.rows})
    for domain in domains:
        rows = [
            (
                r.method,
                r.precision_with_trust,
                r.precision_without_trust,
                r.trust_deviation,
                r.trust_difference,
                _paper(domain, r.method),
            )
            for r in result.rows
            if r.domain == domain
        ]
        blocks.append(
            format_table(
                ["Method", "prec w. trust", "prec w/o trust",
                 "Trust dev", "Trust diff", "Paper (w., w/o)"],
                rows,
                title=f"Table 7 [{domain}]",
            )
        )
    return "\n\n".join(blocks)


def _paper(domain: str, method: str) -> str:
    ref = PAPER_REFERENCE.get(domain, {}).get(method)
    if ref is None:
        return "-"
    with_trust = "-" if ref[0] is None else f"{ref[0]:.3f}"
    return f"({with_trust}, {ref[1]:.3f})"
