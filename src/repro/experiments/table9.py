"""Table 9 — precision of data-fusion methods over the observation period.

Average, minimum, and standard deviation of each method's daily precision
over the month of snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.evaluation.timeseries import PrecisionSeries, precision_over_time
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.fusion.registry import METHOD_NAMES

#: Paper Table 9: (avg, min, deviation) per method per domain.
PAPER_REFERENCE = {
    "stock": {
        "Vote": (0.922, 0.898, 0.014), "Hub": (0.925, 0.895, 0.015),
        "AvgLog": (0.921, 0.895, 0.015), "Invest": (0.797, 0.764, 0.027),
        "PooledInvest": (0.871, 0.831, 0.015), "2-Estimates": (0.910, 0.811, 0.026),
        "3-Estimates": (0.923, 0.897, 0.014), "Cosine": (0.923, 0.894, 0.015),
        "TruthFinder": (0.930, 0.909, 0.013), "AccuPr": (0.922, 0.893, 0.015),
        "PopAccu": (0.912, 0.884, 0.016), "AccuSim": (0.932, 0.913, 0.012),
        "AccuFormat": (0.932, 0.911, 0.012), "AccuSimAttr": (0.941, 0.921, 0.011),
        "AccuFormatAttr": (0.941, 0.924, 0.010), "AccuCopy": (0.884, 0.801, 0.036),
    },
    "flight": {
        "Vote": (0.887, 0.861, 0.028), "Hub": (0.885, 0.850, 0.027),
        "AvgLog": (0.868, 0.838, 0.029), "Invest": (0.786, 0.748, 0.032),
        "PooledInvest": (0.979, 0.921, 0.013), "2-Estimates": (0.639, 0.588, 0.052),
        "3-Estimates": (0.718, 0.638, 0.034), "Cosine": (0.880, 0.786, 0.086),
        "TruthFinder": (0.818, 0.777, 0.031), "AccuPr": (0.893, 0.861, 0.030),
        "PopAccu": (0.972, 0.779, 0.048), "AccuSim": (0.866, 0.833, 0.032),
        "AccuFormat": (0.866, 0.833, 0.032), "AccuSimAttr": (0.956, 0.833, 0.050),
        "AccuFormatAttr": (0.956, 0.833, 0.050), "AccuCopy": (0.987, 0.943, 0.010),
    },
}


@dataclass
class Table9Result:
    series: Dict[str, Dict[str, PrecisionSeries]]

    def summary(self, domain: str, method: str) -> tuple:
        entry = self.series[domain][method]
        return entry.average, entry.minimum, entry.deviation


def run(
    ctx: ExperimentContext,
    method_names: Sequence[str] = METHOD_NAMES,
    max_days: Optional[int] = 8,
    engine: str = "session",
    warm_start: bool = False,
) -> Table9Result:
    """Run every method on (a stride of) the daily snapshots.

    ``max_days`` bounds the number of fused days (evenly strided across the
    period); pass ``None`` for the full month.  Days stream through fusion
    sessions by default (identical numbers, shared delta compilation);
    ``warm_start=True`` additionally carries trust across days.
    """
    series: Dict[str, Dict[str, PrecisionSeries]] = {}
    for domain in ctx.domains:
        collection = ctx.collection(domain)
        all_days = collection.series.days
        if max_days is not None and len(all_days) > max_days:
            stride = max(1, len(all_days) // max_days)
            days: Optional[List[str]] = all_days[::stride][:max_days]
        else:
            days = None
        series[domain] = precision_over_time(
            collection.series, collection.gold_by_day, method_names, days=days,
            engine=engine, warm_start=warm_start, workers=ctx.workers,
        )
    return Table9Result(series=series)


def render(result: Table9Result) -> str:
    blocks = []
    for domain, methods in result.series.items():
        rows = []
        for name, entry in methods.items():
            paper = PAPER_REFERENCE.get(domain, {}).get(name)
            rows.append(
                (
                    name,
                    entry.average,
                    entry.minimum,
                    entry.deviation,
                    str(paper) if paper else "-",
                )
            )
        blocks.append(
            format_table(
                ["Method", "Avg", "Min", "Deviation", "Paper (avg, min, dev)"],
                rows,
                title=f"Table 9 [{domain}] over {len(next(iter(methods.values())).days)} days",
            )
        )
    return "\n\n".join(blocks)
