"""Table 3 — value inconsistency per attribute.

Per measure (number of values, entropy, deviation) the attributes with the
lowest and highest inconsistency, with the Stock numbers recomputed after
excluding the stale StockSmart source (the parenthesized variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.profiling.consistency import (
    ConsistencyProfile,
    consistency_profile,
    rank_attributes,
)

#: Paper highlights for EXPERIMENTS.md.
PAPER_REFERENCE = {
    "stock_low_num_values": ("Previous close", 1.14),
    "stock_high_num_values": ("Volume", 7.42),
    "stock_high_entropy": ("P/E", 1.49),
    "flight_high_num_values": ("Actual depart", 1.98),
    "flight_high_deviation_minutes": ("Actual depart", 15.14),
}

MEASURES = ("num_values", "entropy", "deviation")


@dataclass
class Table3Result:
    #: domain -> measure -> (lowest rows, highest rows) of (attr, value).
    rankings: Dict[str, Dict[str, Tuple[List[Tuple[str, float]], List[Tuple[str, float]]]]]
    #: Stock-only variant excluding the stale source, keyed by measure.
    without_stale: Dict[str, Dict[str, float]]
    mean_num_values: Dict[str, float]
    mean_entropy: Dict[str, float]


def _rank(profile: ConsistencyProfile, measure: str, top: int = 5):
    ranking = rank_attributes(profile, measure, top=top)
    lows = [(r.attribute, r.value) for r in ranking.lowest]
    highs = [(r.attribute, r.value) for r in ranking.highest]
    return lows, highs


def run(ctx: ExperimentContext, stale_source: str = "stocksmart") -> Table3Result:
    rankings: Dict[str, Dict[str, Tuple[List, List]]] = {}
    mean_nv: Dict[str, float] = {}
    mean_e: Dict[str, float] = {}
    for domain in ctx.domains:
        snapshot = ctx.collection(domain).snapshot
        profile = consistency_profile(snapshot)
        rankings[domain] = {m: _rank(profile, m) for m in MEASURES}
        mean_nv[domain] = profile.mean_num_values
        mean_e[domain] = profile.mean_entropy

    stock_snapshot = ctx.stock.snapshot
    reduced = consistency_profile(stock_snapshot, exclude_sources=[stale_source])
    without_stale = {
        measure: {
            a: value
            for a, value in (
                [(r.attribute, r.value) for r in rank_attributes(reduced, measure, top=16).lowest]
            )
        }
        for measure in MEASURES
    }
    return Table3Result(
        rankings=rankings,
        without_stale=without_stale,
        mean_num_values=mean_nv,
        mean_entropy=mean_e,
    )


def render(result: Table3Result) -> str:
    blocks: List[str] = []
    for measure in MEASURES:
        rows = []
        for domain, ranks in result.rankings.items():
            lows, highs = ranks[measure]
            for (low_attr, low_val), (high_attr, high_val) in zip(lows, highs):
                rows.append(
                    (
                        domain,
                        low_attr,
                        low_val,
                        _with_paren(result, measure, low_attr, low_val, domain),
                        high_attr,
                        high_val,
                        _with_paren(result, measure, high_attr, high_val, domain),
                    )
                )
        blocks.append(
            format_table(
                ["Domain", "Low attr", measure, "(w/o stale)",
                 "High attr", measure + " ", "(w/o stale) "],
                rows,
                title=f"Table 3 [{measure}]",
            )
        )
    summary = "\n".join(
        f"{domain}: mean #values {result.mean_num_values[domain]:.2f}, "
        f"mean entropy {result.mean_entropy[domain]:.2f}"
        for domain in result.mean_num_values
    )
    return "\n\n".join(blocks) + "\n" + summary


def _with_paren(
    result: Table3Result, measure: str, attribute: str, value: float, domain: str
) -> Optional[float]:
    if domain != "stock":
        return None
    return result.without_stale.get(measure, {}).get(attribute)
