"""Table 1 — overview of the data collections.

Sources, observation period, objects x days, local/global attribute counts,
and considered items x days, per domain.  Table 2 (the 16 examined Stock
attributes) is folded in here as it is purely the attribute list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.profiling.coverage import schema_match_statistics

#: The paper's Table 1 rows, for EXPERIMENTS.md comparison.
PAPER_REFERENCE = {
    "stock": {"sources": 55, "local": 333, "global": 153, "considered_attrs": 16},
    "flight": {"sources": 38, "local": 43, "global": 15, "considered_attrs": 6},
}


@dataclass
class Table1Row:
    domain: str
    num_sources: int
    period: str
    num_objects: int
    num_days: int
    num_local_attrs: int
    num_global_attrs: int
    considered_attrs: int
    considered_items: int


@dataclass
class Table1Result:
    rows: List[Table1Row]


def run(ctx: ExperimentContext) -> Table1Result:
    rows = []
    for domain in ctx.domains:
        collection = ctx.collection(domain)
        snapshot = collection.snapshot
        schema_stats = schema_match_statistics(collection.profiles)
        rows.append(
            Table1Row(
                domain=domain,
                num_sources=snapshot.num_sources,
                period=f"{collection.series.days[0]}..{collection.series.days[-1]}",
                num_objects=snapshot.num_objects,
                num_days=len(collection.series),
                num_local_attrs=schema_stats["local"],
                num_global_attrs=schema_stats["global"],
                considered_attrs=len(snapshot.attributes),
                considered_items=snapshot.num_items,
            )
        )
    return Table1Result(rows=rows)


def render(result: Table1Result) -> str:
    return format_table(
        [
            "Domain", "Srcs", "Period", "Objects", "Days",
            "Local attrs", "Global attrs", "Considered attrs", "Considered items",
        ],
        [
            (
                r.domain, r.num_sources, r.period, r.num_objects, r.num_days,
                r.num_local_attrs, r.num_global_attrs, r.considered_attrs,
                r.considered_items,
            )
            for r in result.rows
        ],
        title="Table 1: Overview of data collections",
    )
