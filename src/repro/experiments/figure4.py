"""Figure 4 — distributions of value inconsistency.

Three panels: the number of distinct values per item, the entropy of the
value distribution, and the deviation of numerical values (relative for
Stock, minutes for Flight), binned as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.profiling.consistency import consistency_profile

PAPER_REFERENCE = {
    "stock_single_value_share": 0.17,
    "stock_avg_num_values": 3.7,
    "flight_single_value_share": 0.61,
    "flight_avg_num_values": 1.45,
}


@dataclass
class Figure4Result:
    num_values: Dict[str, Dict[str, float]]
    entropy: Dict[str, Dict[str, float]]
    deviation: Dict[str, Dict[str, float]]
    single_value_share: Dict[str, float]
    avg_num_values: Dict[str, float]


def run(ctx: ExperimentContext) -> Figure4Result:
    num_values: Dict[str, Dict[str, float]] = {}
    entropy: Dict[str, Dict[str, float]] = {}
    deviation: Dict[str, Dict[str, float]] = {}
    single: Dict[str, float] = {}
    avg: Dict[str, float] = {}
    for domain in ctx.domains:
        profile = consistency_profile(ctx.collection(domain).snapshot)
        num_values[domain] = profile.num_values_histogram()
        entropy[domain] = profile.entropy_histogram()
        deviation[domain] = profile.deviation_histogram()
        single[domain] = profile.fraction_single_value()
        avg[domain] = profile.mean_num_values
    return Figure4Result(
        num_values=num_values,
        entropy=entropy,
        deviation=deviation,
        single_value_share=single,
        avg_num_values=avg,
    )


def _panel(title: str, data: Dict[str, Dict[str, float]]) -> str:
    domains = list(data.keys())
    labels = list(next(iter(data.values())).keys()) if data else []
    rows = [
        [label] + [data[domain].get(label, 0.0) for domain in domains]
        for label in labels
    ]
    return format_table(["bin"] + domains, rows, title=title)


def render(result: Figure4Result) -> str:
    panels = [
        _panel("Figure 4a: number of distinct values", result.num_values),
        _panel("Figure 4b: entropy of values", result.entropy),
        _panel("Figure 4c: deviation (relative / minutes-scaled)", result.deviation),
    ]
    summary = "\n".join(
        f"{domain}: {100 * result.single_value_share[domain]:.0f}% single-valued, "
        f"avg #values {result.avg_num_values[domain]:.2f}"
        for domain in result.single_value_share
    )
    return "\n\n".join(panels) + "\n" + summary
