"""Figure 12 — fusion precision versus efficiency.

Runs every method on the report snapshot, recording wall-clock runtime and
precision.  The paper's finding is the relative ordering: VOTE sub-second,
most iterative methods ~10x slower, per-attribute variants slower still, and
ACCUCOPY slowest (it runs pairwise copy detection every round).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.evaluation.efficiency import EfficiencyPoint, efficiency_profile
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.fusion.registry import METHOD_NAMES

PAPER_REFERENCE = {
    "stock_fastest": "Vote",
    "stock_slowest": "AccuCopy",
    "stock_slowest_seconds": 855.0,
    "flight_slowest_seconds": 17.0,
}


@dataclass
class Figure12Result:
    points: Dict[str, List[EfficiencyPoint]]

    def runtime_of(self, domain: str, method: str) -> float:
        for point in self.points[domain]:
            if point.method == method:
                return point.runtime_seconds
        raise KeyError((domain, method))


def run(
    ctx: ExperimentContext, method_names: Sequence[str] = METHOD_NAMES
) -> Figure12Result:
    points: Dict[str, List[EfficiencyPoint]] = {}
    for domain in ctx.domains:
        collection = ctx.collection(domain)
        points[domain] = efficiency_profile(
            collection.snapshot,
            collection.gold,
            method_names,
            problem=ctx.problem(domain),
        )
    return Figure12Result(points=points)


def render(result: Figure12Result) -> str:
    blocks = []
    for domain, points in result.points.items():
        ordered = sorted(points, key=lambda p: p.runtime_seconds)
        blocks.append(
            format_table(
                ["Method", "Runtime (s)", "Precision", "Rounds"],
                [
                    (p.method, f"{p.runtime_seconds:.4f}", p.precision, p.rounds)
                    for p in ordered
                ],
                title=f"Figure 12 [{domain}]: precision vs execution time",
            )
        )
    return "\n\n".join(blocks)
