"""Figure 6 — reasons for value inconsistency.

Share of inconsistent items attributable to semantics ambiguity, instance
ambiguity, out-of-date data, unit errors, and pure errors, per domain.  The
simulator's ground-truth claim tags substitute for the paper's manual
inspection; both the full-population breakdown and the paper's 25-item
sampling scheme are computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.records import ErrorReason
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.profiling.reasons import reason_breakdown, sampled_reason_breakdown

#: The paper's pie charts.
PAPER_REFERENCE = {
    "stock": {
        ErrorReason.SEMANTICS_AMBIGUITY: 0.46,
        ErrorReason.INSTANCE_AMBIGUITY: 0.06,
        ErrorReason.OUT_OF_DATE: 0.34,
        ErrorReason.UNIT_ERROR: 0.03,
        ErrorReason.PURE_ERROR: 0.11,
    },
    "flight": {
        ErrorReason.SEMANTICS_AMBIGUITY: 0.33,
        ErrorReason.OUT_OF_DATE: 0.11,
        ErrorReason.PURE_ERROR: 0.56,
    },
}

REASON_ORDER = (
    ErrorReason.SEMANTICS_AMBIGUITY,
    ErrorReason.INSTANCE_AMBIGUITY,
    ErrorReason.OUT_OF_DATE,
    ErrorReason.UNIT_ERROR,
    ErrorReason.PURE_ERROR,
)


@dataclass
class Figure6Result:
    full_shares: Dict[str, Dict[ErrorReason, float]]
    sampled_shares: Dict[str, Dict[ErrorReason, float]]
    num_inconsistent: Dict[str, int]


def run(ctx: ExperimentContext) -> Figure6Result:
    full: Dict[str, Dict[ErrorReason, float]] = {}
    sampled: Dict[str, Dict[ErrorReason, float]] = {}
    counts: Dict[str, int] = {}
    for domain in ctx.domains:
        snapshot = ctx.collection(domain).snapshot
        breakdown = reason_breakdown(snapshot)
        full[domain] = breakdown.shares()
        counts[domain] = breakdown.num_inconsistent_items
        sampled[domain] = sampled_reason_breakdown(snapshot).shares()
    return Figure6Result(
        full_shares=full, sampled_shares=sampled, num_inconsistent=counts
    )


def render(result: Figure6Result) -> str:
    rows = []
    for domain in result.full_shares:
        for reason in REASON_ORDER:
            full = result.full_shares[domain].get(reason, 0.0)
            samp = result.sampled_shares[domain].get(reason, 0.0)
            paper = PAPER_REFERENCE.get(domain, {}).get(reason)
            rows.append((domain, reason.value, full, samp, paper))
    return format_table(
        ["Domain", "Reason", "Share (all)", "Share (sampled)", "Paper"],
        rows,
        title="Figure 6: reasons for value inconsistency",
    )
