"""Plain-text rendering of experiment results.

Every experiment module produces structured results; this module turns them
into the fixed-width tables and ASCII series the CLI runner prints, so the
output can be eyeballed against the paper's tables and figures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width table with a separator under the header row."""
    materialized: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "X" if value else ""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(
    labels: Sequence[object],
    series: Dict[str, Sequence[Optional[float]]],
    title: str = "",
    width: int = 40,
) -> str:
    """Aligned numeric series, one row per label, one column per series."""
    headers = ["x"] + list(series.keys())
    rows = []
    for i, label in enumerate(labels):
        row: List[object] = [label]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_bar_chart(
    data: Dict[str, float], title: str = "", width: int = 40
) -> str:
    """A horizontal ASCII bar chart for distribution-style figures."""
    parts: List[str] = []
    if title:
        parts.append(title)
    peak = max(data.values(), default=0.0)
    label_width = max((len(str(k)) for k in data), default=1)
    for key, value in data.items():
        bar = "#" * int(round(width * (value / peak))) if peak > 0 else ""
        parts.append(f"{str(key).ljust(label_width)}  {value:7.3f}  {bar}")
    return "\n".join(parts)


def format_percent(value: Optional[float]) -> str:
    return "-" if value is None else f"{100 * value:.1f}%"
