"""Table 6 — the feature matrix of the fusion methods.

Static: which evidence each method considers (number of providers, source
trustworthiness, item trustworthiness, value popularity/similarity/
formatting, copying).  Rendered from the method registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.fusion.registry import all_method_infos

FEATURE_COLUMNS = (
    "#Providers",
    "Source trustworthiness",
    "Item trustworthiness",
    "Value popularity",
    "Value similarity",
    "Value formatting",
    "Copying",
)


@dataclass
class Table6Result:
    rows: List[Dict[str, object]]


def run(ctx: ExperimentContext) -> Table6Result:  # ctx unused; uniform API
    rows = []
    for info in all_method_infos():
        row: Dict[str, object] = {"Category": info.category, "Method": info.name}
        row.update(info.features())
        rows.append(row)
    return Table6Result(rows=rows)


def render(result: Table6Result) -> str:
    return format_table(
        ["Category", "Method", *FEATURE_COLUMNS],
        [
            [row["Category"], row["Method"], *(row[c] for c in FEATURE_COLUMNS)]
            for row in result.rows
        ],
        title="Table 6: summary of data-fusion methods",
    )
