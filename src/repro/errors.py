"""Exception hierarchy for the ``repro`` library.

All exceptions raised by this package derive from :class:`ReproError`, so a
caller can catch everything library-specific with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SchemaError(ReproError):
    """An attribute, source, or object reference is unknown or inconsistent."""


class ValueParseError(ReproError):
    """A raw value string could not be parsed for its declared kind."""


class ConfigError(ReproError):
    """A generator or experiment configuration is invalid."""


class FusionError(ReproError):
    """A fusion method was invoked on an incompatible or empty problem."""


class ConvergenceError(FusionError):
    """An iterative fusion method failed to converge within ``max_rounds``.

    Methods only raise this when ``strict_convergence=True``; by default they
    return the last iterate and flag ``FusionResult.converged = False``.
    """


class GoldStandardError(ReproError):
    """The gold standard could not be constructed (e.g. no authority votes)."""


class StalePublishError(FusionError):
    """A monotonic :class:`~repro.serving.TruthStore` rejected an older day.

    Raised only when the store was built with ``monotonic_days=True`` and a
    publish carries a day that sorts before the currently-published one —
    the delayed re-publish of an old snapshot that would otherwise silently
    overwrite newer truths under a live publish loop.
    """
