"""Bayesian copy detection between sources (Dong et al., VLDB 2009).

Given a current truth selection, every source pair is scored on three
overlap counts:

* ``kt`` — shared items where both provide the same, *selected-true* value;
* ``kf`` — shared items where both provide the same, *not-selected* value
  (sharing false values is the strong evidence for copying);
* ``kd`` — shared items where they provide different values (evidence of
  independence).

With copy probability ``c``, per-item likelihoods under independence /
dependence follow the standard derivation, and the posterior dependence
probability combines them with a prior ``alpha``.  As the paper observes
(Section 4.2), this detector treats values *similar but not equal* to the
truth as false, which produces false positives on numeric data — exactly the
failure mode that hurts ACCUCOPY on the Stock domain.  The
``similarity_aware`` flag (our ablation) instead credits near-truth values
as true before counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.fusion.base import FusionProblem

#: Default prior probability that a random source pair is dependent.
DEFAULT_PRIOR = 0.2
#: Default probability that a copier copies any given item.
DEFAULT_COPY_PROB = 0.8
#: Default number of false values per item assumed by the model.
DEFAULT_N_FALSE = 10.0
#: Pairs sharing fewer items than this are never flagged.  Real copier
#: pairs mirror whole databases (hundreds of shared items); accurate honest
#: pairs with a handful of shared items can agree perfectly by chance.
DEFAULT_MIN_OVERLAP = 30
#: Pairs agreeing on less than this fraction of shared items are never
#: flagged.  Real copies agree almost perfectly (Table 5: value commonality
#: .99-1.0); without this gate, every pair of honest sources sharing the
#: correct value on items where the *current selection* is wrong accumulates
#: spurious shared-false evidence, and detection cascades into one giant
#: component — the false-positive failure the paper reports for ACCUCOPY on
#: Stock (Section 4.2).  Setting ``agreement_gate=0`` restores the raw
#: behaviour (used by the copy-detection ablation bench).
DEFAULT_AGREEMENT_GATE = 0.99

_EPS = 1e-12


@dataclass
class CopyDetectionResult:
    """Pairwise dependence probabilities over the problem's sources."""

    sources: List[str]
    probability: np.ndarray  # (n_sources, n_sources), symmetric, zero diagonal
    _index: Optional[Dict[str, int]] = field(
        default=None, repr=False, compare=False
    )

    def pair(self, a: str, b: str) -> float:
        if self._index is None:
            self._index = {s: i for i, s in enumerate(self.sources)}
        return float(self.probability[self._index[a], self._index[b]])

    def groups(self, threshold: float = 0.5) -> List[List[str]]:
        """Connected components of the thresholded dependence graph."""
        adjacency = sp.csr_matrix(self.probability >= threshold)
        n_components, labels = connected_components(adjacency, directed=False)
        members: List[List[str]] = [[] for _ in range(n_components)]
        for node, label in enumerate(labels):
            members[label].append(self.sources[node])
        groups = [sorted(component) for component in members if len(component) > 1]
        groups.sort(key=len, reverse=True)
        return groups


def _overlap_counts(
    problem: FusionProblem,
    selected: np.ndarray,
    near_true: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(kt, kf, kd) matrices over source pairs via sparse products.

    The selection-independent structures (membership CSR, pairwise ``same``
    and ``shared`` counts) are cached on the problem; only the
    selection-dependent ``kt`` product runs per call.
    """
    structures = problem.copy_structures
    true_mask = np.zeros(problem.n_clusters, dtype=bool)
    true_mask[selected] = True
    if near_true is not None:
        true_mask |= near_true
    member_true = structures.membership[:, true_mask]
    kt = (member_true @ member_true.T).toarray()

    kf = structures.same - kt
    kd = structures.shared - structures.same
    return kt, kf, kd


def selection_accuracy(problem: FusionProblem, selected: np.ndarray) -> np.ndarray:
    """Per-source fraction of claims that agree with the current selection.

    This is the accuracy figure the detection likelihoods need: an observable
    frequency on the same scale as the overlap counts (posterior-mean trust
    scores systematically underestimate it, which makes honestly-agreeing
    accurate sources look like copiers).
    """
    selected_mask = np.zeros(problem.n_clusters, dtype=bool)
    selected_mask[selected] = True
    agree = selected_mask[problem.claim_cluster].astype(np.float64)
    hits = np.bincount(
        problem.claim_source, weights=agree, minlength=problem.n_sources
    )
    totals = np.maximum(problem.claims_per_source, 1.0)
    return hits / totals


def _near_true_clusters(problem: FusionProblem, selected: np.ndarray) -> np.ndarray:
    """Clusters highly similar to the selected one on their item."""
    near = np.zeros(problem.n_clusters, dtype=bool)
    sim_a, sim_b, sim_w = problem.similarity_edges
    if not len(sim_a):
        return near
    selected_mask = np.zeros(problem.n_clusters, dtype=bool)
    selected_mask[selected] = True
    strong = sim_w >= 0.8
    hits = selected_mask[sim_a] & strong
    near[sim_b[hits]] = True
    return near


def detect_copying(
    problem: FusionProblem,
    selected: np.ndarray,
    accuracy: np.ndarray,
    prior: float = DEFAULT_PRIOR,
    copy_probability: float = DEFAULT_COPY_PROB,
    n_false_values: float = DEFAULT_N_FALSE,
    min_overlap: int = DEFAULT_MIN_OVERLAP,
    agreement_gate: float = DEFAULT_AGREEMENT_GATE,
    similarity_aware: bool = False,
) -> CopyDetectionResult:
    """Pairwise dependence probabilities given a truth selection.

    ``accuracy`` is the current per-source accuracy estimate (used in the
    likelihoods).  With ``similarity_aware=True`` values highly similar to
    the selected truth count as true when tallying shared false values — the
    robust variant the paper calls for in Section 5.
    """
    near_true = _near_true_clusters(problem, selected) if similarity_aware else None
    kt, kf, kd = _overlap_counts(problem, selected, near_true)

    acc = np.clip(accuracy, 0.05, 0.95)
    pair_acc = 0.5 * (acc[:, None] + acc[None, :])
    pt_indep = np.clip(acc[:, None] * acc[None, :], _EPS, 1 - _EPS)
    pf_indep = np.clip(
        (1 - acc[:, None]) * (1 - acc[None, :]) / n_false_values, _EPS, 1 - _EPS
    )
    pd_indep = np.clip(1.0 - pt_indep - pf_indep, _EPS, 1 - _EPS)

    c = copy_probability
    pt_dep = np.clip(c * pair_acc + (1 - c) * pt_indep, _EPS, 1 - _EPS)
    pf_dep = np.clip(c * (1 - pair_acc) + (1 - c) * pf_indep, _EPS, 1 - _EPS)
    pd_dep = np.clip((1 - c) * pd_indep, _EPS, 1 - _EPS)

    logit = (
        np.log(prior / (1.0 - prior))
        + kt * np.log(pt_dep / pt_indep)
        + kf * np.log(pf_dep / pf_indep)
        + kd * np.log(pd_dep / pd_indep)
    )
    probability = 1.0 / (1.0 + np.exp(-np.clip(logit, -60, 60)))
    shared = kt + kf + kd
    probability[shared < min_overlap] = 0.0
    with np.errstate(invalid="ignore"):
        agreement = np.where(shared > 0, (kt + kf) / np.maximum(shared, 1), 0.0)
    probability[agreement < agreement_gate] = 0.0
    np.fill_diagonal(probability, 0.0)
    return CopyDetectionResult(sources=list(problem.sources), probability=probability)


def independence_weights(
    problem: FusionProblem,
    dependence: np.ndarray,
    copy_probability: float = DEFAULT_COPY_PROB,
) -> np.ndarray:
    """Per-claim weight for how independently the claim was made.

    For claim (s, v) the weight is ``1 / (1 + c * sum over co-providers s'
    of v of P_dep(s, s'))``: a clique of ``k`` mutual copiers contributes
    roughly one vote in total instead of ``k`` (each member keeps weight
    ``~1/k``), while an independent claim keeps weight 1.  (Dong et al.
    discount multiplicatively per copier; the harmonic form preserves one
    collective vote for the group, which keeps the original's evidence from
    vanishing for large groups.)
    """
    scaled = copy_probability * dependence  # (S, S), zero diagonal
    per_claim = np.zeros(problem.n_claims)
    # Only sources with some nonzero dependence column can accumulate
    # dependent mass; computing the (n_clusters x n_sources) product for
    # those columns alone avoids densifying the full matrix (after the
    # agreement gate, copier pairs are a handful of sources).
    involved = np.flatnonzero(scaled.any(axis=0))
    if involved.size:
        membership = problem.copy_structures.membership.T  # (C, S) view
        # mass[c, k] = sum over providers s' of cluster c of c * P_dep(s', s_k)
        mass = np.asarray(membership @ scaled[:, involved])  # (C, |involved|)
        column = np.full(problem.n_sources, -1, dtype=np.int64)
        column[involved] = np.arange(involved.size)
        claim_column = column[problem.claim_source]
        hit = claim_column >= 0
        per_claim[hit] = mass[problem.claim_cluster[hit], claim_column[hit]]
    return 1.0 / (1.0 + per_claim)


def known_groups_matrix(
    problem: FusionProblem, groups: Sequence[Sequence[str]]
) -> np.ndarray:
    """A dependence matrix encoding ground-truth copy groups (P = 1)."""
    probability = np.zeros((problem.n_sources, problem.n_sources))
    for group in groups:
        indices = [problem.source_index[s] for s in group if s in problem.source_index]
        for i in indices:
            for j in indices:
                if i != j:
                    probability[i, j] = 1.0
    return probability
