"""Copy detection between Deep-Web sources (Dong et al., VLDB 2009)."""

from repro.copying.detection import (
    DEFAULT_COPY_PROB,
    DEFAULT_MIN_OVERLAP,
    DEFAULT_N_FALSE,
    DEFAULT_PRIOR,
    CopyDetectionResult,
    detect_copying,
    independence_weights,
    known_groups_matrix,
)

__all__ = [
    "DEFAULT_COPY_PROB",
    "DEFAULT_MIN_OVERLAP",
    "DEFAULT_N_FALSE",
    "DEFAULT_PRIOR",
    "CopyDetectionResult",
    "detect_copying",
    "independence_weights",
    "known_groups_matrix",
]
