"""Sampled source trustworthiness and the Table 7 trust diagnostics.

For each method the paper samples "the trustworthiness of each source with
respect to a gold standard *as it is defined in the method*" and compares it
with the trustworthiness the method computes at convergence:

* **trust deviation** — RMSE between sampled and computed trust
  (Equation 4);
* **trust difference** — mean computed minus mean sampled trust.

Sampling is method-specific because the methods define trust on different
scales: the Bayesian and IR methods use accuracy-like values in [0, 1]; HUB
and AVGLOG accumulate votes (so the count of provided values matters);
COSINE uses a cosine similarity in [-1, 1].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.fusion.base import FusionProblem, FusionResult


@dataclass
class TrustDiagnostics:
    """Table 7's last two columns for one method run."""

    deviation: float
    difference: float


def sampled_accuracy(dataset: Dataset, gold: GoldStandard) -> Dict[str, float]:
    """Per-source accuracy on the gold standard (the ACCU-family sample)."""
    sample: Dict[str, float] = {}
    for source_id in dataset.source_ids:
        claims = dataset.claims_by(source_id)
        total = correct = 0
        for item, claim in claims.items():
            if item not in gold:
                continue
            total += 1
            if gold.is_correct(dataset, item, claim.value):
                correct += 1
        if total:
            sample[source_id] = correct / total
    return sample


def _gold_counts(dataset: Dataset, gold: GoldStandard) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for source_id in dataset.source_ids:
        claims = dataset.claims_by(source_id)
        counts[source_id] = sum(1 for item in claims if item in gold)
    return counts


def sampled_vote_mass(dataset: Dataset, gold: GoldStandard) -> Dict[str, float]:
    """HUB-style sample: correct-claim count, normalized by the maximum."""
    raw: Dict[str, float] = {}
    for source_id, accuracy in sampled_accuracy(dataset, gold).items():
        count = sum(
            1 for item in dataset.claims_by(source_id) if item in gold
        )
        raw[source_id] = accuracy * count
    peak = max(raw.values(), default=0.0)
    if peak <= 0:
        return raw
    return {s: v / peak for s, v in raw.items()}


def sampled_avglog(dataset: Dataset, gold: GoldStandard) -> Dict[str, float]:
    """AVGLOG-style sample: accuracy * log(claim count), max-normalized."""
    counts = _gold_counts(dataset, gold)
    raw = {
        s: accuracy * math.log(max(counts.get(s, 0), 2))
        for s, accuracy in sampled_accuracy(dataset, gold).items()
    }
    peak = max(raw.values(), default=0.0)
    if peak <= 0:
        return raw
    return {s: v / peak for s, v in raw.items()}


def sampled_cosine(dataset: Dataset, gold: GoldStandard) -> Dict[str, float]:
    """COSINE-style sample: cosine between claims and the gold vector.

    Positions of a source are all candidate values of its gold items: +1 on
    the claimed value, -1 elsewhere; the truth vector is +1 on the gold value
    and -1 elsewhere.
    """
    sample: Dict[str, float] = {}
    for source_id in dataset.source_ids:
        dot = 0.0
        norm_positions = 0
        for item, claim in dataset.claims_by(source_id).items():
            if item not in gold:
                continue
            clustering = dataset.clustering(item)
            k = clustering.num_values
            norm_positions += k
            if gold.is_correct(dataset, item, claim.value):
                dot += k
            else:
                dot += k - 4  # claimed and gold positions both disagree
        if norm_positions:
            sample[source_id] = dot / norm_positions
    return sample


#: Method name -> sampling function.
_SAMPLERS = {
    "Hub": sampled_vote_mass,
    "AvgLog": sampled_avglog,
    "Invest": sampled_accuracy,
    "PooledInvest": sampled_accuracy,
    "Cosine": sampled_cosine,
    "2-Estimates": sampled_accuracy,
    "3-Estimates": sampled_accuracy,
    "TruthFinder": sampled_accuracy,
    "AccuPr": sampled_accuracy,
    "PopAccu": sampled_accuracy,
    "AccuSim": sampled_accuracy,
    "AccuFormat": sampled_accuracy,
    "AccuSimAttr": sampled_accuracy,
    "AccuFormatAttr": sampled_accuracy,
    "AccuCopy": sampled_accuracy,
}


def sample_trust(
    method_name: str, dataset: Dataset, gold: GoldStandard
) -> Optional[Dict[str, float]]:
    """The method-specific sampled trustworthiness; ``None`` for VOTE."""
    sampler = _SAMPLERS.get(method_name)
    if sampler is None:
        return None
    return sampler(dataset, gold)


def trust_diagnostics(
    result: FusionResult, sample: Dict[str, float]
) -> TrustDiagnostics:
    """Deviation (Equation 4) and difference between computed and sampled."""
    pairs = [
        (sample[s], result.trust[s])
        for s in result.trust
        if s in sample
    ]
    if not pairs:
        return TrustDiagnostics(deviation=0.0, difference=0.0)
    sampled = np.array([p[0] for p in pairs])
    computed = np.array([p[1] for p in pairs])
    deviation = float(np.sqrt(np.mean((sampled - computed) ** 2)))
    difference = float(np.mean(computed) - np.mean(sampled))
    return TrustDiagnostics(deviation=deviation, difference=difference)
