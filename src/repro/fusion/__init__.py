"""All sixteen data-fusion methods of Section 4, plus trust diagnostics."""

from repro.fusion.base import (
    DEFAULT_MAX_ROUNDS,
    DEFAULT_TOLERANCE,
    FORMAT_WEIGHT,
    FusionMethod,
    FusionProblem,
    FusionResult,
)
from repro.fusion.bayesian import (
    AccuFormat,
    AccuFormatAttr,
    AccuPr,
    AccuSim,
    AccuSimAttr,
    PopAccu,
    TruthFinder,
)
from repro.fusion.copy_aware import AccuCopy
from repro.fusion.batch import BATCH_SAFE_METHODS, RestrictionSweep, solve_restrictions
from repro.fusion.ensemble import (
    ensemble_of_methods,
    ensemble_vote,
    precision_weighted_ensemble,
)
from repro.fusion.extensions import AccuCategory, select_plausible_values
from repro.fusion.seeding import consistent_item_seed, seed_coverage
from repro.fusion.spec import FusionSession, MethodSpec
from repro.fusion.ir import Cosine, ThreeEstimates, TwoEstimates
from repro.fusion.registry import (
    ITERATIVE_METHOD_NAMES,
    METHOD_NAMES,
    MethodInfo,
    all_method_infos,
    feature_matrix,
    make_method,
    method_info,
)
from repro.fusion.trust import (
    TrustDiagnostics,
    sample_trust,
    sampled_accuracy,
    trust_diagnostics,
)
from repro.fusion.vote import Vote
from repro.fusion.weblink import AvgLog, Hub, Invest, PooledInvest

__all__ = [
    "DEFAULT_MAX_ROUNDS",
    "DEFAULT_TOLERANCE",
    "FORMAT_WEIGHT",
    "FusionMethod",
    "FusionProblem",
    "FusionResult",
    "FusionSession",
    "MethodSpec",
    "AccuFormat",
    "AccuFormatAttr",
    "AccuPr",
    "AccuSim",
    "AccuSimAttr",
    "PopAccu",
    "TruthFinder",
    "AccuCopy",
    "BATCH_SAFE_METHODS",
    "RestrictionSweep",
    "solve_restrictions",
    "ensemble_of_methods",
    "ensemble_vote",
    "precision_weighted_ensemble",
    "AccuCategory",
    "select_plausible_values",
    "consistent_item_seed",
    "seed_coverage",
    "Cosine",
    "ThreeEstimates",
    "TwoEstimates",
    "ITERATIVE_METHOD_NAMES",
    "METHOD_NAMES",
    "MethodInfo",
    "all_method_infos",
    "feature_matrix",
    "make_method",
    "method_info",
    "TrustDiagnostics",
    "sample_trust",
    "sampled_accuracy",
    "trust_diagnostics",
    "Vote",
    "AvgLog",
    "Hub",
    "Invest",
    "PooledInvest",
]
