"""VOTE — the baseline strategy (Section 4.1).

Takes the dominant value (largest number of providers) as the truth; its
precision is exactly the precision of dominant values studied in Section 3.2.
No iteration is required.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.fusion.base import FusionMethod, FusionProblem


class Vote(FusionMethod):
    """Majority voting over the bucketed values."""

    name = "Vote"
    initial_trust = 1.0

    def __init__(self, max_rounds: int = 1, **kwargs):
        # max_rounds/tolerance are accepted (the CLI passes solver flags to
        # every method uniformly); extra rounds are harmless no-ops since
        # the trust never moves.
        super().__init__(max_rounds=max_rounds, **kwargs)

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        return problem.cluster_support_f

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        return state["trust"]
