"""Seed trustworthiness from consistent data items (Section 5).

The paper: *"Can we start with some seed trustworthiness better than the
currently employed default values to improve fusion results? For example,
the seed can come from sampling or based on results on the data items where
data are fairly consistent."*

:func:`consistent_item_seed` implements exactly that: it takes the items
whose dominance factor exceeds a threshold (where the dominant value is
almost certainly true — Figure 7), treats those dominant values as a
pseudo-gold-standard, and scores every source against it.  The result can be
passed to any method's ``trust_seed`` without touching the real gold
standard.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.fusion.base import FusionProblem

#: Items need at least this dominance factor to serve as pseudo-truth.
DEFAULT_DOMINANCE_THRESHOLD = 0.8
#: ...and at least this many providers.
DEFAULT_MIN_PROVIDERS = 4
#: Smoothing pseudo-counts toward the neutral prior.
DEFAULT_SMOOTHING = 2.0


def consistent_item_seed(
    problem: FusionProblem,
    dominance_threshold: float = DEFAULT_DOMINANCE_THRESHOLD,
    min_providers: int = DEFAULT_MIN_PROVIDERS,
    prior: float = 0.8,
    smoothing: float = DEFAULT_SMOOTHING,
) -> Dict[str, float]:
    """Per-source accuracy estimated on the near-unanimous items.

    Returns a trust seed on the accuracy scale in (0, 1), smoothed toward
    ``prior`` so sources with few consistent items stay near the default.
    """
    providers = problem.providers_per_item
    dominant_support = np.zeros(problem.n_items)
    np.maximum.at(
        dominant_support,
        problem.cluster_item,
        problem.cluster_support.astype(np.float64),
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        dominance = np.where(providers > 0, dominant_support / providers, 0.0)
    eligible_items = (dominance >= dominance_threshold) & (
        providers >= min_providers
    )

    # The pseudo-truth on an eligible item is its dominant cluster.
    item_best = np.zeros(problem.n_items, dtype=np.int64)
    best_support = np.full(problem.n_items, -1.0)
    for cluster in range(problem.n_clusters):
        item = problem.cluster_item[cluster]
        support = problem.cluster_support[cluster]
        if support > best_support[item]:
            best_support[item] = support
            item_best[item] = cluster

    claim_eligible = eligible_items[problem.claim_item]
    claim_correct = (
        problem.claim_cluster == item_best[problem.claim_item]
    ) & claim_eligible

    hits = np.bincount(
        problem.claim_source,
        weights=claim_correct.astype(np.float64),
        minlength=problem.n_sources,
    )
    totals = np.bincount(
        problem.claim_source,
        weights=claim_eligible.astype(np.float64),
        minlength=problem.n_sources,
    )
    seed = (hits + smoothing * prior) / (totals + smoothing)
    return {
        problem.sources[i]: float(np.clip(seed[i], 0.02, 0.98))
        for i in range(problem.n_sources)
    }


def seed_coverage(
    problem: FusionProblem,
    dominance_threshold: float = DEFAULT_DOMINANCE_THRESHOLD,
    min_providers: int = DEFAULT_MIN_PROVIDERS,
) -> float:
    """Fraction of items consistent enough to contribute to the seed."""
    providers = problem.providers_per_item
    dominant_support = np.zeros(problem.n_items)
    np.maximum.at(
        dominant_support,
        problem.cluster_item,
        problem.cluster_support.astype(np.float64),
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        dominance = np.where(providers > 0, dominant_support / providers, 0.0)
    eligible = (dominance >= dominance_threshold) & (providers >= min_providers)
    return float(eligible.mean()) if problem.n_items else 0.0
