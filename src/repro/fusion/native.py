"""Opt-in native execution engine for the fixed-point solver.

Every fusion method of the paper iterates the same two maps — votes from
trust, trust from votes — over the compiled flat arrays of
:class:`~repro.fusion.base.FusionProblem`.  PR 5 stripped the allocator out
of that loop; what remains is numpy kernel-launch overhead on many small
segment ops (``bincount`` / ``reduceat`` / scatter chains).  This module
fuses each method family's whole round — votes → argmax → trust update →
convergence norm — into one ``@njit`` kernel over the compiled arrays, so a
round is a single native call instead of a dozen ufunc dispatches.

Engine contract
---------------
* **Opt-in and optional.**  ``numba`` is imported behind a guard; when it is
  absent the kernels below are plain Python functions.  Requesting the
  native engine without numba degrades to the numpy engine with a single
  warning per process (see :func:`warn_unavailable`) — nothing else changes.
  Tests force the dispatch path without numba via :data:`FORCE`, which runs
  the identical kernels interpreted.
* **Bit-identity where the arithmetic allows it.**  The numpy kernels
  accumulate with ``np.bincount(weights=...)`` / ``np.add.at`` — sequential
  sums in input order — and the loops below accumulate in the same order, so
  methods whose rounds are pure arithmetic reproduce the numpy engine
  bit for bit: **Vote, Hub, AvgLog, 2-Estimates, 3-Estimates** (AvgLog's
  round-invariant ``log`` factor is precomputed with numpy).
* **Tolerance contract for transcendental kernels.**  Methods whose rounds
  evaluate ``exp`` / ``log`` / ``pow`` per round (**Invest, PooledInvest,
  Cosine, TruthFinder and the ACCU family**) may differ from numpy in the
  last ulp per call, which can compound across rounds: the contract —
  enforced by ``tests/fusion/test_native_equivalence.py`` — is *equal
  selections*, trust within a small absolute tolerance, and round counts
  that may differ by the convergence threshold landing on a different side.
* **Fallback methods.**  ``AccuCopy`` interleaves scipy-sparse copy
  detection with the fixed point and has no native program; it (and any
  subclass of a registered method, e.g. the per-category extension) simply
  runs on the numpy engine.  :func:`solve` returns ``None`` and the caller
  falls through — requesting ``engine="native"`` is always safe.
"""

from __future__ import annotations

import math
import time
import warnings
from typing import Callable, Dict, Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised on the numba CI leg
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False

    def _njit(*args, **kwargs):
        """No-op decorator: without numba the kernels run interpreted."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


#: Tests set this to run the native dispatch path without numba installed
#: (the kernels execute interpreted — identical arithmetic, tiny inputs).
FORCE = False

_WARNED = False


def available() -> bool:
    """Whether the native engine can execute (numba present, or forced)."""
    return HAVE_NUMBA or FORCE


def warn_unavailable() -> None:
    """Warn — once per process — that native was requested without numba."""
    global _WARNED
    if not _WARNED:
        _WARNED = True
        warnings.warn(
            "native engine requested but numba is not installed; "
            "falling back to the numpy engine (identical results)",
            RuntimeWarning,
            stacklevel=3,
        )


# --------------------------------------------------------------------------
# Shared primitives.  Loops accumulate in input order, matching np.bincount
# and np.add.at; max/min reductions are order-insensitive.
# --------------------------------------------------------------------------
@_njit(cache=True)
def _argmax_per_item(scores, item_start, selected):
    """First index attaining each item's segment max (NaN wins, like numpy)."""
    for i in range(item_start.shape[0] - 1):
        s = item_start[i]
        e = item_start[i + 1]
        m = scores[s]
        for c in range(s + 1, e):
            v = scores[c]
            if v > m or v != v:  # np.maximum propagates NaN
                m = v
        for c in range(s, e):
            v = scores[c]
            if v != v or v == m:
                selected[i] = c
                break


@_njit(cache=True)
def _max_abs_diff(new, old):
    delta = 0.0
    for i in range(new.shape[0]):
        d = new[i] - old[i]
        if d < 0.0:
            d = -d
        if d > delta:
            delta = d
    return delta


@_njit(cache=True)
def _minmax_inplace(values):
    """Affine re-scale onto [0, 1] in place (clip when constant)."""
    lo = values[0]
    hi = values[0]
    for i in range(values.shape[0]):
        v = values[i]
        if v < lo:
            lo = v
        if v > hi:
            hi = v
    if hi - lo < 1e-9:
        for i in range(values.shape[0]):
            v = values[i]
            if v < 0.0:
                values[i] = 0.0
            elif v > 1.0:
                values[i] = 1.0
    else:
        scale = hi - lo
        for i in range(values.shape[0]):
            values[i] = (values[i] - lo) / scale


# --------------------------------------------------------------------------
# Fused per-round kernels, one per method family.  Each runs a complete
# fixed-point round — votes, argmax, trust update, convergence norm — and
# returns the L-infinity trust delta.
# --------------------------------------------------------------------------
@_njit(cache=True)
def _round_vote(support_f, item_start, trust, new_trust, selected):
    _argmax_per_item(support_f, item_start, selected)
    for s in range(trust.shape[0]):
        new_trust[s] = trust[s]
    return 0.0


@_njit(cache=True)
def _round_hub(
    trust, new_trust, selected,
    claim_source, claim_cluster, item_start,
    counts_floor, log_counts, use_log, scores,
):
    n_claims = claim_source.shape[0]
    n_clusters = scores.shape[0]
    for c in range(n_clusters):
        scores[c] = 0.0
    for k in range(n_claims):
        scores[claim_cluster[k]] += trust[claim_source[k]]
    peak = scores[0]
    for c in range(1, n_clusters):
        if scores[c] > peak:
            peak = scores[c]
    if peak > 0.0:
        for c in range(n_clusters):
            scores[c] = scores[c] / peak
    _argmax_per_item(scores, item_start, selected)
    n_sources = new_trust.shape[0]
    for s in range(n_sources):
        new_trust[s] = 0.0
    for k in range(n_claims):
        new_trust[claim_source[k]] += scores[claim_cluster[k]]
    if use_log:
        for s in range(n_sources):
            new_trust[s] = log_counts[s] * new_trust[s] / counts_floor[s]
    tpeak = new_trust[0]
    for s in range(1, n_sources):
        if new_trust[s] > tpeak:
            tpeak = new_trust[s]
    if tpeak > 0.0:
        for s in range(n_sources):
            new_trust[s] = new_trust[s] / tpeak
    return _max_abs_diff(new_trust, trust)


@_njit(cache=True)
def _round_invest(
    trust, new_trust, selected,
    claim_source, claim_cluster, cluster_item, item_start,
    counts_floor, growth, pooled,
    invested, scores, item_pool, item_grown, per_claim,
):
    n_claims = claim_source.shape[0]
    n_clusters = scores.shape[0]
    n_items = item_start.shape[0] - 1
    for k in range(n_claims):
        s = claim_source[k]
        per_claim[k] = trust[s] / counts_floor[s]
    for c in range(n_clusters):
        invested[c] = 0.0
    for k in range(n_claims):
        invested[claim_cluster[k]] += per_claim[k]
    if pooled:
        for i in range(n_items):
            item_pool[i] = 0.0
            item_grown[i] = 0.0
        for c in range(n_clusters):
            grown = invested[c] ** growth
            scores[c] = grown
            item_pool[cluster_item[c]] += invested[c]
            item_grown[cluster_item[c]] += grown
        for c in range(n_clusters):
            denom = item_grown[cluster_item[c]]
            if denom < 1e-12:
                denom = 1e-12
            scores[c] = scores[c] * (item_pool[cluster_item[c]] / denom)
    else:
        for c in range(n_clusters):
            scores[c] = invested[c] ** growth
    _argmax_per_item(scores, item_start, selected)
    n_sources = new_trust.shape[0]
    for s in range(n_sources):
        new_trust[s] = 0.0
    for k in range(n_claims):
        denom = invested[claim_cluster[k]]
        if denom < 1e-12:
            denom = 1e-12
        share = per_claim[k] / denom
        new_trust[claim_source[k]] += scores[claim_cluster[k]] * share
    if not pooled:
        peak = new_trust[0]
        for s in range(1, n_sources):
            if new_trust[s] > peak:
                peak = new_trust[s]
        if peak > 0.0:
            for s in range(n_sources):
                new_trust[s] = new_trust[s] / peak
    return _max_abs_diff(new_trust, trust)


@_njit(cache=True)
def _round_cosine(
    trust, new_trust, selected,
    claim_source, claim_cluster, claim_item, cluster_item, item_start,
    clusters_per_item, damping, exponent,
    per_claim, positive, scores, item_a, item_b, src_a, src_b, src_c,
):
    n_claims = claim_source.shape[0]
    n_clusters = positive.shape[0]
    n_items = item_start.shape[0] - 1
    n_sources = new_trust.shape[0]
    for k in range(n_claims):
        t = trust[claim_source[k]]
        a = abs(t) ** exponent
        if t > 0.0:
            per_claim[k] = a
        elif t < 0.0:
            per_claim[k] = -a
        else:
            per_claim[k] = 0.0 * a
    for c in range(n_clusters):
        positive[c] = 0.0
    for i in range(n_items):
        item_a[i] = 0.0  # signed investment per item
        item_b[i] = 0.0  # absolute weight per item
    for k in range(n_claims):
        positive[claim_cluster[k]] += per_claim[k]
        w = per_claim[k]
        if w < 0.0:
            w = -w
        item_b[claim_item[k]] += w
    for c in range(n_clusters):
        item_a[cluster_item[c]] += positive[c]
    for c in range(n_clusters):
        denom = item_b[cluster_item[c]]
        if denom < 1e-9:
            denom = 1e-9
        scores[c] = (2.0 * positive[c] - item_a[cluster_item[c]]) / denom
    _argmax_per_item(scores, item_start, selected)
    # item-level score sums for the per-claim dot products
    for i in range(n_items):
        item_a[i] = 0.0  # sum of scores
        item_b[i] = 0.0  # sum of squared scores
    for c in range(n_clusters):
        item_a[cluster_item[c]] += scores[c]
        item_b[cluster_item[c]] += scores[c] ** 2
    for s in range(n_sources):
        src_a[s] = 0.0  # dots
        src_b[s] = 0.0  # norm_sq
        src_c[s] = 0.0  # positions
    for k in range(n_claims):
        s = claim_source[k]
        i = claim_item[k]
        src_a[s] += 2.0 * scores[claim_cluster[k]] - item_a[i]
        src_b[s] += item_b[i]
        src_c[s] += clusters_per_item[i]
    for s in range(n_sources):
        denom = math.sqrt(src_c[s]) * math.sqrt(src_b[s])
        if denom < 1e-9:
            denom = 1e-9
        new_trust[s] = damping * trust[s] + (1.0 - damping) * (src_a[s] / denom)
    return _max_abs_diff(new_trust, trust)


@_njit(cache=True)
def _round_truthfinder(
    trust, new_trust, selected,
    claim_source, claim_cluster, item_start,
    sim_a, sim_b, sim_w, counts_floor, gamma, rho,
    tau, sigma, scores,
):
    n_claims = claim_source.shape[0]
    n_clusters = sigma.shape[0]
    n_sources = new_trust.shape[0]
    for s in range(n_sources):
        t = trust[s]
        if t < 0.02:
            t = 0.02
        elif t > 0.98:
            t = 0.98
        tau[s] = -math.log(1.0 - t)
    for c in range(n_clusters):
        sigma[c] = 0.0
    for k in range(n_claims):
        sigma[claim_cluster[k]] += tau[claim_source[k]]
    for c in range(n_clusters):
        scores[c] = sigma[c]
    for e in range(sim_a.shape[0]):
        scores[sim_b[e]] += rho * sim_w[e] * sigma[sim_a[e]]
    for c in range(n_clusters):
        scores[c] = 1.0 / (1.0 + math.exp(scores[c] * -gamma))
    _argmax_per_item(scores, item_start, selected)
    for s in range(n_sources):
        new_trust[s] = 0.0
    for k in range(n_claims):
        new_trust[claim_source[k]] += scores[claim_cluster[k]]
    for s in range(n_sources):
        t = new_trust[s] / counts_floor[s]
        if t < 0.02:
            t = 0.02
        elif t > 0.98:
            t = 0.98
        new_trust[s] = t
    return _max_abs_diff(new_trust, trust)


@_njit(cache=True)
def _round_two_estimates(
    trust, new_trust, selected,
    claim_source, claim_cluster, claim_item, cluster_item, item_start,
    cluster_support_f, providers_per_item, clusters_per_item,
    round_estimates,
    support, theta_use, item_a, src_a,
):
    n_claims = claim_source.shape[0]
    n_clusters = support.shape[0]
    n_items = item_start.shape[0] - 1
    n_sources = new_trust.shape[0]
    for c in range(n_clusters):
        support[c] = 0.0
    for k in range(n_claims):
        support[claim_cluster[k]] += trust[claim_source[k]]
    for i in range(n_items):
        item_a[i] = 0.0  # item trust mass
    for c in range(n_clusters):
        item_a[cluster_item[c]] += support[c]
    for c in range(n_clusters):
        item = cluster_item[c]
        providers = providers_per_item[item]
        denier = (providers - cluster_support_f[c]) - (item_a[item] - support[c])
        denom = providers
        if denom < 1.0:
            denom = 1.0
        support[c] = (support[c] + denier) / denom  # theta, pre-rescale
    _minmax_inplace(support)
    if round_estimates:
        for i in range(n_items):
            s = item_start[i]
            e = item_start[i + 1]
            m = support[s]
            for c in range(s + 1, e):
                v = support[c]
                if v > m or v != v:
                    m = v
            threshold = m - 1e-12
            for c in range(s, e):
                if support[c] >= threshold:
                    theta_use[c] = 1.0
                else:
                    theta_use[c] = 0.0
    else:
        for c in range(n_clusters):
            theta_use[c] = support[c]
    _argmax_per_item(support, item_start, selected)
    for i in range(n_items):
        item_a[i] = 0.0  # item theta mass
    for c in range(n_clusters):
        item_a[cluster_item[c]] += theta_use[c]
    for s in range(n_sources):
        new_trust[s] = 0.0
        src_a[s] = 0.0  # positions
    for k in range(n_claims):
        item = claim_item[k]
        own = theta_use[claim_cluster[k]]
        clusters_here = clusters_per_item[item]
        denied = (clusters_here - 1.0) - (item_a[item] - own)
        new_trust[claim_source[k]] += own + denied
        src_a[claim_source[k]] += clusters_here
    for s in range(n_sources):
        denom = src_a[s]
        if denom < 1.0:
            denom = 1.0
        new_trust[s] = new_trust[s] / denom
    _minmax_inplace(new_trust)
    return _max_abs_diff(new_trust, trust)


@_njit(cache=True)
def _round_three_estimates(
    trust, new_trust, selected, difficulty,
    claim_source, claim_cluster, claim_item, cluster_item, item_start,
    providers_per_item, counts_floor,
    error, theta, cluster_a, cluster_b, item_a,
):
    n_claims = claim_source.shape[0]
    n_clusters = theta.shape[0]
    n_items = item_start.shape[0] - 1
    n_sources = new_trust.shape[0]
    for c in range(n_clusters):
        cluster_a[c] = 0.0  # confident mass
        cluster_b[c] = 0.0  # own error mass
    for i in range(n_items):
        item_a[i] = 0.0  # item error mass
    for k in range(n_claims):
        err = (1.0 - trust[claim_source[k]]) * difficulty[claim_cluster[k]]
        if err < 0.0:
            err = 0.0
        elif err > 1.0:
            err = 1.0
        error[k] = err
        cluster_a[claim_cluster[k]] += 1.0 - err
        cluster_b[claim_cluster[k]] += err
        item_a[claim_item[k]] += err
    for c in range(n_clusters):
        item = cluster_item[c]
        denom = providers_per_item[item]
        if denom < 1.0:
            denom = 1.0
        theta[c] = (cluster_a[c] + (item_a[item] - cluster_b[c])) / denom
    _minmax_inplace(theta)
    _argmax_per_item(theta, item_start, selected)
    # difficulty re-estimate: observed error mass over (1 - trust) capacity
    for c in range(n_clusters):
        cluster_a[c] = 0.0  # observed
        cluster_b[c] = 0.0  # capacity
    for k in range(n_claims):
        omt = 1.0 - theta[claim_cluster[k]]
        error[k] = omt
        cluster_a[claim_cluster[k]] += omt
        cluster_b[claim_cluster[k]] += 1.0 - trust[claim_source[k]]
    for c in range(n_clusters):
        denom = cluster_b[c]
        if denom < 1e-9:
            denom = 1e-9
        cluster_a[c] = cluster_a[c] / denom
    _minmax_inplace(cluster_a)
    for c in range(n_clusters):
        difficulty[c] = cluster_a[c]
    for s in range(n_sources):
        new_trust[s] = 0.0
    for k in range(n_claims):
        denom = difficulty[claim_cluster[k]]
        if denom < 0.05:
            denom = 0.05
        new_trust[claim_source[k]] += error[k] / denom
    for s in range(n_sources):
        new_trust[s] = 1.0 - new_trust[s] / counts_floor[s]
    _minmax_inplace(new_trust)
    return _max_abs_diff(new_trust, trust)


@_njit(cache=True)
def _round_accu(
    trust, new_trust, selected,
    claim_cluster, claim_gather, claim_flat, cluster_item, item_start,
    cluster_support_f, pop_discount,
    fmt_gather, fmt_cluster, fmt_w,
    sim_a, sim_b, sim_w,
    counts_flat, counts_floor,
    n_false, rho, n_attrs,
    per_attr, use_pop, use_sim, use_fmt,
    scores, base, src_a,
):
    n_claims = claim_cluster.shape[0]
    n_clusters = scores.shape[0]
    n_items = item_start.shape[0] - 1
    for c in range(n_clusters):
        scores[c] = 0.0
    for k in range(n_claims):
        a = trust[claim_gather[k]]
        if a < 0.02:
            a = 0.02
        elif a > 0.98:
            a = 0.98
        scores[claim_cluster[k]] += math.log(n_false * a / (1.0 - a))
    if use_pop:
        for c in range(n_clusters):
            scores[c] = scores[c] + pop_discount[c] * cluster_support_f[c]
    if use_fmt:
        for e in range(fmt_cluster.shape[0]):
            a = trust[fmt_gather[e]]
            if a < 0.02:
                a = 0.02
            elif a > 0.98:
                a = 0.98
            scores[fmt_cluster[e]] += fmt_w[e] * math.log(
                n_false * a / (1.0 - a)
            )
    if use_sim:
        for c in range(n_clusters):
            base[c] = scores[c]
        for e in range(sim_a.shape[0]):
            scores[sim_b[e]] += rho * sim_w[e] * base[sim_a[e]]
    # stabilized per-item softmax, accumulating in cluster order
    for i in range(n_items):
        s = item_start[i]
        e = item_start[i + 1]
        m = scores[s]
        for c in range(s + 1, e):
            v = scores[c]
            if v > m or v != v:
                m = v
        denom = 0.0
        for c in range(s, e):
            x = math.exp(scores[c] - m)
            scores[c] = x
            denom += x
        for c in range(s, e):
            scores[c] = scores[c] / denom
    _argmax_per_item(scores, item_start, selected)
    n_flat = new_trust.shape[0]
    for j in range(n_flat):
        new_trust[j] = 0.0
    for k in range(n_claims):
        new_trust[claim_flat[k]] += scores[claim_cluster[k]]
    if per_attr:
        n_sources = src_a.shape[0]
        for s in range(n_sources):
            gsum = 0.0
            gcount = 0.0
            for a in range(n_attrs):
                gsum += new_trust[s * n_attrs + a]
                gcount += counts_flat[s * n_attrs + a]
            if gcount < 1.0:
                gcount = 1.0
            src_a[s] = gsum / gcount
        for s in range(n_sources):
            for a in range(n_attrs):
                j = s * n_attrs + a
                t = (new_trust[j] + 4.0 * src_a[s]) / (counts_flat[j] + 4.0)
                if t < 0.02:
                    t = 0.02
                elif t > 0.98:
                    t = 0.98
                new_trust[j] = t
    else:
        for s in range(n_flat):
            t = new_trust[s] / counts_floor[s]
            if t < 0.02:
                t = 0.02
            elif t > 0.98:
                t = 0.98
            new_trust[s] = t
    return _max_abs_diff(new_trust, trust)


# --------------------------------------------------------------------------
# Program builders: bind a method instance + compiled problem to a fused
# round kernel.  Builders are registered against the *exact* class from the
# registry — subclasses (e.g. the per-category extension) keep custom trust
# layouts the kernels know nothing about, so they fall through to numpy.
# --------------------------------------------------------------------------
_EMPTY_F = np.zeros(0, dtype=np.float64)
_EMPTY_I = np.zeros(0, dtype=np.int64)


def _i8(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


def _f8(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float64)


def _build_vote(method, problem, state):
    support = problem.cluster_support_f
    item_start = _i8(problem.item_start)

    def step(trust, new_trust, selected):
        return _round_vote(support, item_start, trust, new_trust, selected)

    return step


def _build_hub(method, problem, state, use_log=False):
    claim_source = _i8(problem.claim_source)
    claim_cluster = _i8(problem.claim_cluster)
    item_start = _i8(problem.item_start)
    counts_floor = problem.claims_per_source_floor
    if use_log:
        # Round-invariant, so computed with numpy once: the native trust
        # update stays bit-identical to the numpy engine's np.log.
        log_counts = problem._invariant(
            "nat_avglog_log",
            lambda: np.log(np.maximum(counts_floor, 2.0)),
        )
    else:
        log_counts = _EMPTY_F
    scores = problem.scratch("nat_scores", problem.n_clusters)

    def step(trust, new_trust, selected):
        return _round_hub(
            trust, new_trust, selected,
            claim_source, claim_cluster, item_start,
            counts_floor, log_counts, use_log, scores,
        )

    return step


def _build_avglog(method, problem, state):
    return _build_hub(method, problem, state, use_log=True)


def _build_invest(method, problem, state, pooled=False):
    claim_source = _i8(problem.claim_source)
    claim_cluster = _i8(problem.claim_cluster)
    cluster_item = _i8(problem.cluster_item)
    item_start = _i8(problem.item_start)
    counts_floor = problem.claims_per_source_floor
    growth = float(method.growth)
    nc, ni, nk = problem.n_clusters, problem.n_items, problem.n_claims
    invested = problem.scratch("nat_invested", nc)
    scores = problem.scratch("nat_scores", nc)
    item_pool = problem.scratch("nat_item_a", ni)
    item_grown = problem.scratch("nat_item_b", ni)
    per_claim = problem.scratch("nat_claim", nk)

    def step(trust, new_trust, selected):
        return _round_invest(
            trust, new_trust, selected,
            claim_source, claim_cluster, cluster_item, item_start,
            counts_floor, growth, pooled,
            invested, scores, item_pool, item_grown, per_claim,
        )

    return step


def _build_pooled_invest(method, problem, state):
    return _build_invest(method, problem, state, pooled=True)


def _build_cosine(method, problem, state):
    claim_source = _i8(problem.claim_source)
    claim_cluster = _i8(problem.claim_cluster)
    claim_item = _i8(problem.claim_item)
    cluster_item = _i8(problem.cluster_item)
    item_start = _i8(problem.item_start)
    clusters_per_item = problem.clusters_per_item
    nc, ni, nk = problem.n_clusters, problem.n_items, problem.n_claims
    ns = problem.n_sources
    per_claim = problem.scratch("nat_claim", nk)
    positive = problem.scratch("nat_invested", nc)
    scores = problem.scratch("nat_scores", nc)
    item_a = problem.scratch("nat_item_a", ni)
    item_b = problem.scratch("nat_item_b", ni)
    src_a = problem.scratch("nat_src_a", ns)
    src_b = problem.scratch("nat_src_b", ns)
    src_c = problem.scratch("nat_src_c", ns)

    def step(trust, new_trust, selected):
        return _round_cosine(
            trust, new_trust, selected,
            claim_source, claim_cluster, claim_item, cluster_item, item_start,
            clusters_per_item, float(method.damping), float(method.exponent),
            per_claim, positive, scores, item_a, item_b, src_a, src_b, src_c,
        )

    return step


def _build_truthfinder(method, problem, state):
    claim_source = _i8(problem.claim_source)
    claim_cluster = _i8(problem.claim_cluster)
    item_start = _i8(problem.item_start)
    sim_a, sim_b, sim_w = problem.similarity_edges
    sim_a, sim_b, sim_w = _i8(sim_a), _i8(sim_b), _f8(sim_w)
    counts_floor = problem.claims_per_source_floor
    nc, ns = problem.n_clusters, problem.n_sources
    tau = problem.scratch("nat_src_a", ns)
    sigma = problem.scratch("nat_invested", nc)
    scores = problem.scratch("nat_scores", nc)

    def step(trust, new_trust, selected):
        return _round_truthfinder(
            trust, new_trust, selected,
            claim_source, claim_cluster, item_start,
            sim_a, sim_b, sim_w, counts_floor,
            float(method.gamma), float(method.rho),
            tau, sigma, scores,
        )

    return step


def _build_two_estimates(method, problem, state):
    claim_source = _i8(problem.claim_source)
    claim_cluster = _i8(problem.claim_cluster)
    claim_item = _i8(problem.claim_item)
    cluster_item = _i8(problem.cluster_item)
    item_start = _i8(problem.item_start)
    nc, ni, ns = problem.n_clusters, problem.n_items, problem.n_sources
    cluster_support_f = problem.cluster_support_f
    providers_per_item = problem.providers_per_item
    clusters_per_item = problem.clusters_per_item
    round_estimates = bool(method.round_estimates)
    support = problem.scratch("nat_scores", nc)
    theta_use = problem.scratch("nat_invested", nc)
    item_a = problem.scratch("nat_item_a", ni)
    src_a = problem.scratch("nat_src_a", ns)

    def step(trust, new_trust, selected):
        return _round_two_estimates(
            trust, new_trust, selected,
            claim_source, claim_cluster, claim_item, cluster_item, item_start,
            cluster_support_f, providers_per_item, clusters_per_item,
            round_estimates,
            support, theta_use, item_a, src_a,
        )

    return step


def _build_three_estimates(method, problem, state):
    claim_source = _i8(problem.claim_source)
    claim_cluster = _i8(problem.claim_cluster)
    claim_item = _i8(problem.claim_item)
    cluster_item = _i8(problem.cluster_item)
    item_start = _i8(problem.item_start)
    difficulty = state["difficulty"]
    providers_per_item = problem.providers_per_item
    counts_floor = problem.claims_per_source_floor
    nc, ni, nk = problem.n_clusters, problem.n_items, problem.n_claims
    error = problem.scratch("nat_claim", nk)
    theta = problem.scratch("nat_scores", nc)
    cluster_a = problem.scratch("nat_invested", nc)
    cluster_b = problem.scratch("nat_cluster_b", nc)
    item_a = problem.scratch("nat_item_a", ni)

    def step(trust, new_trust, selected):
        return _round_three_estimates(
            trust, new_trust, selected, difficulty,
            claim_source, claim_cluster, claim_item, cluster_item, item_start,
            providers_per_item, counts_floor,
            error, theta, cluster_a, cluster_b, item_a,
        )

    return step


def _build_accu(method, problem, state):
    per_attr = bool(method.per_attribute_trust)
    n_attrs = problem.n_attrs
    claim_cluster = _i8(problem.claim_cluster)
    item_start = _i8(problem.item_start)
    claim_gather = (
        _i8(problem.claim_attr_flat) if per_attr
        else _i8(problem.claim_source)
    )
    use_pop = bool(method.use_popularity)
    use_sim = bool(method.use_similarity)
    use_fmt = bool(method.use_format)
    pop_discount = (
        method._popularity_discount(problem) if use_pop else _EMPTY_F
    )
    if use_fmt:
        fmt_source, fmt_cluster, fmt_w = problem.format_edges
        if per_attr:
            fmt_attr = problem.item_attr[problem.cluster_item[fmt_cluster]]
            fmt_gather = _i8(fmt_source * n_attrs + fmt_attr)
        else:
            fmt_gather = _i8(fmt_source)
        fmt_cluster = _i8(fmt_cluster)
        fmt_w = _f8(fmt_w)
    else:
        fmt_gather, fmt_cluster, fmt_w = _EMPTY_I, _EMPTY_I, _EMPTY_F
    if use_sim:
        sim_a, sim_b, sim_w = problem.similarity_edges
        sim_a, sim_b, sim_w = _i8(sim_a), _i8(sim_b), _f8(sim_w)
    else:
        sim_a, sim_b, sim_w = _EMPTY_I, _EMPTY_I, _EMPTY_F
    if per_attr:
        counts_flat = np.ascontiguousarray(
            problem.claims_per_source_attr
        ).reshape(-1)
    else:
        counts_flat = _EMPTY_F
    nc, ns = problem.n_clusters, problem.n_sources
    cluster_item = _i8(problem.cluster_item)
    scores = problem.scratch("nat_scores", nc)
    base = problem.scratch("nat_invested", nc)
    src_a = problem.scratch("nat_src_a", ns)
    # The flat accumulation index for the trust update: per-(source, attr)
    # cells when trust is per attribute, plain sources otherwise — the same
    # index the vote gather uses.
    claim_flat = claim_gather

    def step(trust, new_trust, selected):
        return _round_accu(
            trust, new_trust, selected,
            claim_cluster, claim_gather, claim_flat,
            cluster_item, item_start,
            problem.cluster_support_f, pop_discount,
            fmt_gather, fmt_cluster, fmt_w,
            sim_a, sim_b, sim_w,
            counts_flat, problem.claims_per_source_floor,
            float(method.n_false_values), float(method.rho), n_attrs,
            per_attr, use_pop, use_sim, use_fmt,
            scores, base, src_a,
        )

    return step


def _registry():
    from repro.fusion.bayesian import (
        AccuFormat,
        AccuFormatAttr,
        AccuPr,
        AccuSim,
        AccuSimAttr,
        PopAccu,
        TruthFinder,
    )
    from repro.fusion.ir import Cosine, ThreeEstimates, TwoEstimates
    from repro.fusion.vote import Vote
    from repro.fusion.weblink import AvgLog, Hub, Invest, PooledInvest

    return {
        "Vote": (Vote, _build_vote),
        "Hub": (Hub, _build_hub),
        "AvgLog": (AvgLog, _build_avglog),
        "Invest": (Invest, _build_invest),
        "PooledInvest": (PooledInvest, _build_pooled_invest),
        "2-Estimates": (TwoEstimates, _build_two_estimates),
        "3-Estimates": (ThreeEstimates, _build_three_estimates),
        "Cosine": (Cosine, _build_cosine),
        "TruthFinder": (TruthFinder, _build_truthfinder),
        "AccuPr": (AccuPr, _build_accu),
        "PopAccu": (PopAccu, _build_accu),
        "AccuSim": (AccuSim, _build_accu),
        "AccuFormat": (AccuFormat, _build_accu),
        "AccuSimAttr": (AccuSimAttr, _build_accu),
        "AccuFormatAttr": (AccuFormatAttr, _build_accu),
        # AccuCopy interleaves scipy-sparse copy detection: numpy fallback.
    }


_BUILDERS: Optional[Dict[str, Tuple[type, Callable]]] = None


def _builders() -> Dict[str, Tuple[type, Callable]]:
    global _BUILDERS
    if _BUILDERS is None:
        _BUILDERS = _registry()
    return _BUILDERS


#: Methods with a fused native program (the rest run the numpy fallback).
def native_method_names() -> Tuple[str, ...]:
    return tuple(_builders())


#: Methods whose native rounds are bit-identical to the numpy engine.
EXACT_METHODS = ("Vote", "Hub", "AvgLog", "2-Estimates", "3-Estimates")


def supports(spec) -> bool:
    """Whether ``spec`` has a native program this process can execute."""
    if not available():
        return False
    method = getattr(spec, "method", None)
    entry = _builders().get(spec.name)
    return entry is not None and method is not None and type(method) is entry[0]


def solve(spec, problem, state, profiler=None):
    """Run ``spec``'s fixed point natively; ``None`` if unsupported.

    Mirrors :func:`repro.fusion.spec.run_fixed_point`: mutates ``state`` in
    place and returns ``(selected, rounds, converged)``.  Callers fall
    through to the numpy loop on ``None`` — unsupported methods, subclassed
    methods with custom trust layouts, or numba being absent (unless forced).
    """
    if not supports(spec):
        return None
    entry = _builders()[spec.name]
    build_started = time.perf_counter()
    step = entry[1](spec.method, problem, state)
    trust0 = state["trust"]
    flat = int(trust0.size)
    cur = problem.scratch("nat_trust_a", flat)
    nxt = problem.scratch("nat_trust_b", flat)
    np.copyto(cur, trust0.reshape(flat))
    selected = np.empty(problem.n_items, dtype=np.int64)
    if profiler is not None:
        profiler.add("native_build", time.perf_counter() - build_started)
    rounds = 0
    converged = False
    for rounds in range(1, spec.max_rounds + 1):
        started = time.perf_counter() if profiler is not None else 0.0
        delta = step(cur, nxt, selected)
        if profiler is not None:
            profiler.add("native_round", time.perf_counter() - started)
        cur, nxt = nxt, cur
        if delta < spec.tolerance:
            converged = True
            break
    # Sessions carry trust across days and problems outlive solves, so the
    # final trust must not alias the scratch pool.
    state["trust"] = cur.copy().reshape(trust0.shape)
    return selected, rounds, converged
