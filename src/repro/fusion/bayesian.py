"""Bayesian fusion methods (Section 4.1).

* **TRUTHFINDER** (Yin et al.) — a value's confidence is a logistic function
  of the sum of its providers' ``-ln(1 - trust)`` scores, boosted by the
  scores of similar values; a source's trust is the mean confidence of its
  claims.
* **ACCUPR** (Dong et al.) — proper Bayesian conditioning assuming ``n``
  uniformly-distributed false values per item; mutually exclusive values
  yield a per-item softmax over vote counts ``ln(n * A / (1 - A))``.
* **POPACCU** (Dong, Saha & Srivastava) — drops the uniform-false-value
  assumption: a vote on value ``v`` is discounted by the observed popularity
  of ``v`` among the item's claims, so popular (e.g. copied) false values
  stop looking surprising.
* **ACCUSIM / ACCUFORMAT** — ACCUPR plus value-similarity / formatting
  evidence.
* **...ATTR variants** — maintain trust per (source, attribute) pair
  (Section 4.1's "distinguish trustworthiness for each attribute"),
  smoothed toward the source's global accuracy for thin cells.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.fusion.base import (
    FusionMethod,
    FusionProblem,
    accumulate_by_cluster,
    accumulate_by_source,
    softmax_per_item,
)

_EPS = 1e-6
#: Cap on trust so vote counts stay finite.
_TRUST_CLIP = (0.02, 0.98)
#: Smoothing pseudo-count for per-attribute trust cells.
_ATTR_SMOOTHING = 4.0


class TruthFinder(FusionMethod):
    """Yin et al.'s TRUTHFINDER with value-similarity boost."""

    name = "TruthFinder"
    initial_trust = 0.9

    def __init__(self, gamma: float = 0.3, rho: float = 0.5, **kwargs):
        super().__init__(**kwargs)
        self.gamma = gamma
        self.rho = rho

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        trust = np.clip(state["trust"], *_TRUST_CLIP)
        tau = -np.log(1.0 - trust)
        per_claim = np.take(
            tau, problem.claim_source,
            out=problem.scratch("tf_claim", problem.n_claims), mode="clip",
        )
        sigma = accumulate_by_cluster(problem, per_claim)
        sim_a, sim_b, sim_w = problem.similarity_edges
        boosted = sigma.copy()
        if len(sim_a):
            # np.add.at accumulates in edge order — the float-summation
            # order the equivalence suites pin — so it stays a scatter.
            np.add.at(boosted, sim_b, self.rho * sim_w * sigma[sim_a])
        np.multiply(boosted, -self.gamma, out=boosted)
        np.exp(boosted, out=boosted)
        np.add(boosted, 1.0, out=boosted)
        np.divide(1.0, boosted, out=boosted)
        return boosted

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        per_claim = np.take(
            scores, problem.claim_cluster,
            out=problem.scratch("tf_claim", problem.n_claims), mode="clip",
        )
        sums = accumulate_by_source(problem, per_claim)
        np.divide(sums, problem.claims_per_source_floor, out=sums)
        return np.clip(sums, *_TRUST_CLIP, out=sums)


class AccuPr(FusionMethod):
    """Dong et al.'s ACCU with mutually-exclusive values (softmax).

    Subclass hooks: ``use_similarity``, ``use_format``, ``use_popularity``
    toggle the ACCUSIM / ACCUFORMAT / POPACCU refinements, and
    ``per_attribute_trust`` switches to per-(source, attribute) accuracies.
    """

    name = "AccuPr"
    initial_trust = 0.8
    use_similarity = False
    use_format = False
    use_popularity = False

    def __init__(self, n_false_values: float = 10.0, rho: float = 0.5, **kwargs):
        super().__init__(**kwargs)
        self.n_false_values = n_false_values
        self.rho = rho

    # ------------------------------------------------------------- vote math
    def _vote_counts(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        trust = state["trust"]
        if type(self)._claim_trust is FusionMethod._claim_trust:
            # Base trust layouts gather straight into the scratch pool.
            accuracy = problem.scratch("accu_claim", problem.n_claims)
            if self.per_attribute_trust:
                np.take(
                    trust.reshape(-1), problem.claim_attr_flat,
                    out=accuracy, mode="clip",
                )
            else:
                np.take(trust, problem.claim_source, out=accuracy, mode="clip")
            np.clip(accuracy, *_TRUST_CLIP, out=accuracy)
        else:
            # Subclasses with custom trust layouts (e.g. the per-category
            # extension) own the gather; their result is a fresh array, so
            # the in-place log math below stays safe.
            accuracy = np.clip(self._claim_trust(problem, state), *_TRUST_CLIP)
        # log(n * a / (1 - a)), op for op as the expression evaluates, with
        # the temporaries living in the scratch pool.
        denom = problem.scratch("accu_claim2", problem.n_claims)
        np.subtract(1.0, accuracy, out=denom)
        np.multiply(self.n_false_values, accuracy, out=accuracy)
        np.divide(accuracy, denom, out=accuracy)
        np.log(accuracy, out=accuracy)
        return accuracy

    def _popularity_discount(self, problem: FusionProblem) -> np.ndarray:
        """POPACCU: ``-ln rho(v | d)`` replaces the uniform ``ln n`` term.

        Selection-independent, so it is computed once per (problem, n) and
        reused by every later round.
        """
        def build():
            support = problem.cluster_support.astype(np.float64)
            providers = problem.providers_per_item[problem.cluster_item]
            popularity = (support + 0.5) / (providers + 0.5 * problem.clusters_per_item[problem.cluster_item])
            return -np.log(popularity) - np.log(self.n_false_values)

        return problem._invariant(f"pop_discount_{self.n_false_values}", build)

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        per_claim = self._vote_counts(problem, state)
        scores = accumulate_by_cluster(problem, per_claim)
        if self.use_popularity:
            scores = scores + self._popularity_discount(problem) * problem.cluster_support
        if self.use_format:
            fmt_source, fmt_cluster, fmt_w = problem.format_edges
            if len(fmt_source):
                trust = state["trust"]
                if self.per_attribute_trust:
                    fmt_attr = problem.item_attr[problem.cluster_item[fmt_cluster]]
                    acc = np.clip(trust[fmt_source, fmt_attr], *_TRUST_CLIP)
                else:
                    acc = np.clip(trust[fmt_source], *_TRUST_CLIP)
                votes = np.log(self.n_false_values * acc / (1.0 - acc))
                np.add.at(scores, fmt_cluster, fmt_w * votes)
        if self.use_similarity:
            sim_a, sim_b, sim_w = problem.similarity_edges
            if len(sim_a):
                base = scores.copy()
                np.add.at(scores, sim_b, self.rho * sim_w * base[sim_a])
        probabilities = softmax_per_item(problem, scores)
        return probabilities

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        per_claim = np.take(
            scores, problem.claim_cluster,
            out=problem.scratch("accu_claim", problem.n_claims), mode="clip",
        )
        if self.per_attribute_trust:
            sums = accumulate_by_source(problem, per_claim, per_attribute=True)
            counts = problem.claims_per_source_attr
            global_sums = sums.sum(axis=1)
            global_counts = np.maximum(counts.sum(axis=1), 1.0)
            global_acc = global_sums / global_counts
            smoothed = (sums + _ATTR_SMOOTHING * global_acc[:, None]) / (
                counts + _ATTR_SMOOTHING
            )
            return np.clip(smoothed, *_TRUST_CLIP, out=smoothed)
        sums = accumulate_by_source(problem, per_claim)
        np.divide(sums, problem.claims_per_source_floor, out=sums)
        return np.clip(sums, *_TRUST_CLIP, out=sums)


class PopAccu(AccuPr):
    """ACCUPR with the observed false-value popularity (no uniform prior)."""

    name = "PopAccu"
    use_popularity = True


class AccuSim(AccuPr):
    """ACCUPR plus value-similarity evidence."""

    name = "AccuSim"
    use_similarity = True


class AccuFormat(AccuSim):
    """ACCUSIM plus formatting (granularity subsumption) evidence."""

    name = "AccuFormat"
    use_format = True


class AccuSimAttr(AccuSim):
    """ACCUSIM with per-attribute source trust."""

    name = "AccuSimAttr"
    per_attribute_trust = True


class AccuFormatAttr(AccuFormat):
    """ACCUFORMAT with per-attribute source trust."""

    name = "AccuFormatAttr"
    per_attribute_trust = True
