"""Ensembles of fusion methods (Section 5).

The paper: *"We neither observed one fusion method that always dominates
the others ... Can we combine the results of different fusion models to get
better results?"*

:func:`ensemble_vote` combines any set of :class:`FusionResult`s by
(optionally weighted) majority vote over the selected values, with
tolerance-aware value matching so near-identical numeric picks pool their
votes.  Weights default to uniform; passing each method's precision on a
validation slice turns it into a simple stacked ensemble.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.dataset import Dataset
from repro.core.records import DataItem, Value
from repro.errors import FusionError
from repro.fusion.base import FusionResult


def ensemble_vote(
    dataset: Dataset,
    results: Sequence[FusionResult],
    weights: Optional[Sequence[float]] = None,
    name: str = "Ensemble",
) -> FusionResult:
    """Combine fusion results by tolerance-aware weighted voting.

    Ties break toward the earlier (presumably more trusted) method in
    ``results``, making the combination deterministic.
    """
    if not results:
        raise FusionError("ensemble needs at least one result")
    if weights is None:
        weights = [1.0] * len(results)
    if len(weights) != len(results):
        raise FusionError("one weight per result required")
    if any(w < 0 for w in weights):
        raise FusionError("weights must be non-negative")

    items = set()
    for result in results:
        items.update(result.selected)

    selected: Dict[DataItem, Value] = {}
    for item in items:
        candidates: List[Tuple[Value, float, int]] = []  # value, votes, order
        for order, (result, weight) in enumerate(zip(results, weights)):
            value = result.selected.get(item)
            if value is None:
                continue
            for idx, (existing, votes, first) in enumerate(candidates):
                if dataset.values_match(item.attribute, existing, value):
                    candidates[idx] = (existing, votes + weight, first)
                    break
            else:
                candidates.append((value, weight, order))
        candidates.sort(key=lambda entry: (-entry[1], entry[2]))
        selected[item] = candidates[0][0]

    # Combined trust: weighted mean of the member methods' (normalized) trust.
    trust: Dict[str, float] = {}
    total_weight = sum(weights) or 1.0
    for result, weight in zip(results, weights):
        for source, value in result.trust.items():
            trust[source] = trust.get(source, 0.0) + weight * value / total_weight

    return FusionResult(
        method=name,
        selected=selected,
        trust=trust,
        rounds=max(result.rounds for result in results),
        converged=all(result.converged for result in results),
        runtime_seconds=sum(result.runtime_seconds for result in results),
        extras={"members": [result.method for result in results]},
    )


def ensemble_of_methods(
    dataset: Dataset,
    method_names: Sequence[str],
    *,
    problem=None,
    weights: Optional[Sequence[float]] = None,
    validation_precisions: Optional[Dict[str, float]] = None,
    method_kwargs: Optional[Dict[str, dict]] = None,
    workers: int = 0,
    scheduler=None,
    name: str = "Ensemble",
) -> FusionResult:
    """Run the member methods (in parallel when asked) and combine them.

    The members share one compiled problem and are independent solves, so
    they fan out through the solve scheduler; the combination itself is
    :func:`ensemble_vote` (or the precision-weighted variant when
    ``validation_precisions`` is given).
    """
    from repro.fusion.base import FusionProblem
    from repro.parallel import solve_methods

    base = problem if problem is not None else FusionProblem(dataset)
    outcomes = solve_methods(
        base,
        list(method_names),
        workers=workers,
        scheduler=scheduler,
        method_kwargs=method_kwargs,
    )
    results = [outcome.result for outcome in outcomes]
    if validation_precisions is not None:
        return precision_weighted_ensemble(
            dataset, results, validation_precisions, name=name
        )
    return ensemble_vote(dataset, results, weights=weights, name=name)


def precision_weighted_ensemble(
    dataset: Dataset,
    results: Sequence[FusionResult],
    validation_precisions: Dict[str, float],
    name: str = "WeightedEnsemble",
) -> FusionResult:
    """Ensemble weighted by each member's validation precision.

    Members missing from ``validation_precisions`` get the mean weight.
    """
    known = [
        validation_precisions[r.method]
        for r in results
        if r.method in validation_precisions
    ]
    fallback = sum(known) / len(known) if known else 1.0
    weights = [
        validation_precisions.get(result.method, fallback) for result in results
    ]
    return ensemble_vote(dataset, results, weights=weights, name=name)
