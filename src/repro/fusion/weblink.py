"""Web-link based fusion methods (Section 4.1).

These methods are inspired by measuring web-page authority from link
analysis:

* **HUB** — Kleinberg's hubs-and-authorities adapted to claims: a value's
  vote is the sum of its providers' trustworthiness; a source's
  trustworthiness is the sum of its values' votes.  Both are normalized each
  round to stay bounded.
* **AVGLOG** (Pasternack & Roth) — like HUB but dampens the influence of the
  number of provided values by averaging the votes and multiplying by the
  logarithm of the claim count.
* **INVEST** (Pasternack & Roth) — a source invests its trustworthiness
  uniformly across its claims; a value's vote grows non-linearly
  (exponent ``g``) in the collected investment, and returns are paid back
  proportionally to each source's stake.
* **POOLEDINVEST** (Pasternack & Roth) — INVEST with per-item linear scaling
  of the votes so they sum to the item's total investment, which removes the
  need for normalization (and lets trust magnitudes drift — the large
  trustworthiness deviation the paper reports in Table 7).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.fusion.base import (
    FusionMethod,
    FusionProblem,
    accumulate_by_cluster,
    accumulate_by_source,
    segment_sum_per_item,
)

_EPS = 1e-12


class Hub(FusionMethod):
    """Hubs-and-authorities voting."""

    name = "Hub"
    initial_trust = 1.0

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        claim_trust = state["trust"][problem.claim_source]
        votes = accumulate_by_cluster(problem, claim_trust)
        peak = votes.max()
        return votes / peak if peak > 0 else votes

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        per_claim = scores[problem.claim_cluster]
        trust = accumulate_by_source(problem, per_claim)
        peak = trust.max()
        return trust / peak if peak > 0 else trust


class AvgLog(FusionMethod):
    """HUB with average votes damped by log of the claim count."""

    name = "AvgLog"
    initial_trust = 1.0

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        claim_trust = state["trust"][problem.claim_source]
        votes = accumulate_by_cluster(problem, claim_trust)
        peak = votes.max()
        return votes / peak if peak > 0 else votes

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        per_claim = scores[problem.claim_cluster]
        sums = accumulate_by_source(problem, per_claim)
        counts = np.maximum(problem.claims_per_source, 1.0)
        trust = np.log(np.maximum(counts, 2.0)) * sums / counts
        peak = trust.max()
        return trust / peak if peak > 0 else trust


class Invest(FusionMethod):
    """Trust invested uniformly across claims; non-linear vote growth."""

    name = "Invest"
    initial_trust = 1.0

    def __init__(self, growth: float = 1.2, **kwargs):
        super().__init__(**kwargs)
        self.growth = growth

    def _investments(self, problem: FusionProblem, trust: np.ndarray) -> np.ndarray:
        counts = np.maximum(problem.claims_per_source, 1.0)
        return (trust / counts)[problem.claim_source]

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        invested = accumulate_by_cluster(problem, self._investments(problem, state["trust"]))
        return np.power(invested, self.growth)

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        per_claim_investment = self._investments(problem, state["trust"])
        invested = accumulate_by_cluster(problem, per_claim_investment)
        share = per_claim_investment / np.maximum(invested[problem.claim_cluster], _EPS)
        returns = scores[problem.claim_cluster] * share
        trust = accumulate_by_source(problem, returns)
        peak = trust.max()
        return trust / peak if peak > 0 else trust


class PooledInvest(Invest):
    """INVEST with per-item linear pooling of the votes (no normalization)."""

    name = "PooledInvest"

    def __init__(self, growth: float = 1.4, **kwargs):
        FusionMethod.__init__(self, **kwargs)
        self.growth = growth

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        per_claim_investment = self._investments(problem, state["trust"])
        invested = accumulate_by_cluster(problem, per_claim_investment)
        grown = np.power(invested, self.growth)
        pool = segment_sum_per_item(problem, invested)
        grown_total = segment_sum_per_item(problem, grown)
        scale = pool / np.maximum(grown_total, _EPS)
        return grown * scale[problem.cluster_item]

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        per_claim_investment = self._investments(problem, state["trust"])
        invested = accumulate_by_cluster(problem, per_claim_investment)
        share = per_claim_investment / np.maximum(invested[problem.claim_cluster], _EPS)
        returns = scores[problem.claim_cluster] * share
        # No normalization: trust magnitudes drift with the pooled votes,
        # reproducing the paper's outsized trust deviation for this method.
        return accumulate_by_source(problem, returns)
