"""Spec + session split: stateless method specs, stateful fusion sessions.

Historically each fusion method carried its own copy of the fixed-point
loop inside :meth:`FusionMethod.run`, and every day of the observation
period cold-started it from uniform priors.  This module separates the two
concerns:

* :class:`MethodSpec` — the *stateless* description of a method: its
  parameters (round cap, convergence tolerance, initial trust, whether
  trust is per attribute) and its vote / trust-update / state-construction
  kernels.  Specs are frozen; two sessions built from one spec never share
  mutable state.
* :class:`FusionSession` — the *stateful* solver.  It owns the trust
  vectors, convergence bookkeeping, and the current compiled problem, and
  advances across daily snapshots: :meth:`FusionSession.advance` diff-compiles
  the next day through a :class:`~repro.core.delta.SeriesCompiler` and —
  when ``warm_start`` is on — resumes the fixed point from the previous
  day's converged trust instead of the method's uniform prior, which is
  what makes per-day streaming cost a handful of rounds instead of dozens.
  :meth:`FusionSession.update` applies an explicit
  :class:`~repro.core.delta.ClaimDelta` (claim additions/retractions, new
  sources) for feeds that know their own diffs.

The legacy one-shot path is preserved exactly: ``FusionMethod.run`` now
compiles the full snapshot and steps a cold (``warm_start=False``) session
once, which executes the identical round sequence the old loop did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.dataset import Dataset
from repro.core.delta import ClaimDelta, DayCompilation, SeriesCompiler
from repro.errors import FusionError
from repro.fusion.base import FusionMethod, FusionProblem, FusionResult

State = Dict[str, np.ndarray]


@dataclass(frozen=True)
class MethodSpec:
    """A fusion method's parameters and kernels, with no solver state."""

    name: str
    initial_trust: float
    per_attribute_trust: bool
    max_rounds: int
    tolerance: float
    initial_state: Callable[[FusionProblem, Optional[Dict[str, float]]], State]
    votes: Callable[[FusionProblem, State], np.ndarray]
    update_trust: Callable[[FusionProblem, State, np.ndarray, np.ndarray], np.ndarray]
    package: Callable[..., FusionResult]
    uses_copy_detection: bool = False
    #: Which execution engine drives the fixed point: ``"numpy"`` runs the
    #: vote/trust kernels above; ``"native"`` dispatches to the fused
    #: numba programs in :mod:`repro.fusion.native` (falling back to the
    #: kernels above per method when no native program exists).
    engine: str = "numpy"
    #: The originating method instance — the native engine reads its
    #: parameters (growth, damping, n_false_values, ...) and guards on its
    #: exact class so subclassed methods keep their custom kernels.
    method: Optional[FusionMethod] = None

    @classmethod
    def of(cls, method: Union["MethodSpec", FusionMethod]) -> "MethodSpec":
        """Derive a spec from a method instance (or pass a spec through).

        The method instance supplies the kernels; it must be stateless —
        all per-run state lives in the session's state dict.
        """
        if isinstance(method, MethodSpec):
            return method
        return cls(
            name=method.name,
            initial_trust=method.initial_trust,
            per_attribute_trust=method.per_attribute_trust,
            max_rounds=method.max_rounds,
            tolerance=method.tolerance,
            initial_state=method._initial_state,
            votes=method._votes,
            update_trust=method._update_trust,
            package=method._package,
            uses_copy_detection=getattr(method, "uses_copy_detection", False),
            engine=getattr(method, "engine", "numpy"),
            method=method,
        )


class KernelProfiler:
    """Accumulates wall-clock per named solver phase (``--profile`` bench).

    Passed into :func:`run_fixed_point`; the numpy loop attributes each
    round to its four phases (votes / argmax / trust_update / convergence)
    and the native engine reports its fused round and one-time program
    build, so the numpy-vs-native win is attributable per primitive.
    """

    __slots__ = ("seconds", "calls")

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    def report(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls[name]}
            for name in sorted(self.seconds)
        }


def run_fixed_point(
    spec: MethodSpec,
    problem: FusionProblem,
    state: State,
    freeze_trust: bool = False,
    profiler: Optional[KernelProfiler] = None,
) -> Tuple[np.ndarray, int, bool]:
    """Drive ``spec``'s vote/trust kernels to a fixed point on ``problem``.

    The solver loop shared by :meth:`FusionSession.step` and the parallel
    workers (:mod:`repro.parallel`): mutates ``state`` in place and returns
    ``(selected, rounds, converged)``.  Callers that warm-start overwrite
    ``state["trust"]`` before calling.

    With ``spec.engine == "native"`` the round dispatches to the fused
    numba program of :mod:`repro.fusion.native` when the method has one;
    methods without a native program (and the freeze-trust mode, which is a
    single vote pass) fall through to the numpy loop below.
    """
    if spec.engine == "native" and not freeze_trust:
        from repro.fusion import native

        outcome = native.solve(spec, problem, state, profiler=profiler)
        if outcome is not None:
            return outcome
    rounds = 0
    converged = False
    selected = None
    profiled = profiler is not None
    t0 = time.perf_counter() if profiled else 0.0
    for rounds in range(1, spec.max_rounds + 1):
        scores = spec.votes(problem, state)
        if profiled:
            t1 = time.perf_counter()
            profiler.add("votes", t1 - t0)
            t0 = t1
        selected = problem.argmax_per_item(scores)
        if profiled:
            t1 = time.perf_counter()
            profiler.add("argmax", t1 - t0)
            t0 = t1
        if freeze_trust:
            converged = True
            break
        trust = state["trust"]
        new_trust = spec.update_trust(problem, state, scores, selected)
        if profiled:
            t1 = time.perf_counter()
            profiler.add("trust_update", t1 - t0)
            t0 = t1
        if new_trust.size:
            # Fused convergence norm: |new - old| reduced in one scratch
            # buffer instead of two fresh temporaries per round.
            diff = problem.scratch("conv_delta", new_trust.shape)
            np.subtract(new_trust, trust, out=diff)
            np.abs(diff, out=diff)
            delta = float(diff.max())
        else:
            delta = 0.0
        state["trust"] = new_trust
        if profiled:
            t1 = time.perf_counter()
            profiler.add("convergence", t1 - t0)
            t0 = t1
        if delta < spec.tolerance:
            converged = True
            break
    if selected is None:  # pragma: no cover - max_rounds >= 1 always
        raise FusionError("fusion produced no selection")
    return selected, rounds, converged


class FusionSession:
    """A stateful solver that carries trust across daily snapshots.

    Parameters
    ----------
    method:
        A :class:`FusionMethod` instance or :class:`MethodSpec`.
    warm_start:
        Seed each day's fixed point from the previous day's converged
        trust.  With ``False`` every step is a cold start — bit-identical
        to the one-shot ``run()`` on the same problem — and only the delta
        compilation is reused.
    compiler:
        An optional shared :class:`SeriesCompiler`; one is created lazily
        when :meth:`advance` / :meth:`update` is first called.
    """

    def __init__(
        self,
        method: Union[MethodSpec, FusionMethod],
        *,
        warm_start: bool = True,
        compiler: Optional[SeriesCompiler] = None,
    ):
        self.spec = MethodSpec.of(method)
        self.warm_start = warm_start
        self._compiler = compiler
        self._state: Optional[State] = None
        self._sources: Optional[List[str]] = None
        self.problem: Optional[FusionProblem] = None
        self.days: List[str] = []
        self.last_result: Optional[FusionResult] = None

    # ------------------------------------------------------------- plumbing
    @property
    def compiler(self) -> SeriesCompiler:
        if self._compiler is None:
            self._compiler = SeriesCompiler(
                track_copy_structures=self.spec.uses_copy_detection
            )
        return self._compiler

    @property
    def steps(self) -> int:
        return len(self.days)

    def _rebased_trust(
        self, problem: FusionProblem, fresh: np.ndarray
    ) -> np.ndarray:
        """Map the previous day's trust onto the new source universe.

        ``fresh`` is the spec's initial trust for the new problem — it fixes
        the target shape (sources on axis 0, any per-attribute/-category
        axes after), so methods with non-standard trust shapes rebase too;
        sources whose carried rows no longer fit keep their fresh priors.
        """
        prev = self._state["trust"]
        trust = np.array(fresh, dtype=np.float64, copy=True)
        for i, source_id in enumerate(self._sources):
            j = problem.source_index.get(source_id)
            if j is not None and prev[i].shape == trust[j].shape:
                trust[j] = prev[i]
        return trust

    def resume_trust(self, problem: FusionProblem) -> Optional[np.ndarray]:
        """The warm trust this session would carry onto ``problem``.

        ``None`` when the next step is a cold start (first step, or
        ``warm_start=False``).  Used by the parallel scheduler to ship a
        session's carried trust to a worker without shipping the session.
        """
        if not (self.warm_start and self._state is not None):
            return None
        fresh = self.spec.initial_state(problem, None)["trust"]
        return self._rebased_trust(problem, fresh)

    # ------------------------------------------------------------- stepping
    def step(
        self,
        problem: FusionProblem,
        day: Optional[str] = None,
        trust_seed: Optional[Dict[str, float]] = None,
        freeze_trust: bool = False,
    ) -> FusionResult:
        """Advance the session onto an already-compiled problem."""
        spec = self.spec
        started = time.perf_counter()
        state = spec.initial_state(problem, trust_seed)
        warmed = self.warm_start and self._state is not None
        if warmed:
            # Trust resumes from yesterday's fixed point; every other state
            # entry (difficulty, independence, ...) is problem-shaped and
            # starts fresh from the spec's initial state.
            state["trust"] = self._rebased_trust(problem, state["trust"])
            if (
                self.problem is not None
                and problem is not self.problem
                and self._sources == problem.sources
            ):
                # Same source universe: yesterday's solver buffers (the
                # trust-shaped conv_delta in particular) fit today's solve
                # exactly — inherit them instead of reallocating the pool.
                problem.adopt_scratch(self.problem)

        selected, rounds, converged = run_fixed_point(
            spec, problem, state, freeze_trust
        )
        runtime = time.perf_counter() - started
        return self.absorb_step(
            problem, state, selected, rounds, converged, runtime,
            day=day, warmed=warmed,
        )

    def absorb_step(
        self,
        problem: FusionProblem,
        state: State,
        selected: np.ndarray,
        rounds: int,
        converged: bool,
        runtime: float,
        day: Optional[str] = None,
        warmed: bool = False,
    ) -> FusionResult:
        """Adopt the outcome of a solver step (local or remote) as session state.

        This is the bookkeeping tail of :meth:`step`, split out so a
        parallel worker can run :func:`run_fixed_point` elsewhere and the
        owning session still advances exactly as if it had solved locally.
        """
        spec = self.spec
        result = spec.package(problem, state, selected, rounds, converged, runtime)
        if day is not None:
            result.extras["day"] = day
        result.extras["warm_started"] = warmed
        self._state = state
        self._sources = list(problem.sources)
        self.problem = problem
        if day is not None:
            self.days.append(day)
        self.last_result = result
        return result

    def advance(self, dataset: Dataset) -> FusionResult:
        """Diff-compile the next daily snapshot and advance onto it."""
        return self.step_compiled(self.compiler.ingest(dataset))

    def update(self, delta: ClaimDelta) -> FusionResult:
        """Apply an explicit claim delta and advance onto the result."""
        return self.step_compiled(self.compiler.apply_delta(delta))

    def step_compiled(self, day: DayCompilation) -> FusionResult:
        """Advance onto a day prepared by a (possibly shared) compiler."""
        result = self.step(day.problem(), day=day.day)
        result.extras["compile"] = day.stats
        return result
