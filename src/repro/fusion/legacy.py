"""Reference (pre-vectorization) implementations of the engine's hot paths.

These are the dict-walking, per-item Python-loop code paths the columnar
kernels replaced.  They are kept verbatim for two reasons:

* the equivalence suite (``tests/fusion/test_vectorized_equivalence.py``)
  proves every registered fusion method selects identical values and
  converges to the same trust on both paths;
* the benchmark harness (``benchmarks/run_bench.py``) times old versus new
  to track the speedups in ``BENCH_fusion.json``.

Nothing in the library imports this module; it is test/bench support only.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.core.records import DataItem, Value
from repro.core.attributes import ValueKind
from repro.core.tolerance import cluster_claims
from repro.copying.detection import (
    DEFAULT_AGREEMENT_GATE,
    DEFAULT_COPY_PROB,
    DEFAULT_MIN_OVERLAP,
    DEFAULT_N_FALSE,
    DEFAULT_PRIOR,
    CopyDetectionResult,
    _near_true_clusters,
)
from repro.errors import FusionError
from repro.fusion.base import (
    FORMAT_WEIGHT,
    SIMILARITY_FLOOR,
    SIMILARITY_SCALE,
    SIMILARITY_WINDOW,
    FusionProblem,
    accumulate_by_cluster,
)

_EPS = 1e-12


class LegacyFusionProblem(FusionProblem):
    """The original ``FusionProblem``: per-item Python compile and loops.

    Compiles a snapshot by walking the claim dicts item by item (clustering
    each with :func:`repro.core.tolerance.cluster_claims`) and keeps the
    original Python-loop kernels for argmax, similarity edges, and format
    edges.  ``restrict_sources`` is unavailable (``_view`` is ``None``) —
    subsetting on this path goes through ``Dataset.without_sources``.
    """

    def __init__(self, dataset: Dataset):  # noqa: D107 - see class docstring
        self.dataset = dataset
        self._view = None
        self._claim_mask = None
        self._copy = None
        self.items: List[DataItem] = list(dataset.items)
        self.n_items = len(self.items)
        if self.n_items == 0:
            raise FusionError("cannot fuse an empty dataset")
        self.sources: List[str] = list(dataset.source_ids)
        self.n_sources = len(self.sources)
        self.source_index = {s: i for i, s in enumerate(self.sources)}
        self.attributes: List[str] = dataset.attributes.names
        self.attr_index = {a: i for i, a in enumerate(self.attributes)}
        self.n_attrs = len(self.attributes)
        self._attr_specs = [dataset.attributes[a] for a in self.attributes]
        self._tolerances = dataset._compute_tolerances_python()
        self._attr_tol = np.asarray(
            [self._tolerances[a] for a in self.attributes], dtype=np.float64
        )

        cluster_item: List[int] = []
        cluster_rep: List[Value] = []
        cluster_support: List[int] = []
        item_start = [0]
        item_attr: List[int] = []
        claim_source: List[int] = []
        claim_cluster: List[int] = []
        claim_granularity: List[float] = []  # 0 = exact
        claim_value: List[Value] = []

        for item_idx, item in enumerate(self.items):
            clustering = cluster_claims(
                dataset.claims_on(item),
                dataset.attributes[item.attribute],
                self._tolerances[item.attribute],
            )
            item_attr.append(self.attr_index[item.attribute])
            for cluster in clustering.clusters:
                cluster_idx = len(cluster_item)
                cluster_item.append(item_idx)
                cluster_rep.append(cluster.representative)
                cluster_support.append(cluster.support)
                claims = dataset.claims_on(item)
                for source_id in cluster.providers:
                    claim = claims[source_id]
                    claim_source.append(self.source_index[source_id])
                    claim_cluster.append(cluster_idx)
                    claim_granularity.append(claim.granularity or 0.0)
                    claim_value.append(claim.value)
            item_start.append(len(cluster_item))

        self.cluster_item = np.asarray(cluster_item, dtype=np.int64)
        self.cluster_rep = cluster_rep
        self.cluster_support = np.asarray(cluster_support, dtype=np.int64)
        self.item_start = np.asarray(item_start, dtype=np.int64)
        self.item_attr = np.asarray(item_attr, dtype=np.int64)
        self.n_clusters = len(cluster_rep)
        self.claim_source = np.asarray(claim_source, dtype=np.int64)
        self.claim_cluster = np.asarray(claim_cluster, dtype=np.int64)
        self.claim_item = self.cluster_item[self.claim_cluster]
        self.claim_attr = self.item_attr[self.claim_item]
        self.n_claims = len(self.claim_source)
        self._claim_granularity = np.asarray(claim_granularity, dtype=np.float64)
        self._legacy_claim_value = claim_value

        self.claims_per_source = np.bincount(
            self.claim_source, minlength=self.n_sources
        ).astype(np.float64)
        self.providers_per_item = np.bincount(
            self.claim_item, minlength=self.n_items
        ).astype(np.float64)
        self.clusters_per_item = np.diff(self.item_start).astype(np.float64)

        self._sim = None
        self._fmt = None

    def _build_similarity(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        edges_a: List[int] = []
        edges_b: List[int] = []
        edges_w: List[float] = []
        dataset = self.dataset
        for item_idx, item in enumerate(self.items):
            start, stop = self.item_start[item_idx], self.item_start[item_idx + 1]
            if stop - start < 2:
                continue
            spec = dataset.spec(item.attribute)
            if spec.kind is ValueKind.STRING:
                continue
            tol = self._tolerances[item.attribute]
            if tol <= 0:
                continue
            reps = []
            for c in range(start, stop):
                try:
                    reps.append(float(self.cluster_rep[c]))  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    reps.append(math.nan)
            for i in range(stop - start):
                if math.isnan(reps[i]):
                    continue
                for j in range(stop - start):
                    if i == j or math.isnan(reps[j]):
                        continue
                    distance = abs(reps[i] - reps[j]) / tol
                    if distance > SIMILARITY_WINDOW:
                        continue
                    weight = math.exp(-distance / SIMILARITY_SCALE)
                    if weight >= SIMILARITY_FLOOR:
                        edges_a.append(start + i)
                        edges_b.append(start + j)
                        edges_w.append(weight)
        return (
            np.asarray(edges_a, dtype=np.int64),
            np.asarray(edges_b, dtype=np.int64),
            np.asarray(edges_w, dtype=np.float64),
        )

    def _build_format_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        src: List[int] = []
        dst: List[int] = []
        wgt: List[float] = []
        rounded = np.flatnonzero(self._claim_granularity > 0)
        for claim_idx in rounded:
            granularity = self._claim_granularity[claim_idx]
            own_cluster = self.claim_cluster[claim_idx]
            item_idx = self.cluster_item[own_cluster]
            try:
                own_value = float(self._legacy_claim_value[claim_idx])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
            start, stop = self.item_start[item_idx], self.item_start[item_idx + 1]
            for c in range(start, stop):
                if c == own_cluster:
                    continue
                try:
                    rep = float(self.cluster_rep[c])  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue
                if abs(round(rep / granularity) * granularity - own_value) <= granularity * 1e-9:
                    src.append(int(self.claim_source[claim_idx]))
                    dst.append(c)
                    wgt.append(FORMAT_WEIGHT)
        return (
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.asarray(wgt, dtype=np.float64),
        )

    def argmax_per_item(self, scores: np.ndarray) -> np.ndarray:
        best = np.empty(self.n_items, dtype=np.int64)
        starts, stops = self.item_start[:-1], self.item_start[1:]
        for i in range(self.n_items):
            segment = scores[starts[i]:stops[i]]
            best[i] = starts[i] + int(np.argmax(segment))
        return best

    def selection_to_values(self, selected: np.ndarray) -> Dict[DataItem, Value]:
        return {
            self.items[i]: self.cluster_rep[int(selected[i])]
            for i in range(self.n_items)
        }


def legacy_overlap_counts(
    problem: FusionProblem,
    selected: np.ndarray,
    near_true: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(kt, kf, kd) built from scratch per call (the pre-caching path)."""
    n_sources, n_clusters = problem.n_sources, problem.n_clusters
    ones = np.ones(problem.n_claims)
    membership = sp.csr_matrix(
        (ones, (problem.claim_source, problem.claim_cluster)),
        shape=(n_sources, n_clusters),
    )
    same = (membership @ membership.T).toarray()

    true_mask = np.zeros(n_clusters, dtype=bool)
    true_mask[selected] = True
    if near_true is not None:
        true_mask |= near_true
    member_true = membership[:, true_mask]
    kt = (member_true @ member_true.T).toarray()

    incidence = sp.csr_matrix(
        (ones, (problem.claim_source, problem.claim_item)),
        shape=(n_sources, problem.n_items),
    )
    shared = (incidence @ incidence.T).toarray()

    kf = same - kt
    kd = shared - same
    return kt, kf, kd


def legacy_detect_copying(
    problem: FusionProblem,
    selected: np.ndarray,
    accuracy: np.ndarray,
    prior: float = DEFAULT_PRIOR,
    copy_probability: float = DEFAULT_COPY_PROB,
    n_false_values: float = DEFAULT_N_FALSE,
    min_overlap: int = DEFAULT_MIN_OVERLAP,
    agreement_gate: float = DEFAULT_AGREEMENT_GATE,
    similarity_aware: bool = False,
) -> CopyDetectionResult:
    """The pre-caching ``detect_copying``: CSR matrices rebuilt per call."""
    near_true = _near_true_clusters(problem, selected) if similarity_aware else None
    kt, kf, kd = legacy_overlap_counts(problem, selected, near_true)

    acc = np.clip(accuracy, 0.05, 0.95)
    pair_acc = 0.5 * (acc[:, None] + acc[None, :])
    pt_indep = np.clip(acc[:, None] * acc[None, :], _EPS, 1 - _EPS)
    pf_indep = np.clip(
        (1 - acc[:, None]) * (1 - acc[None, :]) / n_false_values, _EPS, 1 - _EPS
    )
    pd_indep = np.clip(1.0 - pt_indep - pf_indep, _EPS, 1 - _EPS)

    c = copy_probability
    pt_dep = np.clip(c * pair_acc + (1 - c) * pt_indep, _EPS, 1 - _EPS)
    pf_dep = np.clip(c * (1 - pair_acc) + (1 - c) * pf_indep, _EPS, 1 - _EPS)
    pd_dep = np.clip((1 - c) * pd_indep, _EPS, 1 - _EPS)

    logit = (
        np.log(prior / (1.0 - prior))
        + kt * np.log(pt_dep / pt_indep)
        + kf * np.log(pf_dep / pf_indep)
        + kd * np.log(pd_dep / pd_indep)
    )
    probability = 1.0 / (1.0 + np.exp(-np.clip(logit, -60, 60)))
    shared = kt + kf + kd
    probability[shared < min_overlap] = 0.0
    with np.errstate(invalid="ignore"):
        agreement = np.where(shared > 0, (kt + kf) / np.maximum(shared, 1), 0.0)
    probability[agreement < agreement_gate] = 0.0
    np.fill_diagonal(probability, 0.0)
    return CopyDetectionResult(sources=list(problem.sources), probability=probability)


def legacy_independence_weights(
    problem: FusionProblem,
    dependence: np.ndarray,
    copy_probability: float = DEFAULT_COPY_PROB,
) -> np.ndarray:
    """Per-claim independence via a dense (n_clusters, n_sources) product."""
    scaled = copy_probability * dependence  # (S, S), zero diagonal
    ones = np.ones(problem.n_claims)
    membership = sp.csr_matrix(
        (ones, (problem.claim_cluster, problem.claim_source)),
        shape=(problem.n_clusters, problem.n_sources),
    )
    dependent_mass = membership @ scaled  # (C, S) dense
    per_claim = dependent_mass[problem.claim_cluster, problem.claim_source]
    return 1.0 / (1.0 + per_claim)


def legacy_select_plausible_values(
    problem: FusionProblem,
    method=None,
    score_ratio: float = 0.5,
    max_values: int = 3,
) -> Dict[DataItem, List[Value]]:
    """The per-item Python loop version of ``select_plausible_values``."""
    from repro.fusion.bayesian import AccuSim, _TRUST_CLIP

    fusion = method if method is not None else AccuSim()
    result = fusion.run(problem)
    trust = problem.trust_vector(result.trust, fusion.initial_trust)
    accuracy = np.clip(trust, *_TRUST_CLIP)
    votes = np.log(
        fusion.n_false_values * accuracy / (1.0 - accuracy)
    )[problem.claim_source]
    scores = np.maximum(accumulate_by_cluster(problem, votes), 0.0)

    plausible: Dict[DataItem, List[Value]] = {}
    for item_idx, item in enumerate(problem.items):
        start, stop = problem.item_start[item_idx], problem.item_start[item_idx + 1]
        segment = scores[start:stop]
        best = float(segment.max())
        keep = [
            (float(segment[k]), problem.cluster_rep[start + k])
            for k in range(stop - start)
            if segment[k] >= score_ratio * best
        ]
        keep.sort(key=lambda pair: -pair[0])
        plausible[item] = [value for _p, value in keep[:max_values]]
    return plausible


def legacy_recall_as_sources_added(
    dataset: Dataset,
    gold: GoldStandard,
    method_names: Sequence[str],
    ordering: List[str],
    prefix_sizes: Sequence[int],
) -> Dict[str, List[float]]:
    """The pre-``restrict_sources`` Figure 9 sweep: one dataset copy and one
    per-item problem compile per prefix size."""
    from repro.evaluation.metrics import evaluate
    from repro.fusion.registry import make_method

    curves: Dict[str, List[float]] = {name: [] for name in method_names}
    for size in prefix_sizes:
        subset = dataset.restricted_to_sources(ordering[:size])
        problem = LegacyFusionProblem(subset)
        for name in method_names:
            result = make_method(name).run(problem)
            curves[name].append(evaluate(subset, gold, result).recall)
    return curves
