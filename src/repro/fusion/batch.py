"""Batched solving of many source-restrictions of one problem.

The Figure 9 sweep and greedy source selection solve the *same* method on
dozens of restrictions of the *same* snapshot (source prefixes, candidate
subsets).  Solving them one by one pays per-restriction Python dispatch for
every kernel of every fixed-point round — and at small prefixes the arrays
are tiny, so dispatch dominates the flops.

:func:`solve_restrictions` compiles each restriction exactly as the
per-job path does (``restrict_sources`` — the compile work is identical),
then **concatenates** the compiled problems into one block-diagonal
super-problem: job ``j``'s items, clusters, claims, and source rows are
contiguous blocks, and one numpy kernel sweep per round advances *every*
restriction's fixed point at once.  Because every *batch-safe* method's
kernels are segment-local (per item / per source / per claim, with no
global normalization), the stacked iteration computes, round for round,
exactly the per-job iterations.  Convergence is tracked per job (max trust
delta over the job's row block); a finished job's rows are frozen and the
batch **compacts** — rebuilds the concatenation without the finished
blocks — once frozen claims outweigh a quarter of the batch, so stragglers
don't drag converged jobs' arrays through their remaining rounds.

Methods with *global* reductions in their kernels — HUB / AVGLOG / INVEST
(max-normalization over all sources), 2-/3-ESTIMATES (min-max rescaling
over all clusters), the per-attribute ACCU variants (cross-block smoothing
state), and ACCUCOPY (pairwise detection) — are not batch-safe and
transparently fall back to per-job solving, so the API is uniform for all
sixteen registered methods.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.columnar import _as_float
from repro.errors import FusionError
from repro.fusion.base import FusionMethod, FusionProblem, FusionResult
from repro.fusion.spec import MethodSpec

#: Methods whose vote/trust kernels decompose per block (no global
#: normalizations), held to per-job equality by tests/fusion/test_batch.py.
BATCH_SAFE_METHODS = frozenset(
    {"Vote", "PooledInvest", "Cosine", "TruthFinder",
     "AccuPr", "PopAccu", "AccuSim", "AccuFormat"}
)

#: Compact the batch when finished jobs own more than this fraction of the
#: active claims (rebuilding costs about one round over the survivors).
COMPACT_THRESHOLD = 0.25
#: Restrictions holding more than this fraction of the base problem's
#: claims solve per-job instead of joining the multiplexed batch: their
#: kernels are already array-bound (amortizing dispatch buys nothing) and
#: streaming them through the concatenation only spoils cache locality
#: for the small jobs the batch exists to help.
LARGE_JOB_FRACTION = 0.35


@dataclass
class RestrictionOutcome:
    """One restriction's solve outcome (batched or per-job, same shape).

    ``result`` is ``None`` for *raw* outcomes (``package=False``): the
    selection stays an array of per-item cluster indices
    (``selected_local``) for :class:`GoldScorer`-style vectorized scoring,
    and ``matcher`` is the restricted problem itself.
    """

    sources: List[str]
    result: Optional[FusionResult]
    matcher: Optional[object]  # anything exposing values_match(attr, a, b)
    empty: bool = False
    trust_array: Optional[np.ndarray] = field(default=None, repr=False)
    selected_local: Optional[np.ndarray] = field(default=None, repr=False)
    rounds: int = 0
    converged: bool = False


def _empty_outcome(base: FusionProblem, subset: Sequence[str]) -> RestrictionOutcome:
    wanted = set(subset)
    return RestrictionOutcome(
        sources=[s for s in base.sources if s in wanted],
        result=None,
        matcher=None,
        empty=True,
    )


def solve_restrictions(
    base: FusionProblem,
    method: Union[FusionMethod, MethodSpec],
    subsets: Sequence[Sequence[str]],
    batched: bool = True,
) -> List[RestrictionOutcome]:
    """Solve ``method`` on every source-restriction of ``base``.

    Bit-identical to ``method.run(base.restrict_sources(subset))`` per
    subset; restrictions that lose every claim yield ``empty`` outcomes
    (the per-job path raises :class:`FusionError` there).  ``batched=False``
    forces the per-job path — the benchmark's baseline.  To run several
    methods over one set of restrictions, build a :class:`RestrictionSweep`
    so the compilations are shared.
    """
    return RestrictionSweep(base, subsets, shared_tolerances=batched).solve(
        method, batched=batched
    )


#: Stop delta-compiling a prefix step when the fresh sources dirty more
#: than this fraction of the restriction's claims — the splice bookkeeping
#: no longer beats recompiling the subset outright.
PREFIX_DELTA_THRESHOLD = 0.5


class RestrictionSweep:
    """Many source-restrictions of one problem, compiled once, solved often.

    Compiling a restriction (tolerances + re-bucketing) costs as much as
    solving it, and a sweep typically runs *several* methods over the same
    subsets — so the compilations are hoisted here and shared.  With
    ``shared_tolerances`` every subset's Equation-(3) medians come from one
    presorted pass (:class:`_SharedToleranceTable`) instead of a fresh scan
    per subset; the resulting problems are identical either way.

    Consecutive subsets that grow monotonically — the Figure 9 source
    prefixes, and each worker chunk of a strided prefix sweep — are
    **delta-compiled**: only the items touched by the newly added sources
    (plus any whole attribute whose Equation-(3) median moved) are
    re-bucketed, and their fresh segments are spliced into the previous
    restriction's compiled arrays (:func:`repro.core.delta.splice_compiled`).
    Item-local clustering makes the result bit-identical to compiling the
    subset from scratch; ``delta_compiles`` counts how often the fast path
    ran.
    """

    def __init__(
        self,
        base: FusionProblem,
        subsets: Sequence[Sequence[str]],
        shared_tolerances: bool = True,
        delta_threshold: float = PREFIX_DELTA_THRESHOLD,
    ):
        self.base = base
        self.subsets = [list(s) for s in subsets]
        self.subs: List[Optional[FusionProblem]] = []
        self.delta_threshold = delta_threshold
        self.delta_compiles = 0
        table = (
            _SharedToleranceTable(base)
            if shared_tolerances and base._view is not None and len(self.subsets) > 1
            else None
        )
        view = base._view
        prev: Optional[Tuple[set, FusionProblem]] = None
        for subset in self.subsets:
            wanted = set(subset)
            attr_tol = None
            if table is not None and not all(s in wanted for s in base.sources):
                keep_view = np.zeros(view.n_sources, dtype=bool)
                keep_view[base._source_codes[
                    [i for i, s in enumerate(base.sources) if s in wanted]
                ]] = True
                attr_tol = table.for_sources(keep_view)
            sub = None
            if (
                view is not None
                and prev is not None
                and prev[0] < wanted
                and not all(s in wanted for s in base.sources)
            ):
                sub = self._delta_restrict(prev[1], wanted, attr_tol)
            if sub is None:
                try:
                    sub = base.restrict_sources(subset, attr_tol=attr_tol)
                except FusionError:
                    sub = None
            self.subs.append(sub)
            prev = (wanted & set(base.sources), sub) if sub is not None else None

    def _delta_restrict(
        self,
        prev: FusionProblem,
        wanted: set,
        attr_tol: Optional[np.ndarray],
    ) -> Optional[FusionProblem]:
        """Grow ``prev``'s compilation to the superset ``wanted``, exactly.

        Returns ``None`` (caller recompiles from scratch) when the added
        sources dirty too much of the restriction for the splice to pay.
        """
        from repro.core.columnar import compile_clusters, compute_tolerances
        from repro.core.delta import splice_compiled

        base = self.base
        view = base._view
        keep = [i for i, s in enumerate(base.sources) if s in wanted]
        new_sources = [base.sources[i] for i in keep]
        new_codes = base._source_codes[keep]
        keep_view = np.zeros(view.n_sources, dtype=bool)
        keep_view[new_codes] = True
        mask = keep_view[view.claim_source]
        if base._claim_mask is not None:
            mask &= base._claim_mask
        if attr_tol is None:
            attr_tol = compute_tolerances(view, mask)

        prev_mask = prev._claim_mask
        added = mask if prev_mask is None else (mask & ~prev_mask)
        dirty = np.zeros(len(view.items), dtype=bool)
        dirty[view.claim_item[added]] = True
        tol_moved = attr_tol != prev._attr_tol
        if tol_moved.any():
            dirty |= tol_moved[view.item_attr]
        partial_mask = mask & dirty[view.claim_item]
        n_current = int(mask.sum())
        if n_current == 0 or int(partial_mask.sum()) > self.delta_threshold * n_current:
            return None
        partial = compile_clusters(view, attr_tol, partial_mask)
        compiled = splice_compiled(prev.compiled_clusters(), partial, dirty)
        self.delta_compiles += 1
        return FusionProblem.from_compiled(
            view=view,
            compiled=compiled,
            sources=new_sources,
            source_codes=new_codes,
            attr_tol=attr_tol,
            claim_mask=mask,
        )

    def solve(
        self,
        method: Union[FusionMethod, MethodSpec],
        batched: bool = True,
        package: bool = True,
    ) -> List[RestrictionOutcome]:
        """Solve ``method`` on every restriction.

        ``package=False`` (batched path only) returns *raw* outcomes —
        cluster-index selections and trust arrays instead of packaged
        :class:`FusionResult` dicts — for vectorized downstream scoring.
        """
        spec = MethodSpec.of(method)
        live = sum(1 for sub in self.subs if sub is not None)
        if batched and spec.name in BATCH_SAFE_METHODS and live > 1:
            if spec.engine == "native":
                from repro.fusion import native

                if native.supports(spec):
                    # The multiplexed batch exists to amortize numpy kernel
                    # dispatch across many small jobs; a fused native round
                    # has no dispatch to amortize, so each restriction runs
                    # its own native fixed point (the compilations above are
                    # still shared).
                    return [
                        _empty_outcome(self.base, subset) if sub is None
                        else _solo_outcome(sub, spec, package)
                        for subset, sub in zip(self.subsets, self.subs)
                    ]
            return _solve_batched(self, spec, package)
        return self._solve_per_job(method)

    def _solve_per_job(
        self, method: Union[FusionMethod, MethodSpec]
    ) -> List[RestrictionOutcome]:
        from repro.fusion.spec import FusionSession

        outcomes: List[RestrictionOutcome] = []
        for subset, sub in zip(self.subsets, self.subs):
            if sub is None:
                outcomes.append(_empty_outcome(self.base, subset))
                continue
            result = FusionSession(method, warm_start=False).step(sub)
            outcomes.append(
                RestrictionOutcome(
                    sources=list(sub.sources),
                    result=result,
                    matcher=sub,
                )
            )
        return outcomes


# --------------------------------------------------------------------------
# The batched path: concatenated compiled problems, multiplexed rounds
# --------------------------------------------------------------------------

class _SharedToleranceTable:
    """Equation-(3) tolerances for many source-subsets of one problem.

    ``compute_tolerances`` re-scans and re-medians every attribute column
    per restriction.  This table sorts the base problem's numeric claims
    once by ``(attribute, |value|)``; each subset's per-attribute median is
    then a boolean filter plus a middle-element pick over the presorted
    magnitudes — numerically identical to ``np.median`` (middle element,
    or the mean of the two middles), at a fraction of the cost.
    """

    def __init__(self, base: FusionProblem):
        from repro.core.attributes import TIME_TOLERANCE_MINUTES, ValueKind

        view = base._view
        self.n_attrs = view.n_attrs
        specs = view.attr_specs
        self.base_tol = np.zeros(self.n_attrs, dtype=np.float64)
        is_time = np.asarray(
            [spec.kind is ValueKind.TIME for spec in specs], dtype=bool
        )
        self.base_tol[is_time] = TIME_TOLERANCE_MINUTES
        is_numeric = np.asarray(
            [spec.kind.is_numeric for spec in specs], dtype=bool
        )
        self.factors = np.asarray(
            [spec.tolerance_factor for spec in specs], dtype=np.float64
        )
        claim_attr = view.item_attr[view.claim_item]
        magnitude = np.abs(view.claim_numeric)
        ok = is_numeric[claim_attr] & ~np.isnan(magnitude)
        if base._claim_mask is not None:
            ok &= base._claim_mask
        positions = np.flatnonzero(ok)
        order = np.lexsort((magnitude[positions], claim_attr[positions]))
        self.positions = positions[order]
        self.attrs = claim_attr[self.positions]
        self.mags = magnitude[self.positions]
        self.sources = view.claim_source[self.positions]

    def for_sources(self, keep_view: np.ndarray) -> np.ndarray:
        """Tolerances of the restriction keeping ``keep_view`` sources."""
        keep = keep_view[self.sources]
        attrs, mags = self.attrs[keep], self.mags[keep]
        tolerances = self.base_tol.copy()
        if not len(attrs):
            return tolerances
        starts = np.searchsorted(attrs, np.arange(self.n_attrs + 1))
        counts = np.diff(starts)
        present = np.flatnonzero(counts)
        mid = starts[present] + (counts[present] - 1) // 2
        hi = np.minimum(mid + 1, len(mags) - 1)
        medians = np.where(
            counts[present] % 2 == 1, mags[mid], (mags[mid] + mags[hi]) / 2.0
        )
        tolerances[present] = self.factors[present] * medians
        return tolerances

class _ConcatProblem(FusionProblem):
    """Block-diagonal concatenation of already-compiled problems.

    Only the arrays the batch-safe kernels touch are materialized; the
    evidence edges concatenate the member problems' lazily-built edges on
    first access, so a method that never reads them (VOTE) never pays for
    them — exactly like the per-job path.
    """

    def __init__(self, subs: Sequence[FusionProblem]):  # noqa: D107
        self._subs = list(subs)
        self.item_offsets = np.cumsum([0] + [s.n_items for s in subs])
        self.cluster_offsets = np.cumsum([0] + [s.n_clusters for s in subs])
        self.source_offsets = np.cumsum([0] + [s.n_sources for s in subs])
        self.claim_offsets = np.cumsum([0] + [s.n_claims for s in subs])
        self.n_items = int(self.item_offsets[-1])
        self.n_clusters = int(self.cluster_offsets[-1])
        self.n_sources = int(self.source_offsets[-1])
        self.n_claims = int(self.claim_offsets[-1])
        self.n_attrs = subs[0].n_attrs

        self.cluster_item = np.concatenate([
            s.cluster_item + off
            for s, off in zip(subs, self.item_offsets[:-1])
        ])
        self.cluster_support = np.concatenate([s.cluster_support for s in subs])
        self.item_start = np.append(
            np.concatenate([
                s.item_start[:-1] + off
                for s, off in zip(subs, self.cluster_offsets[:-1])
            ]),
            self.n_clusters,
        )
        self.claim_source = np.concatenate([
            s.claim_source + off
            for s, off in zip(subs, self.source_offsets[:-1])
        ])
        self.claim_cluster = np.concatenate([
            s.claim_cluster + off
            for s, off in zip(subs, self.cluster_offsets[:-1])
        ])
        self.claim_item = np.concatenate([
            s.claim_item + off
            for s, off in zip(subs, self.item_offsets[:-1])
        ])
        self.claims_per_source = np.concatenate([s.claims_per_source for s in subs])
        self.providers_per_item = np.concatenate([s.providers_per_item for s in subs])
        self.clusters_per_item = np.concatenate([s.clusters_per_item for s in subs])
        self._sim: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._fmt: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._copy = None
        self._copy_seed = None

    @property
    def similarity_edges(self):
        if self._sim is None:
            edges = [s.similarity_edges for s in self._subs]
            self._sim = (
                np.concatenate([
                    e[0] + off for e, off in zip(edges, self.cluster_offsets[:-1])
                ]),
                np.concatenate([
                    e[1] + off for e, off in zip(edges, self.cluster_offsets[:-1])
                ]),
                np.concatenate([e[2] for e in edges]),
            )
        return self._sim

    @property
    def format_edges(self):
        if self._fmt is None:
            edges = [s.format_edges for s in self._subs]
            self._fmt = (
                np.concatenate([
                    e[0] + off for e, off in zip(edges, self.source_offsets[:-1])
                ]),
                np.concatenate([
                    e[1] + off for e, off in zip(edges, self.cluster_offsets[:-1])
                ]),
                np.concatenate([e[2] for e in edges]),
            )
        return self._fmt


def _solo_outcome(
    sub: FusionProblem, spec: MethodSpec, package: bool
) -> RestrictionOutcome:
    """Solve one restriction alone (large or leftover jobs of a batch)."""
    from repro.fusion.spec import FusionSession, run_fixed_point

    if package:
        result = FusionSession(spec, warm_start=False).step(sub)
        result.extras["batched"] = True  # planned by the batch solver
        return RestrictionOutcome(
            sources=list(sub.sources), result=result, matcher=sub
        )
    state = spec.initial_state(sub, None)
    selected, rounds, converged = run_fixed_point(spec, sub, state)
    return RestrictionOutcome(
        sources=list(sub.sources),
        result=None,
        matcher=sub,
        trust_array=state["trust"],
        selected_local=selected,
        rounds=rounds,
        converged=converged,
    )


def _solve_batched(
    sweep: RestrictionSweep, spec: MethodSpec, package: bool = True
) -> List[RestrictionOutcome]:
    started = time.perf_counter()
    outcomes: List[Optional[RestrictionOutcome]] = [None] * len(sweep.subsets)
    cutoff = LARGE_JOB_FRACTION * sweep.base.n_claims
    subs: List[FusionProblem] = []
    job_ids: List[int] = []
    for j, (subset, sub) in enumerate(zip(sweep.subsets, sweep.subs)):
        if sub is None:
            outcomes[j] = _empty_outcome(sweep.base, subset)
            continue
        if sub.n_claims > cutoff:
            outcomes[j] = _solo_outcome(sub, spec, package)
            continue
        subs.append(sub)
        job_ids.append(j)
    if not subs:
        return outcomes  # type: ignore[return-value]
    if len(subs) == 1:
        outcomes[job_ids[0]] = _solo_outcome(subs[0], spec, package)
        return outcomes  # type: ignore[return-value]

    # ---- multiplexed fixed point over the concatenation of the jobs
    blocks = list(range(len(subs)))  # sub index of each stacked block
    stacked = _ConcatProblem(subs)
    state = {"trust": np.concatenate([
        spec.initial_state(s, None)["trust"] for s in subs
    ])}
    frozen_rows = np.zeros(stacked.n_sources, dtype=bool)
    frozen_claims = 0
    finished: dict = {}  # sub index -> (selected, trust, rounds, converged)

    rounds = 0
    while len(finished) < len(subs) and rounds < spec.max_rounds:
        rounds += 1
        trust = state["trust"]
        scores = spec.votes(stacked, state)
        # Batch-safe methods never read the selection inside update_trust
        # (only ACCUCOPY does, and it is not batch-safe), so the per-item
        # argmax — pure output — is deferred to rounds where a job actually
        # finishes; the per-job loop computes it every round and discards it.
        new_trust = spec.update_trust(stacked, state, scores, None)
        if frozen_claims:
            new_trust[frozen_rows] = trust[frozen_rows]
        diff = stacked.scratch("batch_delta", new_trust.shape)
        np.subtract(new_trust, trust, out=diff)
        np.abs(diff, out=diff)
        deltas = np.maximum.reduceat(diff, stacked.source_offsets[:-1])
        state["trust"] = new_trust
        selected = None
        for pos, sub_index in enumerate(blocks):
            if sub_index in finished:
                continue
            if deltas[pos] < spec.tolerance or rounds == spec.max_rounds:
                if selected is None:
                    selected = stacked.argmax_per_item(scores)
                i0, i1 = stacked.item_offsets[pos], stacked.item_offsets[pos + 1]
                r0, r1 = stacked.source_offsets[pos], stacked.source_offsets[pos + 1]
                finished[sub_index] = (
                    selected[i0:i1] - stacked.cluster_offsets[pos],
                    new_trust[r0:r1].copy(),
                    rounds,
                    bool(deltas[pos] < spec.tolerance),
                )
                frozen_rows[r0:r1] = True
                frozen_claims += int(
                    stacked.claim_offsets[pos + 1] - stacked.claim_offsets[pos]
                )
        survivors = [i for i in blocks if i not in finished]
        if survivors and frozen_claims > COMPACT_THRESHOLD * stacked.n_claims:
            carried = state["trust"][~frozen_rows]
            blocks = survivors
            stacked = _ConcatProblem([subs[i] for i in blocks])
            state = {"trust": carried}
            frozen_rows = np.zeros(stacked.n_sources, dtype=bool)
            frozen_claims = 0
    elapsed = time.perf_counter() - started

    # ---- package per-job outcomes exactly like the per-job path
    n_solved = max(len(subs), 1)
    for sub_index, job in enumerate(job_ids):
        sub = subs[sub_index]
        selected, trust, job_rounds, converged = finished[sub_index]
        if package:
            result = FusionResult(
                method=spec.name,
                selected=sub.selection_to_values(selected),
                trust={s: float(t) for s, t in zip(sub.sources, trust)},
                rounds=job_rounds,
                converged=converged,
                runtime_seconds=elapsed / n_solved,
                extras={"batched": True},
            )
        else:
            result = None
        outcomes[job] = RestrictionOutcome(
            sources=list(sub.sources),
            result=result,
            matcher=sub,
            trust_array=trust,
            selected_local=selected,
            rounds=job_rounds,
            converged=converged,
        )
    return outcomes  # type: ignore[return-value]


class GoldScorer:
    """Vectorized precision/recall of raw batched selections.

    ``evaluate()`` walks the gold standard item by item through Python
    dicts; over a sweep that walk costs as much as the solves.  This
    scorer precomputes, per view item, the gold truth (object and float
    form) and scores a raw selection array with one vectorized tolerance
    comparison — falling back to the attribute spec's exact ``matches``
    only for string attributes and non-convertible values, so the counts
    are identical to ``evaluate(matcher, gold, result)``.
    """

    def __init__(self, base: FusionProblem, gold):
        from repro.core.attributes import TIME_TOLERANCE_MINUTES, ValueKind

        view = base._view
        if view is None:
            raise FusionError("GoldScorer requires a columnar-compiled problem")
        self.view = view
        self.num_gold = len(gold)
        self.time_tolerance = TIME_TOLERANCE_MINUTES
        self.gold_pos = np.full(len(view.items), -1, dtype=np.int64)
        self.truth_obj: List[object] = []
        for code, item in enumerate(view.items):
            truth = gold.values.get(item)
            if truth is not None:
                self.gold_pos[code] = len(self.truth_obj)
                self.truth_obj.append(truth)
        self.truth_float = np.asarray([
            _as_float(truth) for truth in self.truth_obj
        ], dtype=np.float64)
        self.is_string = np.asarray(
            [spec.kind is ValueKind.STRING for spec in view.attr_specs], dtype=bool
        )
        self.is_time = np.asarray(
            [spec.kind is ValueKind.TIME for spec in view.attr_specs], dtype=bool
        )

    def score(
        self, sub: FusionProblem, selected_local: np.ndarray
    ) -> Tuple[float, float]:
        """``(precision, recall)`` of a raw selection on a restriction."""
        view = self.view
        codes = sub._item_index
        gold_slot = self.gold_pos[codes]
        rows = np.flatnonzero(gold_slot >= 0)
        if not len(rows):
            return 0.0, 0.0
        slot = gold_slot[rows]
        value_codes = sub._cluster_value_code[selected_local[rows]]
        attr = view.item_attr[codes[rows]]
        provided = view.value_numeric[value_codes]
        truth = self.truth_float[slot]
        both_numeric = ~np.isnan(provided) & ~np.isnan(truth)
        vectorized = both_numeric & ~self.is_string[attr]
        correct = np.zeros(len(rows), dtype=bool)
        time_rows = vectorized & self.is_time[attr]
        correct[time_rows] = (
            np.abs(provided - truth)[time_rows] <= self.time_tolerance
        )
        numeric_rows = vectorized & ~self.is_time[attr]
        correct[numeric_rows] = (
            np.abs(provided - truth)[numeric_rows]
            <= sub._attr_tol[attr][numeric_rows]
        )
        for i in np.flatnonzero(~vectorized):
            spec = view.attr_specs[attr[i]]
            correct[i] = spec.matches(
                view.values[value_codes[i]],
                self.truth_obj[slot[i]],
                float(sub._attr_tol[attr[i]]),
            )
        n_correct = int(correct.sum())
        return (
            n_correct / len(rows),
            n_correct / self.num_gold if self.num_gold else 0.0,
        )
