"""Shared fusion framework (Section 4.1).

Every fusion method in the paper is a fixed-point iteration over two maps:

* **value votes** — from source trustworthiness to a score per candidate
  value, and
* **source trustworthiness** — from the value scores back to a per-source
  (or per source-attribute) trust figure.

:class:`FusionProblem` precomputes the snapshot into flat numpy arrays so
every method runs off the same representation: candidate values are the
tolerance buckets of Section 3.2 (*clusters*), claims are (source, cluster)
pairs, and optional evidence — value similarity edges and formatting
subsumption edges — is precomputed as sparse pair lists.

:class:`FusionMethod` implements the shared iteration skeleton, convergence
detection, trust seeding (the "given sampled trustworthiness" mode of
Table 7), and result packaging.  Concrete methods override
:meth:`FusionMethod._votes` and :meth:`FusionMethod._update_trust`.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.attributes import ValueKind
from repro.core.columnar import (
    ColumnarView,
    CompiledClusters,
    compile_clusters,
    compute_tolerances,
)
from repro.core.dataset import Dataset
from repro.core.records import DataItem, Value
from repro.errors import FusionError

#: Default cap on fixed-point rounds.
DEFAULT_MAX_ROUNDS = 60
#: Default L-infinity convergence threshold on the trust vector.
DEFAULT_TOLERANCE = 1e-5
#: Similarity decay scale, in units of the attribute tolerance.
SIMILARITY_SCALE = 5.0
#: Similarity edges below this weight are dropped.
SIMILARITY_FLOOR = 0.05
#: Neighbourhood (in buckets) searched for similar values.
SIMILARITY_WINDOW = 12
#: Weight of a formatting-implied partial vote.
FORMAT_WEIGHT = 0.5

#: Running count of :class:`FusionProblem` compilations in this process.
#: Tests use it to assert that scheduler paths which are supposed to be
#: compile-free in the parent (the view-only shard export) really are.
PROBLEM_COMPILES = 0

#: The execution engines the fixed-point solver can run on.
ENGINES = ("numpy", "native")


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an engine request against ``REPRO_ENGINE`` and availability.

    An explicit ``engine`` argument (the CLI's ``--engine`` flag) wins over
    the ``REPRO_ENGINE`` environment variable, which wins over the default
    ``"numpy"``.  Requesting ``"native"`` without numba installed degrades
    to ``"numpy"`` with a single warning per process — results are
    identical, the native engine only changes how the rounds execute.
    """
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "").strip() or "numpy"
    engine = str(engine).strip().lower()
    if engine not in ENGINES:
        raise FusionError(
            f"unknown execution engine {engine!r}; choose one of {ENGINES}"
        )
    if engine == "native":
        from repro.fusion import native

        if not native.available():
            native.warn_unavailable()
            engine = "numpy"
    return engine


class FusionProblem:
    """A snapshot compiled to flat arrays for the fusion methods.

    Attributes
    ----------
    items:
        The data items, in a fixed order.
    cluster_item:
        For every cluster (candidate value), the index of its item.
    item_start:
        Clusters of item ``i`` are ``range(item_start[i], item_start[i+1])``.
    claim_source / claim_cluster:
        One entry per (source, provided value) pair.
    sim_a / sim_b / sim_w:
        Directed value-similarity edges within an item.
    fmt_source / fmt_cluster / fmt_w:
        Formatting evidence: source partially supports a cluster whose
        representative rounds to the source's (coarser) provided value.
    """

    def __init__(self, dataset: Dataset):
        view = dataset.columnar
        attr_tol = dataset._tolerance_array()
        compiled = compile_clusters(view, attr_tol)
        self._init_from(
            view=view,
            compiled=compiled,
            sources=list(view.sources),
            source_codes=np.arange(view.n_sources, dtype=np.int64),
            attr_tol=attr_tol,
            claim_mask=None,
            dataset=dataset,
        )

    @classmethod
    def from_compiled(
        cls,
        view: ColumnarView,
        compiled: CompiledClusters,
        sources: List[str],
        source_codes: np.ndarray,
        attr_tol: np.ndarray,
        claim_mask: Optional[np.ndarray] = None,
        dataset: Optional[Dataset] = None,
    ) -> "FusionProblem":
        """Wrap an already-compiled day (delta compilation) as a problem.

        ``sources`` is the day's declared source universe — it may include
        sources with no surviving claims (their trust still participates in
        normalizations) and must cover every source appearing in
        ``compiled``.  This is how :class:`repro.core.delta.SeriesCompiler`
        days become problems without re-running any kernel.
        """
        problem = cls.__new__(cls)
        problem._init_from(
            view=view,
            compiled=compiled,
            sources=list(sources),
            source_codes=np.asarray(source_codes, dtype=np.int64),
            attr_tol=attr_tol,
            claim_mask=claim_mask,
            dataset=dataset,
        )
        return problem

    def _init_from(
        self,
        *,
        view: ColumnarView,
        compiled: CompiledClusters,
        sources: List[str],
        source_codes: np.ndarray,
        attr_tol: np.ndarray,
        claim_mask: Optional[np.ndarray],
        dataset: Optional[Dataset],
    ) -> None:
        """Populate the flat arrays from a compiled columnar kernel result."""
        global PROBLEM_COMPILES
        PROBLEM_COMPILES += 1
        self.dataset = dataset
        self._view: Optional[ColumnarView] = view
        self._claim_mask = claim_mask
        self._source_codes = np.asarray(source_codes, dtype=np.int64)
        self._attr_specs = view.attr_specs
        self._attr_tol = attr_tol

        self._item_index = compiled.item_index  # view codes of kept items
        self.items: List[DataItem] = [
            view.items[i] for i in compiled.item_index.tolist()
        ]
        self.n_items = len(self.items)
        if self.n_items == 0:
            raise FusionError("cannot fuse an empty dataset")
        self.sources = sources
        self.n_sources = len(sources)
        self.source_index = {s: i for i, s in enumerate(sources)}
        self.attributes: List[str] = list(view.attr_names)
        self.attr_index = {a: i for i, a in enumerate(self.attributes)}
        self.n_attrs = len(self.attributes)

        self.cluster_item = compiled.cluster_item
        self.cluster_support = compiled.cluster_support
        self.item_start = compiled.item_start
        self.item_attr = compiled.item_attr
        self.n_clusters = compiled.n_clusters
        # The kernel emits view-global source codes; remap to problem-local.
        remap = np.full(view.n_sources, -1, dtype=np.int64)
        remap[self._source_codes] = np.arange(self.n_sources, dtype=np.int64)
        self.claim_source = remap[compiled.claim_source]
        self.claim_cluster = compiled.claim_cluster
        self.claim_item = self.cluster_item[self.claim_cluster]
        self.claim_attr = self.item_attr[self.claim_item]
        self.n_claims = len(self.claim_source)
        self._claim_granularity = compiled.claim_granularity
        self._claim_value_code = compiled.claim_value
        self._cluster_value_code = compiled.cluster_value
        self._claim_numeric = view.value_numeric[compiled.claim_value]
        self._cluster_numeric = view.value_numeric[compiled.cluster_value]
        self._cluster_rep: Optional[List[Value]] = None

        self.claims_per_source = np.bincount(
            self.claim_source, minlength=self.n_sources
        ).astype(np.float64)
        self.providers_per_item = np.bincount(
            self.claim_item, minlength=self.n_items
        ).astype(np.float64)
        self.clusters_per_item = np.diff(self.item_start).astype(np.float64)

        self._sim: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._fmt: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._copy: Optional[CopyStructures] = None
        self._copy_seed: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def cluster_rep(self) -> List[Value]:
        """Representative value of each cluster (materialized lazily)."""
        if self._cluster_rep is None:
            values = self._view.values
            self._cluster_rep = [
                values[i] for i in self._cluster_value_code.tolist()
            ]
        return self._cluster_rep

    @cluster_rep.setter
    def cluster_rep(self, reps: List[Value]) -> None:
        self._cluster_rep = reps

    # --------------------------------------------------------- source subsets
    def restrict_sources(
        self,
        source_ids: Iterable[str],
        attr_tol: Optional[np.ndarray] = None,
    ) -> "FusionProblem":
        """Compile a sub-problem over a subset of sources, zero rebuild.

        Equivalent to ``FusionProblem(dataset.restricted_to_sources(ids))``
        — tolerances, dominant values, bucketing, and cluster ordering are
        all recomputed over the surviving claims, and items left with no
        claims are dropped — but it slices the already-built columnar view
        instead of copying and re-clustering the dataset.  Restrictions
        compose: restricting an already-restricted problem intersects the
        claim masks.

        ``attr_tol`` supplies the restriction's Equation-(3) tolerances
        when the caller has already computed them (the batched sweep solver
        derives every subset's medians from one shared sorted pass); it
        must equal ``compute_tolerances(view, mask)`` for the restriction.
        """
        if self._view is None:
            raise FusionError(
                "restrict_sources requires a columnar-compiled problem"
            )
        wanted = set(source_ids)
        if all(s in wanted for s in self.sources):
            return self  # full cover: the compiled problem is unchanged
        keep = [i for i, s in enumerate(self.sources) if s in wanted]
        new_sources = [self.sources[i] for i in keep]
        new_codes = self._source_codes[keep]
        view = self._view
        keep_view = np.zeros(view.n_sources, dtype=bool)
        keep_view[new_codes] = True
        mask = keep_view[view.claim_source]
        if self._claim_mask is not None:
            mask &= self._claim_mask
        if attr_tol is None:
            attr_tol = compute_tolerances(view, mask)
        compiled = compile_clusters(view, attr_tol, mask)
        problem = FusionProblem.__new__(FusionProblem)
        problem._init_from(
            view=view,
            compiled=compiled,
            sources=new_sources,
            source_codes=new_codes,
            attr_tol=attr_tol,
            claim_mask=mask,
            dataset=None,
        )
        return problem

    def compiled_clusters(self) -> CompiledClusters:
        """This problem's compiled arrays, repackaged as a kernel result.

        The inverse of :meth:`from_compiled` (claim sources are mapped back
        to view-global codes); used wherever a later compile wants to splice
        against this one — the nested-prefix sweep compiler, shard merging.
        """
        return CompiledClusters(
            item_index=self._item_index,
            item_attr=self.item_attr,
            item_start=self.item_start,
            cluster_item=self.cluster_item,
            cluster_value=self._cluster_value_code,
            cluster_support=self.cluster_support,
            claim_source=self._source_codes[self.claim_source],
            claim_cluster=self.claim_cluster,
            claim_value=self._claim_value_code,
            claim_granularity=self._claim_granularity,
        )

    def values_match(self, attribute: str, a: Value, b: Value) -> bool:
        """Tolerance-aware value equality under this problem's tolerances.

        Restricted problems have no backing :class:`Dataset`; this mirrors
        ``Dataset.values_match`` so evaluation can run off the problem.
        """
        idx = self.attr_index[attribute]
        return self._attr_specs[idx].matches(a, b, float(self._attr_tol[idx]))

    # ----------------------------------------------------------- lazy extras
    @property
    def similarity_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed within-item similarity edges ``(a, b, weight)``.

        ``weight = exp(-|va - vb| / (SIMILARITY_SCALE * tau))`` for numeric
        and time attributes; string values have no similarity.
        """
        if self._sim is None:
            self._sim = self._build_similarity()
        return self._sim

    def _build_similarity(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        empty = (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
        k = np.diff(self.item_start)
        is_string = np.asarray(
            [spec.kind is ValueKind.STRING for spec in self._attr_specs],
            dtype=bool,
        )[self.item_attr]
        tol = self._attr_tol[self.item_attr]
        eligible = (k >= 2) & ~is_string & (tol > 0)
        if not eligible.any():
            return empty
        # All ordered within-item cluster pairs of the eligible segments,
        # generated in (item, i, j) order — the legacy loop's order.
        ks = k[eligible]
        starts = self.item_start[:-1][eligible]
        tols = tol[eligible]
        n2 = ks * ks
        total = int(n2.sum())
        pair_seg = np.repeat(np.arange(len(ks)), n2)
        offset = np.repeat(np.cumsum(n2) - n2, n2)
        within = np.arange(total, dtype=np.int64) - offset
        kk = ks[pair_seg]
        a = starts[pair_seg] + within // kk
        b = starts[pair_seg] + within % kk
        reps = self._cluster_numeric
        ra, rb = reps[a], reps[b]
        distance = np.abs(ra - rb) / tols[pair_seg]
        keep = (a != b) & (distance <= SIMILARITY_WINDOW)  # NaN compares False
        weight = np.exp(-distance[keep] / SIMILARITY_SCALE)
        strong = weight >= SIMILARITY_FLOOR
        return a[keep][strong], b[keep][strong], weight[strong]

    @property
    def format_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Formatting evidence edges ``(source, cluster, weight)``.

        A source that provides a rounded value ``v`` at granularity ``g`` is a
        partial provider (weight :data:`FORMAT_WEIGHT`) of every other
        cluster on the item whose representative rounds to ``v`` at ``g``.
        """
        if self._fmt is None:
            self._fmt = self._build_format_edges()
        return self._fmt

    def _build_format_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        empty = (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
        rounded = np.flatnonzero(self._claim_granularity > 0)
        if not len(rounded):
            return empty
        own_num = self._claim_numeric[rounded]
        convertible = ~np.isnan(own_num)
        rounded, own_num = rounded[convertible], own_num[convertible]
        if not len(rounded):
            return empty
        # Pair each rounded claim with every cluster of its item, in
        # (claim, cluster) order — the legacy loop's order.
        gran = self._claim_granularity[rounded]
        own_cluster = self.claim_cluster[rounded]
        items = self.claim_item[rounded]
        counts = self.item_start[items + 1] - self.item_start[items]
        total = int(counts.sum())
        offset = np.repeat(np.cumsum(counts) - counts, counts)
        within = np.arange(total, dtype=np.int64) - offset
        pair_claim = np.repeat(np.arange(len(rounded)), counts)
        c = self.item_start[items][pair_claim] + within
        rep = self._cluster_numeric[c]
        g = gran[pair_claim]
        subsumes = (
            np.abs(np.round(rep / g) * g - own_num[pair_claim]) <= g * 1e-9
        )  # NaN reps compare False
        keep = (c != own_cluster[pair_claim]) & subsumes
        src = self.claim_source[rounded][pair_claim[keep]]
        dst = c[keep]
        return (
            src.astype(np.int64),
            dst,
            np.full(len(dst), FORMAT_WEIGHT, dtype=np.float64),
        )

    # ------------------------------------------------- solver scratch buffers
    def scratch(self, key: str, shape, dtype=np.float64) -> np.ndarray:
        """A reusable solver buffer (allocated once per ``(key, shape)``).

        The fixed-point kernels run dozens of rounds over arrays whose
        shapes never change within a solve; routing their temporaries
        through named scratch buffers removes the per-round allocations.
        Buffers hold arbitrary garbage between uses and are **not**
        thread-safe — one solve per problem at a time, which is what every
        caller (sessions, workers, the batched sweep) already guarantees.
        """
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        bufs = self.__dict__.setdefault("_scratch_bufs", {})
        buf = bufs.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            bufs[key] = buf
        return buf

    def adopt_scratch(self, donor: "FusionProblem") -> None:
        """Inherit ``donor``'s scratch buffers instead of growing our own.

        Warm streaming steps retire yesterday's problem the moment the new
        day's is compiled; adopting its pool hands the solver's buffers
        (``conv_delta``, the argmax scratch, ...) to the new problem so a
        warm day with an unchanged source universe reallocates nothing.
        Safe regardless of shape drift: :meth:`scratch` revalidates shape
        and dtype on every call, so a stale buffer is simply replaced on
        first use.  Buffers we already own are kept (they are in use).
        """
        bufs = donor.__dict__.get("_scratch_bufs")
        if not bufs:
            return
        mine = self.__dict__.setdefault("_scratch_bufs", {})
        for key, buf in bufs.items():
            mine.setdefault(key, buf)

    def _invariant(self, key: str, build) -> np.ndarray:
        cache = self.__dict__.setdefault("_invariant_cache", {})
        value = cache.get(key)
        if value is None:
            value = build()
            cache[key] = value
        return value

    @property
    def cluster_support_f(self) -> np.ndarray:
        """``cluster_support`` as float64 (cached; VOTE's per-round scores)."""
        return self._invariant(
            "support_f", lambda: self.cluster_support.astype(np.float64)
        )

    @property
    def cluster_index(self) -> np.ndarray:
        """``arange(n_clusters)`` (cached; the argmax kernel's tie-break)."""
        return self._invariant(
            "cluster_index", lambda: np.arange(self.n_clusters, dtype=np.int64)
        )

    @property
    def claim_attr_flat(self) -> np.ndarray:
        """``claim_source * n_attrs + claim_attr`` (cached; per-attr gathers)."""
        return self._invariant(
            "claim_attr_flat",
            lambda: self.claim_source * self.n_attrs + self.claim_attr,
        )

    @property
    def claims_per_source_floor(self) -> np.ndarray:
        """``max(claims_per_source, 1)`` (cached; trust-update denominators)."""
        return self._invariant(
            "claims_floor", lambda: np.maximum(self.claims_per_source, 1.0)
        )

    @property
    def claims_per_source_attr(self) -> np.ndarray:
        """Per-(source, attribute) claim counts (cached; ATTR smoothing)."""
        return self._invariant(
            "claims_attr",
            lambda: np.bincount(
                self.claim_attr_flat, minlength=self.n_sources * self.n_attrs
            ).astype(np.float64).reshape(self.n_sources, self.n_attrs),
        )

    # ------------------------------------------------------------- selection
    def argmax_per_item(self, scores: np.ndarray) -> np.ndarray:
        """Index of the best-scoring cluster of each item (first on ties)."""
        starts = self.item_start[:-1]
        n = self.n_clusters
        seg_max = np.maximum.reduceat(
            scores, starts, out=self.scratch("argmax_item", self.n_items)
        )
        # First index attaining the segment max (NaN wins, like np.argmax).
        gathered = np.take(
            seg_max, self.cluster_item,
            out=self.scratch("argmax_gather", n), mode="clip",
        )
        is_max = np.equal(
            scores, gathered, out=self.scratch("argmax_mask", n, bool)
        )
        np.logical_or(
            is_max,
            np.isnan(scores, out=self.scratch("argmax_nan", n, bool)),
            out=is_max,
        )
        candidates = self.scratch("argmax_cand", n, np.int64)
        candidates.fill(n)
        np.copyto(candidates, self.cluster_index, where=is_max)
        # The result is a fresh array: callers keep selections across rounds
        # and jobs, so it must not alias the scratch pool.
        return np.minimum.reduceat(candidates, starts)

    def selection_to_values(self, selected: np.ndarray) -> Dict[DataItem, Value]:
        reps = self.cluster_rep
        chosen = np.asarray(selected).tolist()
        return {item: reps[chosen[i]] for i, item in enumerate(self.items)}

    def trust_vector(self, trust_by_source: Dict[str, float], default: float) -> np.ndarray:
        vector = np.full(self.n_sources, default, dtype=np.float64)
        for source_id, value in trust_by_source.items():
            idx = self.source_index.get(source_id)
            if idx is not None:
                vector[idx] = value
        return vector

    # -------------------------------------------------------- copy detection
    @property
    def copy_structures(self) -> "CopyStructures":
        """Cached sparse incidence matrices for copy detection.

        The source-cluster membership matrix and the pairwise ``same`` /
        ``shared`` overlap counts do not depend on the current truth
        selection, so AccuCopy's per-round detection reuses them instead of
        rebuilding CSR matrices from the claim arrays every round.
        """
        if self._copy is None:
            import scipy.sparse as sp

            ones = np.ones(self.n_claims)
            membership = sp.csr_matrix(
                (ones, (self.claim_source, self.claim_cluster)),
                shape=(self.n_sources, self.n_clusters),
            )
            seed = getattr(self, "_copy_seed", None)  # legacy problems skip _init_from
            if seed is not None:
                same, shared = seed
            else:
                incidence = sp.csr_matrix(
                    (ones, (self.claim_source, self.claim_item)),
                    shape=(self.n_sources, self.n_items),
                )
                same = (membership @ membership.T).toarray()
                shared = (incidence @ incidence.T).toarray()
            self._copy = CopyStructures(
                membership=membership, same=same, shared=shared
            )
        return self._copy

    def seed_copy_counts(self, same: np.ndarray, shared: np.ndarray) -> None:
        """Provide incrementally-maintained pairwise overlap counts.

        A :class:`repro.core.delta.SeriesCompiler` patches the ``same`` /
        ``shared`` matrices day over day instead of recomputing the sparse
        products; only the (cheap) membership CSR is rebuilt when copy
        detection first runs on this problem.
        """
        self._copy_seed = (same, shared)
        self._copy = None


@dataclass(frozen=True)
class CopyStructures:
    """Selection-independent sparse structures shared by detection rounds."""

    membership: object  # (n_sources, n_clusters) CSR
    same: np.ndarray    # (S, S) pairs' same-cluster claim counts
    shared: np.ndarray  # (S, S) pairs' shared-item counts


@dataclass
class FusionResult:
    """Outcome of one fusion run."""

    method: str
    selected: Dict[DataItem, Value]
    trust: Dict[str, float]
    attr_trust: Optional[Dict[Tuple[str, str], float]] = None
    rounds: int = 0
    converged: bool = True
    runtime_seconds: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)

    def value_for(self, item: DataItem) -> Optional[Value]:
        return self.selected.get(item)


class FusionMethod(abc.ABC):
    """Base class implementing the shared fixed-point iteration."""

    #: Registry name, e.g. ``"AccuSim"``.
    name: str = "base"
    #: Default initial trust assigned to every source.
    initial_trust: float = 0.8
    #: Whether trust is maintained per (source, attribute) pair.
    per_attribute_trust: bool = False
    #: Whether the method runs copy detection (sessions then ask the
    #: series compiler to maintain the pairwise overlap counts).
    uses_copy_detection: bool = False

    def __init__(self, max_rounds: int = DEFAULT_MAX_ROUNDS,
                 tolerance: float = DEFAULT_TOLERANCE,
                 engine: Optional[str] = None):
        self.max_rounds = max_rounds
        self.tolerance = tolerance
        self.engine = resolve_engine(engine)

    # ------------------------------------------------------------------ API
    def run(
        self,
        data: "Dataset | FusionProblem",
        trust_seed: Optional[Dict[str, float]] = None,
        freeze_trust: bool = False,
        **kwargs,
    ) -> FusionResult:
        """Fuse a snapshot.

        Parameters
        ----------
        data:
            A :class:`Dataset` or a prebuilt :class:`FusionProblem` (reusing
            one problem across methods avoids re-clustering).
        trust_seed:
            Initial per-source trust, e.g. the sampled trustworthiness of
            Table 7's "prec w. trust" column.
        freeze_trust:
            Do not update trust: compute votes once from the seed and select
            (the paper's "no need for iteration" mode).
        """
        # The solver loop lives in FusionSession (fusion/spec.py); a one-shot
        # run is a cold session stepped once onto the compiled snapshot.
        from repro.fusion.spec import FusionSession

        problem = data if isinstance(data, FusionProblem) else FusionProblem(data)
        session = FusionSession(self, warm_start=False)
        return session.step(
            problem, trust_seed=trust_seed, freeze_trust=freeze_trust
        )

    # ------------------------------------------------------------ state mgmt
    def _initial_state(
        self, problem: FusionProblem, trust_seed: Optional[Dict[str, float]]
    ) -> Dict[str, np.ndarray]:
        if self.per_attribute_trust:
            trust = np.full(
                (problem.n_sources, problem.n_attrs), self.initial_trust
            )
            if trust_seed:
                base = problem.trust_vector(trust_seed, self.initial_trust)
                trust = np.repeat(base[:, None], problem.n_attrs, axis=1)
        else:
            if trust_seed:
                trust = problem.trust_vector(trust_seed, self.initial_trust)
            else:
                trust = np.full(problem.n_sources, self.initial_trust)
        return {"trust": trust}

    def _claim_trust(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        """Per-claim trust, resolving per-attribute trust when enabled."""
        trust = state["trust"]
        if self.per_attribute_trust:
            return trust[problem.claim_source, problem.claim_attr]
        return trust[problem.claim_source]

    def _package(
        self,
        problem: FusionProblem,
        state: Dict[str, np.ndarray],
        selected: np.ndarray,
        rounds: int,
        converged: bool,
        runtime: float,
    ) -> FusionResult:
        trust = state["trust"]
        if self.per_attribute_trust:
            attr_trust = {
                (problem.sources[s], problem.attributes[a]): float(trust[s, a])
                for s in range(problem.n_sources)
                for a in range(problem.n_attrs)
            }
            flat = {
                problem.sources[s]: float(np.mean(trust[s]))
                for s in range(problem.n_sources)
            }
        else:
            attr_trust = None
            flat = {
                problem.sources[s]: float(trust[s]) for s in range(problem.n_sources)
            }
        return FusionResult(
            method=self.name,
            selected=problem.selection_to_values(selected),
            trust=flat,
            attr_trust=attr_trust,
            rounds=rounds,
            converged=converged,
            runtime_seconds=runtime,
        )

    # -------------------------------------------------------------- plumbing
    @abc.abstractmethod
    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        """Score every cluster given the current state.

        The returned array may be one of the problem's reusable scratch
        buffers: it is valid until the next vote/trust kernel runs on the
        same problem (exactly one fixed-point round, which is all the
        solver needs).  Callers that keep scores across kernel calls —
        diagnostics, tests comparing two runs — must ``.copy()`` them.
        """

    @abc.abstractmethod
    def _update_trust(
        self,
        problem: FusionProblem,
        state: Dict[str, np.ndarray],
        scores: np.ndarray,
        selected: np.ndarray,
    ) -> np.ndarray:
        """Recompute trust from the current scores/selection."""


def accumulate_by_source(
    problem: FusionProblem, per_claim: np.ndarray, per_attribute: bool = False
) -> np.ndarray:
    """Sum a per-claim quantity into a per-source (or per source-attr) array."""
    if per_attribute:
        flat_index = problem.claim_attr_flat
        sums = np.bincount(
            flat_index, weights=per_claim,
            minlength=problem.n_sources * problem.n_attrs,
        )
        return sums.reshape(problem.n_sources, problem.n_attrs)
    return np.bincount(
        problem.claim_source, weights=per_claim, minlength=problem.n_sources
    )


def accumulate_by_cluster(
    problem: FusionProblem, per_claim: np.ndarray
) -> np.ndarray:
    """Sum a per-claim quantity into a per-cluster array."""
    return np.bincount(
        problem.claim_cluster, weights=per_claim, minlength=problem.n_clusters
    )


def segment_sum_per_item(problem: FusionProblem, per_cluster: np.ndarray) -> np.ndarray:
    """Sum a per-cluster quantity over each item."""
    return np.bincount(
        problem.cluster_item, weights=per_cluster, minlength=problem.n_items
    )


def softmax_per_item(problem: FusionProblem, scores: np.ndarray) -> np.ndarray:
    """Per-item softmax of cluster scores (numerically stabilized).

    Clusters are grouped per item (``item_start`` segments), so the
    stabilizing max is a ``maximum.reduceat`` — bit-identical to the old
    ``maximum.at`` scatter but without its per-element dispatch — and every
    temporary lives in the problem's scratch pool.  The returned array is a
    scratch buffer: valid until the next vote kernel runs on this problem,
    which is exactly the lifetime the fixed-point round gives it.
    """
    starts = problem.item_start[:-1]
    n = problem.n_clusters
    item_max = np.maximum.reduceat(
        scores, starts, out=problem.scratch("softmax_item", problem.n_items)
    )
    shifted = problem.scratch("softmax_shifted", n)
    np.take(item_max, problem.cluster_item, out=shifted, mode="clip")
    np.subtract(scores, shifted, out=shifted)
    np.exp(shifted, out=shifted)
    denom = segment_sum_per_item(problem, shifted)
    out = problem.scratch("softmax_out", n)
    np.take(denom, problem.cluster_item, out=out, mode="clip")
    np.divide(shifted, out, out=out)
    return out
