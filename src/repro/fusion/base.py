"""Shared fusion framework (Section 4.1).

Every fusion method in the paper is a fixed-point iteration over two maps:

* **value votes** — from source trustworthiness to a score per candidate
  value, and
* **source trustworthiness** — from the value scores back to a per-source
  (or per source-attribute) trust figure.

:class:`FusionProblem` precomputes the snapshot into flat numpy arrays so
every method runs off the same representation: candidate values are the
tolerance buckets of Section 3.2 (*clusters*), claims are (source, cluster)
pairs, and optional evidence — value similarity edges and formatting
subsumption edges — is precomputed as sparse pair lists.

:class:`FusionMethod` implements the shared iteration skeleton, convergence
detection, trust seeding (the "given sampled trustworthiness" mode of
Table 7), and result packaging.  Concrete methods override
:meth:`FusionMethod._votes` and :meth:`FusionMethod._update_trust`.
"""

from __future__ import annotations

import abc
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.attributes import ValueKind
from repro.core.dataset import Dataset
from repro.core.records import DataItem, Value
from repro.errors import FusionError

#: Default cap on fixed-point rounds.
DEFAULT_MAX_ROUNDS = 60
#: Default L-infinity convergence threshold on the trust vector.
DEFAULT_TOLERANCE = 1e-5
#: Similarity decay scale, in units of the attribute tolerance.
SIMILARITY_SCALE = 5.0
#: Similarity edges below this weight are dropped.
SIMILARITY_FLOOR = 0.05
#: Neighbourhood (in buckets) searched for similar values.
SIMILARITY_WINDOW = 12
#: Weight of a formatting-implied partial vote.
FORMAT_WEIGHT = 0.5


class FusionProblem:
    """A snapshot compiled to flat arrays for the fusion methods.

    Attributes
    ----------
    items:
        The data items, in a fixed order.
    cluster_item:
        For every cluster (candidate value), the index of its item.
    item_start:
        Clusters of item ``i`` are ``range(item_start[i], item_start[i+1])``.
    claim_source / claim_cluster:
        One entry per (source, provided value) pair.
    sim_a / sim_b / sim_w:
        Directed value-similarity edges within an item.
    fmt_source / fmt_cluster / fmt_w:
        Formatting evidence: source partially supports a cluster whose
        representative rounds to the source's (coarser) provided value.
    """

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        self.items: List[DataItem] = list(dataset.items)
        self.n_items = len(self.items)
        if self.n_items == 0:
            raise FusionError("cannot fuse an empty dataset")
        self.sources: List[str] = list(dataset.source_ids)
        self.n_sources = len(self.sources)
        self.source_index = {s: i for i, s in enumerate(self.sources)}
        self.attributes: List[str] = dataset.attributes.names
        self.attr_index = {a: i for i, a in enumerate(self.attributes)}
        self.n_attrs = len(self.attributes)

        cluster_item: List[int] = []
        cluster_rep: List[Value] = []
        cluster_support: List[int] = []
        item_start = [0]
        item_attr: List[int] = []
        claim_source: List[int] = []
        claim_cluster: List[int] = []
        claim_granularity: List[float] = []  # 0 = exact
        claim_value: List[Value] = []

        for item_idx, item in enumerate(self.items):
            clustering = dataset.clustering(item)
            item_attr.append(self.attr_index[item.attribute])
            for cluster in clustering.clusters:
                cluster_idx = len(cluster_item)
                cluster_item.append(item_idx)
                cluster_rep.append(cluster.representative)
                cluster_support.append(cluster.support)
                claims = dataset.claims_on(item)
                for source_id in cluster.providers:
                    claim = claims[source_id]
                    claim_source.append(self.source_index[source_id])
                    claim_cluster.append(cluster_idx)
                    claim_granularity.append(claim.granularity or 0.0)
                    claim_value.append(claim.value)
            item_start.append(len(cluster_item))

        self.cluster_item = np.asarray(cluster_item, dtype=np.int64)
        self.cluster_rep: List[Value] = cluster_rep
        self.cluster_support = np.asarray(cluster_support, dtype=np.int64)
        self.item_start = np.asarray(item_start, dtype=np.int64)
        self.item_attr = np.asarray(item_attr, dtype=np.int64)
        self.n_clusters = len(cluster_rep)
        self.claim_source = np.asarray(claim_source, dtype=np.int64)
        self.claim_cluster = np.asarray(claim_cluster, dtype=np.int64)
        self.claim_item = self.cluster_item[self.claim_cluster]
        self.claim_attr = self.item_attr[self.claim_item]
        self.n_claims = len(self.claim_source)
        self._claim_granularity = np.asarray(claim_granularity, dtype=np.float64)
        self._claim_value = claim_value

        self.claims_per_source = np.bincount(
            self.claim_source, minlength=self.n_sources
        ).astype(np.float64)
        self.providers_per_item = np.bincount(
            self.claim_item, minlength=self.n_items
        ).astype(np.float64)
        self.clusters_per_item = np.diff(self.item_start).astype(np.float64)

        self._sim: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._fmt: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # ----------------------------------------------------------- lazy extras
    @property
    def similarity_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed within-item similarity edges ``(a, b, weight)``.

        ``weight = exp(-|va - vb| / (SIMILARITY_SCALE * tau))`` for numeric
        and time attributes; string values have no similarity.
        """
        if self._sim is None:
            self._sim = self._build_similarity()
        return self._sim

    def _build_similarity(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        edges_a: List[int] = []
        edges_b: List[int] = []
        edges_w: List[float] = []
        dataset = self.dataset
        for item_idx, item in enumerate(self.items):
            start, stop = self.item_start[item_idx], self.item_start[item_idx + 1]
            if stop - start < 2:
                continue
            spec = dataset.spec(item.attribute)
            if spec.kind is ValueKind.STRING:
                continue
            tol = dataset.tolerance(item.attribute)
            if tol <= 0:
                continue
            reps = []
            for c in range(start, stop):
                try:
                    reps.append(float(self.cluster_rep[c]))  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    reps.append(math.nan)
            for i in range(stop - start):
                if math.isnan(reps[i]):
                    continue
                for j in range(stop - start):
                    if i == j or math.isnan(reps[j]):
                        continue
                    distance = abs(reps[i] - reps[j]) / tol
                    if distance > SIMILARITY_WINDOW:
                        continue
                    weight = math.exp(-distance / SIMILARITY_SCALE)
                    if weight >= SIMILARITY_FLOOR:
                        edges_a.append(start + i)
                        edges_b.append(start + j)
                        edges_w.append(weight)
        return (
            np.asarray(edges_a, dtype=np.int64),
            np.asarray(edges_b, dtype=np.int64),
            np.asarray(edges_w, dtype=np.float64),
        )

    @property
    def format_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Formatting evidence edges ``(source, cluster, weight)``.

        A source that provides a rounded value ``v`` at granularity ``g`` is a
        partial provider (weight :data:`FORMAT_WEIGHT`) of every other
        cluster on the item whose representative rounds to ``v`` at ``g``.
        """
        if self._fmt is None:
            self._fmt = self._build_format_edges()
        return self._fmt

    def _build_format_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        src: List[int] = []
        dst: List[int] = []
        wgt: List[float] = []
        rounded = np.flatnonzero(self._claim_granularity > 0)
        for claim_idx in rounded:
            granularity = self._claim_granularity[claim_idx]
            own_cluster = self.claim_cluster[claim_idx]
            item_idx = self.cluster_item[own_cluster]
            try:
                own_value = float(self._claim_value[claim_idx])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
            start, stop = self.item_start[item_idx], self.item_start[item_idx + 1]
            for c in range(start, stop):
                if c == own_cluster:
                    continue
                try:
                    rep = float(self.cluster_rep[c])  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue
                if abs(round(rep / granularity) * granularity - own_value) <= granularity * 1e-9:
                    src.append(int(self.claim_source[claim_idx]))
                    dst.append(c)
                    wgt.append(FORMAT_WEIGHT)
        return (
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.asarray(wgt, dtype=np.float64),
        )

    # ------------------------------------------------------------- selection
    def argmax_per_item(self, scores: np.ndarray) -> np.ndarray:
        """Index of the best-scoring cluster of each item (first on ties)."""
        best = np.empty(self.n_items, dtype=np.int64)
        starts, stops = self.item_start[:-1], self.item_start[1:]
        for i in range(self.n_items):
            segment = scores[starts[i]:stops[i]]
            best[i] = starts[i] + int(np.argmax(segment))
        return best

    def selection_to_values(self, selected: np.ndarray) -> Dict[DataItem, Value]:
        return {
            self.items[i]: self.cluster_rep[int(selected[i])]
            for i in range(self.n_items)
        }

    def trust_vector(self, trust_by_source: Dict[str, float], default: float) -> np.ndarray:
        vector = np.full(self.n_sources, default, dtype=np.float64)
        for source_id, value in trust_by_source.items():
            idx = self.source_index.get(source_id)
            if idx is not None:
                vector[idx] = value
        return vector


@dataclass
class FusionResult:
    """Outcome of one fusion run."""

    method: str
    selected: Dict[DataItem, Value]
    trust: Dict[str, float]
    attr_trust: Optional[Dict[Tuple[str, str], float]] = None
    rounds: int = 0
    converged: bool = True
    runtime_seconds: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)

    def value_for(self, item: DataItem) -> Optional[Value]:
        return self.selected.get(item)


class FusionMethod(abc.ABC):
    """Base class implementing the shared fixed-point iteration."""

    #: Registry name, e.g. ``"AccuSim"``.
    name: str = "base"
    #: Default initial trust assigned to every source.
    initial_trust: float = 0.8
    #: Whether trust is maintained per (source, attribute) pair.
    per_attribute_trust: bool = False

    def __init__(self, max_rounds: int = DEFAULT_MAX_ROUNDS,
                 tolerance: float = DEFAULT_TOLERANCE):
        self.max_rounds = max_rounds
        self.tolerance = tolerance

    # ------------------------------------------------------------------ API
    def run(
        self,
        data: "Dataset | FusionProblem",
        trust_seed: Optional[Dict[str, float]] = None,
        freeze_trust: bool = False,
        **kwargs,
    ) -> FusionResult:
        """Fuse a snapshot.

        Parameters
        ----------
        data:
            A :class:`Dataset` or a prebuilt :class:`FusionProblem` (reusing
            one problem across methods avoids re-clustering).
        trust_seed:
            Initial per-source trust, e.g. the sampled trustworthiness of
            Table 7's "prec w. trust" column.
        freeze_trust:
            Do not update trust: compute votes once from the seed and select
            (the paper's "no need for iteration" mode).
        """
        problem = data if isinstance(data, FusionProblem) else FusionProblem(data)
        started = time.perf_counter()
        state = self._initial_state(problem, trust_seed)
        rounds = 0
        converged = False
        selected = None
        for rounds in range(1, self.max_rounds + 1):
            scores = self._votes(problem, state)
            selected = problem.argmax_per_item(scores)
            if freeze_trust:
                converged = True
                break
            new_trust = self._update_trust(problem, state, scores, selected)
            delta = float(np.max(np.abs(new_trust - state["trust"]))) if new_trust.size else 0.0
            state["trust"] = new_trust
            if delta < self.tolerance:
                converged = True
                break
        if selected is None:  # pragma: no cover - max_rounds >= 1 always
            raise FusionError("fusion produced no selection")
        runtime = time.perf_counter() - started
        return self._package(problem, state, selected, rounds, converged, runtime)

    # ------------------------------------------------------------ state mgmt
    def _initial_state(
        self, problem: FusionProblem, trust_seed: Optional[Dict[str, float]]
    ) -> Dict[str, np.ndarray]:
        if self.per_attribute_trust:
            trust = np.full(
                (problem.n_sources, problem.n_attrs), self.initial_trust
            )
            if trust_seed:
                base = problem.trust_vector(trust_seed, self.initial_trust)
                trust = np.repeat(base[:, None], problem.n_attrs, axis=1)
        else:
            if trust_seed:
                trust = problem.trust_vector(trust_seed, self.initial_trust)
            else:
                trust = np.full(problem.n_sources, self.initial_trust)
        return {"trust": trust}

    def _claim_trust(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        """Per-claim trust, resolving per-attribute trust when enabled."""
        trust = state["trust"]
        if self.per_attribute_trust:
            return trust[problem.claim_source, problem.claim_attr]
        return trust[problem.claim_source]

    def _package(
        self,
        problem: FusionProblem,
        state: Dict[str, np.ndarray],
        selected: np.ndarray,
        rounds: int,
        converged: bool,
        runtime: float,
    ) -> FusionResult:
        trust = state["trust"]
        if self.per_attribute_trust:
            attr_trust = {
                (problem.sources[s], problem.attributes[a]): float(trust[s, a])
                for s in range(problem.n_sources)
                for a in range(problem.n_attrs)
            }
            flat = {
                problem.sources[s]: float(np.mean(trust[s]))
                for s in range(problem.n_sources)
            }
        else:
            attr_trust = None
            flat = {
                problem.sources[s]: float(trust[s]) for s in range(problem.n_sources)
            }
        return FusionResult(
            method=self.name,
            selected=problem.selection_to_values(selected),
            trust=flat,
            attr_trust=attr_trust,
            rounds=rounds,
            converged=converged,
            runtime_seconds=runtime,
        )

    # -------------------------------------------------------------- plumbing
    @abc.abstractmethod
    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        """Score every cluster given the current state."""

    @abc.abstractmethod
    def _update_trust(
        self,
        problem: FusionProblem,
        state: Dict[str, np.ndarray],
        scores: np.ndarray,
        selected: np.ndarray,
    ) -> np.ndarray:
        """Recompute trust from the current scores/selection."""


def accumulate_by_source(
    problem: FusionProblem, per_claim: np.ndarray, per_attribute: bool = False
) -> np.ndarray:
    """Sum a per-claim quantity into a per-source (or per source-attr) array."""
    if per_attribute:
        flat_index = problem.claim_source * problem.n_attrs + problem.claim_attr
        sums = np.bincount(
            flat_index, weights=per_claim,
            minlength=problem.n_sources * problem.n_attrs,
        )
        return sums.reshape(problem.n_sources, problem.n_attrs)
    return np.bincount(
        problem.claim_source, weights=per_claim, minlength=problem.n_sources
    )


def accumulate_by_cluster(
    problem: FusionProblem, per_claim: np.ndarray
) -> np.ndarray:
    """Sum a per-claim quantity into a per-cluster array."""
    return np.bincount(
        problem.claim_cluster, weights=per_claim, minlength=problem.n_clusters
    )


def segment_sum_per_item(problem: FusionProblem, per_cluster: np.ndarray) -> np.ndarray:
    """Sum a per-cluster quantity over each item."""
    return np.bincount(
        problem.cluster_item, weights=per_cluster, minlength=problem.n_items
    )


def softmax_per_item(problem: FusionProblem, scores: np.ndarray) -> np.ndarray:
    """Per-item softmax of cluster scores (numerically stabilized)."""
    item_max = np.full(problem.n_items, -np.inf)
    np.maximum.at(item_max, problem.cluster_item, scores)
    shifted = np.exp(scores - item_max[problem.cluster_item])
    denom = segment_sum_per_item(problem, shifted)
    return shifted / denom[problem.cluster_item]
