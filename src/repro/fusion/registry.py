"""Method registry and the Table 6 feature matrix.

Every fusion method of the paper, keyed by its Table 6/7 name, with a
factory, its category, and the evidence types it uses.  Methods come in the
paper's order so the experiment tables render identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.errors import FusionError
from repro.fusion.base import FusionMethod
from repro.fusion.bayesian import (
    AccuFormat,
    AccuFormatAttr,
    AccuPr,
    AccuSim,
    AccuSimAttr,
    PopAccu,
    TruthFinder,
)
from repro.fusion.copy_aware import AccuCopy
from repro.fusion.ir import Cosine, ThreeEstimates, TwoEstimates
from repro.fusion.vote import Vote
from repro.fusion.weblink import AvgLog, Hub, Invest, PooledInvest


@dataclass(frozen=True)
class MethodInfo:
    """One Table 6 row."""

    name: str
    category: str
    factory: Callable[[], FusionMethod]
    num_providers: bool = True
    source_trust: bool = False
    item_trust: bool = False
    value_popularity: bool = False
    value_similarity: bool = False
    value_formatting: bool = False
    copying: bool = False

    def features(self) -> Dict[str, bool]:
        return {
            "#Providers": self.num_providers,
            "Source trustworthiness": self.source_trust,
            "Item trustworthiness": self.item_trust,
            "Value popularity": self.value_popularity,
            "Value similarity": self.value_similarity,
            "Value formatting": self.value_formatting,
            "Copying": self.copying,
        }


_REGISTRY: List[MethodInfo] = [
    MethodInfo("Vote", "Baseline", Vote),
    MethodInfo("Hub", "Web-link based", Hub, source_trust=True),
    MethodInfo("AvgLog", "Web-link based", AvgLog, source_trust=True),
    MethodInfo("Invest", "Web-link based", Invest, source_trust=True),
    MethodInfo("PooledInvest", "Web-link based", PooledInvest, source_trust=True),
    MethodInfo("2-Estimates", "IR based", TwoEstimates, source_trust=True),
    MethodInfo("3-Estimates", "IR based", ThreeEstimates,
               source_trust=True, item_trust=True),
    MethodInfo("Cosine", "IR based", Cosine, source_trust=True),
    MethodInfo("TruthFinder", "Bayesian based", TruthFinder,
               source_trust=True, value_similarity=True),
    MethodInfo("AccuPr", "Bayesian based", AccuPr, source_trust=True),
    MethodInfo("PopAccu", "Bayesian based", PopAccu,
               source_trust=True, value_popularity=True),
    MethodInfo("AccuSim", "Bayesian based", AccuSim,
               source_trust=True, value_similarity=True),
    MethodInfo("AccuFormat", "Bayesian based", AccuFormat,
               source_trust=True, value_similarity=True, value_formatting=True),
    MethodInfo("AccuSimAttr", "Bayesian based", AccuSimAttr,
               source_trust=True, value_similarity=True),
    MethodInfo("AccuFormatAttr", "Bayesian based", AccuFormatAttr,
               source_trust=True, value_similarity=True, value_formatting=True),
    MethodInfo("AccuCopy", "Copying affected", AccuCopy,
               source_trust=True, value_similarity=True, value_formatting=True,
               copying=True),
]

_BY_NAME: Dict[str, MethodInfo] = {info.name: info for info in _REGISTRY}

#: Paper order, for rendering Tables 6, 7, and 9.
METHOD_NAMES: Tuple[str, ...] = tuple(info.name for info in _REGISTRY)

#: The methods compared in Table 7/9 excluding the baseline.
ITERATIVE_METHOD_NAMES: Tuple[str, ...] = tuple(
    name for name in METHOD_NAMES if name != "Vote"
)


def method_info(name: str) -> MethodInfo:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise FusionError(
            f"unknown fusion method {name!r}; known: {', '.join(METHOD_NAMES)}"
        ) from None


def make_method(name: str, **kwargs) -> FusionMethod:
    """Instantiate a method by its Table 6 name."""
    info = method_info(name)
    return info.factory(**kwargs) if kwargs else info.factory()


def all_method_infos() -> List[MethodInfo]:
    return list(_REGISTRY)


def feature_matrix() -> Dict[str, Dict[str, bool]]:
    """Table 6 as a nested dict: method -> evidence -> used?"""
    return {info.name: info.features() for info in _REGISTRY}
