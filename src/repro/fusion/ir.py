"""IR-based fusion methods (Section 4.1): COSINE, 2-ESTIMATES, 3-ESTIMATES.

Following Galland et al. (WSDM 2010), these methods treat a source's claims
as a +/-1 vector over (item, value) positions: claiming value ``v`` on item
``d`` asserts ``v`` and denies every other value of ``d``.

* **COSINE** — source trustworthiness is the cosine similarity between the
  source's assertion vector and the current truth-estimate vector; updates
  are damped by a linear combination with the previous trust.
* **2-ESTIMATES** — value scores average the providers' trust and the
  complement (1 - trust) of the deniers; both scores and trust are re-scaled
  onto the full [0, 1] range each round (the paper's "complex
  normalization").
* **3-ESTIMATES** — adds a per-value *error factor* (difficulty), modelling
  the probability that a vote on this value is wrong as
  ``(1 - trust) * difficulty``, re-estimated each round.

Where Galland et al. leave freedom (damping constants, exponents), we follow
the constants of their paper; structural simplifications are noted inline.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.fusion.base import (
    FusionMethod,
    FusionProblem,
    accumulate_by_cluster,
    accumulate_by_source,
    segment_sum_per_item,
)

_EPS = 1e-9


def _minmax(values: np.ndarray) -> np.ndarray:
    """Affine re-scale onto [0, 1] (identity when constant)."""
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < _EPS:
        return np.clip(values, 0.0, 1.0)
    return (values - lo) / (hi - lo)


class Cosine(FusionMethod):
    """Galland et al.'s Cosine fixed point."""

    name = "Cosine"
    initial_trust = 0.8

    def __init__(self, damping: float = 0.2, exponent: float = 3.0, **kwargs):
        super().__init__(**kwargs)
        self.damping = damping
        self.exponent = exponent

    def _weights(self, trust: np.ndarray) -> np.ndarray:
        return np.sign(trust) * np.abs(trust) ** self.exponent

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        weight = self._weights(state["trust"])[problem.claim_source]
        positive = accumulate_by_cluster(problem, weight)
        item_signed = segment_sum_per_item(problem, positive)
        item_abs = np.bincount(
            problem.claim_item, weights=np.abs(weight), minlength=problem.n_items
        )
        # score = (supporters - deniers) / total, in [-1, 1]
        numerator = 2.0 * positive - item_signed[problem.cluster_item]
        return numerator / np.maximum(item_abs[problem.cluster_item], _EPS)

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        item_score_sum = segment_sum_per_item(problem, scores)
        item_score_sq = segment_sum_per_item(problem, scores ** 2)
        per_claim_dot = (
            2.0 * scores[problem.claim_cluster]
            - item_score_sum[problem.claim_item]
        )
        dots = accumulate_by_source(problem, per_claim_dot)
        norm_sq = accumulate_by_source(problem, item_score_sq[problem.claim_item])
        positions = accumulate_by_source(
            problem, problem.clusters_per_item[problem.claim_item]
        )
        cosine = dots / np.maximum(np.sqrt(positions) * np.sqrt(norm_sq), _EPS)
        return self.damping * state["trust"] + (1.0 - self.damping) * cosine


class TwoEstimates(FusionMethod):
    """Galland et al.'s 2-Estimates with full [0, 1] normalization.

    Truth estimates are rounded onto {0, 1} after normalization (Galland et
    al.'s best-performing variant).  Without rounding the complement-voting
    fixed point is bistable: the *inverted* solution — accurate sources at
    trust 0, inaccurate at 1 — is exactly as self-consistent as the intended
    one, and min-max rescaling can drift the iteration across the basin
    boundary.
    """

    name = "2-Estimates"
    initial_trust = 0.8
    round_estimates = True

    def _theta(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        trust = state["trust"][problem.claim_source]
        support = accumulate_by_cluster(problem, trust)
        item_trust = segment_sum_per_item(problem, support)
        providers = problem.providers_per_item[problem.cluster_item]
        cluster_support = problem.cluster_support_f
        # deniers' complement votes: (1 - t) summed over sources on the item
        # that did not provide this cluster.
        denier_complement = (
            (providers - cluster_support)
            - (item_trust[problem.cluster_item] - support)
        )
        theta = (support + denier_complement) / np.maximum(providers, 1.0)
        return _minmax(theta)

    def _round(self, problem: FusionProblem, theta: np.ndarray) -> np.ndarray:
        # maximum.reduceat over the per-item cluster segments: bit-identical
        # to the old maximum.at scatter (max is order-insensitive) without
        # its per-element ufunc dispatch.
        item_max = np.maximum.reduceat(
            theta, problem.item_start[:-1],
            out=problem.scratch("round_item", problem.n_items),
        )
        threshold = np.take(
            item_max, problem.cluster_item,
            out=problem.scratch("round_gather", problem.n_clusters), mode="clip",
        )
        np.subtract(threshold, 1e-12, out=threshold)
        rounded = problem.scratch("round_out", problem.n_clusters)
        np.greater_equal(theta, threshold, out=rounded)
        return rounded

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        theta = self._theta(problem, state)
        if self.round_estimates:
            # Keep theta for tie-stable selection; round for the trust step.
            state["_rounded"] = self._round(problem, theta)
        return theta

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        theta = state.pop("_rounded", None) if self.round_estimates else None
        if theta is None:
            theta = scores
        item_theta = segment_sum_per_item(problem, theta)
        own = theta[problem.claim_cluster]
        clusters_here = problem.clusters_per_item[problem.claim_item]
        denied = (clusters_here - 1.0) - (item_theta[problem.claim_item] - own)
        per_claim = own + denied
        sums = accumulate_by_source(problem, per_claim)
        positions = accumulate_by_source(problem, clusters_here)
        trust = sums / np.maximum(positions, 1.0)
        return _minmax(trust)


class ThreeEstimates(TwoEstimates):
    """2-Estimates plus a per-value error factor (difficulty)."""

    name = "3-Estimates"

    def _initial_state(self, problem, trust_seed):
        state = super()._initial_state(problem, trust_seed)
        state["difficulty"] = np.full(problem.n_clusters, 0.5)
        return state

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        trust = state["trust"][problem.claim_source]
        difficulty = state["difficulty"]
        error = np.clip(
            (1.0 - trust) * difficulty[problem.claim_cluster], 0.0, 1.0
        )
        confident = accumulate_by_cluster(problem, 1.0 - error)
        item_error = np.bincount(
            problem.claim_item, weights=error, minlength=problem.n_items
        )
        own_error = accumulate_by_cluster(problem, error)
        providers = problem.providers_per_item[problem.cluster_item]
        # Providers vote (1 - err); every other provider of the item erred
        # with probability err, which is weak evidence for this value.
        theta = (
            confident + (item_error[problem.cluster_item] - own_error)
        ) / np.maximum(providers, 1.0)
        theta = _minmax(theta)
        state["_theta"] = theta
        return theta

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        trust = state["trust"]
        # Re-estimate difficulty: observed error mass of a value's providers
        # relative to their (1 - trust) budget.
        one_minus_theta = 1.0 - scores[problem.claim_cluster]
        budget = 1.0 - trust[problem.claim_source]
        observed = accumulate_by_cluster(problem, one_minus_theta)
        capacity = accumulate_by_cluster(problem, budget)
        difficulty = _minmax(observed / np.maximum(capacity, _EPS))
        state["difficulty"] = difficulty

        # Re-estimate trust: 1 - mean over claims of (1 - theta) / difficulty.
        scaled_error = one_minus_theta / np.maximum(
            difficulty[problem.claim_cluster], 0.05
        )
        sums = accumulate_by_source(problem, scaled_error)
        counts = np.maximum(problem.claims_per_source, 1.0)
        new_trust = 1.0 - sums / counts
        return _minmax(new_trust)
