"""Section 5 extensions: per-category trust and multi-truth selection.

Two of the paper's "future research directions", implemented:

* **Per-category source quality** — *"data from one source may have
  different quality for data items of different categories; for example, a
  source may provide precise data for UA flights but low-quality data for
  AA-flights. Can we automatically detect such differences?"*
  :class:`AccuCategory` maintains trust per (source, object-category) pair,
  where the category is any caller-supplied function of the data item.

* **Multiple truths under semantics ambiguity** — *"in the presence of
  semantics ambiguity ... for each semantics there is a true value so there
  are multiple truths. Can we effectively find all correct values that fit
  at least one of the semantics?"*  :func:`select_plausible_values` returns,
  per item, every value whose posterior probability is within a factor of
  the winner's — the coherent alternative-semantics readings — instead of a
  single truth.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.records import DataItem, Value
from repro.fusion.base import (
    FusionProblem,
    accumulate_by_cluster,
    softmax_per_item,
)
from repro.fusion.bayesian import AccuSim, _TRUST_CLIP

CategoryFn = Callable[[DataItem], str]


def _object_prefix(item: DataItem) -> str:
    """Default category: leading alphabetic prefix of the object id.

    For the Flight domain this is the airline code (``AA119-SFO`` -> ``AA``),
    the paper's motivating example.
    """
    head = []
    for ch in item.object_id:
        if ch.isalpha():
            head.append(ch)
        else:
            break
    return "".join(head) or "_"


class AccuCategory(AccuSim):
    """ACCUSIM with trust per (source, item-category) cell.

    Uses the same smoothing scheme as the per-attribute variants: thin cells
    shrink toward the source's global accuracy.
    """

    name = "AccuCategory"
    per_attribute_trust = False  # we manage the trust matrix ourselves

    def __init__(self, category_fn: CategoryFn = _object_prefix,
                 smoothing: float = 4.0, **kwargs):
        super().__init__(**kwargs)
        self.category_fn = category_fn
        self.smoothing = smoothing
        self._categories: List[str] = []
        self._item_category: Optional[np.ndarray] = None

    def _prepare(self, problem: FusionProblem) -> None:
        labels = [self.category_fn(item) for item in problem.items]
        self._categories = sorted(set(labels))
        index = {c: i for i, c in enumerate(self._categories)}
        self._item_category = np.asarray([index[c] for c in labels], dtype=np.int64)

    def _initial_state(self, problem, trust_seed):
        self._prepare(problem)
        n_categories = len(self._categories)
        trust = np.full((problem.n_sources, n_categories), self.initial_trust)
        if trust_seed:
            base = problem.trust_vector(trust_seed, self.initial_trust)
            trust = np.repeat(base[:, None], n_categories, axis=1)
        return {"trust": trust}

    def _claim_trust(self, problem, state):
        categories = self._item_category[problem.claim_item]
        return state["trust"][problem.claim_source, categories]

    def _update_trust(self, problem, state, scores, selected):
        per_claim = scores[problem.claim_cluster]
        categories = self._item_category[problem.claim_item]
        n_categories = len(self._categories)
        flat = problem.claim_source * n_categories + categories
        sums = np.bincount(
            flat, weights=per_claim, minlength=problem.n_sources * n_categories
        ).reshape(problem.n_sources, n_categories)
        counts = np.bincount(
            flat, minlength=problem.n_sources * n_categories
        ).reshape(problem.n_sources, n_categories).astype(np.float64)
        global_acc = sums.sum(axis=1) / np.maximum(counts.sum(axis=1), 1.0)
        smoothed = (sums + self.smoothing * global_acc[:, None]) / (
            counts + self.smoothing
        )
        return np.clip(smoothed, *_TRUST_CLIP)

    def _package(self, problem, state, selected, rounds, converged, runtime):
        result = super(AccuSim, self)._package(
            problem,
            {"trust": state["trust"].mean(axis=1)},
            selected,
            rounds,
            converged,
            runtime,
        )
        result.method = self.name
        result.extras["categories"] = list(self._categories)
        result.extras["category_trust"] = {
            (problem.sources[s], category): float(state["trust"][s, c])
            for s in range(problem.n_sources)
            for c, category in enumerate(self._categories)
        }
        return result

    def category_trust(self, result) -> Dict[tuple, float]:
        return result.extras["category_trust"]


def select_plausible_values(
    problem: FusionProblem,
    method: Optional[AccuSim] = None,
    score_ratio: float = 0.5,
    max_values: int = 3,
) -> Dict[DataItem, List[Value]]:
    """All values plausible under *some* semantics, per item (Section 5).

    Runs the given ACCU-family method (default :class:`AccuSim`) to estimate
    source accuracies, then keeps every value whose *collective vote count*
    (sum of its providers' log-vote weights) is at least ``score_ratio``
    times the item winner's, capped at ``max_values``.  A coherent
    alternative-semantics reading (quarterly dividends, takeoff times) is
    backed by many reasonably-trusted sources and survives; a scattered
    error is backed by one or two and does not.

    Vote counts rather than posteriors are compared because the mutually-
    exclusive softmax is exponentially peaked — any second value would need
    nearly equal support to register at all.
    """
    fusion = method if method is not None else AccuSim()
    result = fusion.run(problem)
    # Recompute vote counts at the converged trust.
    trust = problem.trust_vector(result.trust, fusion.initial_trust)
    accuracy = np.clip(trust, *_TRUST_CLIP)
    votes = np.log(
        fusion.n_false_values * accuracy / (1.0 - accuracy)
    )[problem.claim_source]
    scores = np.maximum(accumulate_by_cluster(problem, votes), 0.0)

    # Keep clusters within score_ratio of their item's best, ordered by
    # descending score (stable on ties, like the per-item sort it replaces).
    best = np.maximum.reduceat(scores, problem.item_start[:-1])
    kept = np.flatnonzero(scores >= score_ratio * best[problem.cluster_item])
    order = np.lexsort((kept, -scores[kept], problem.cluster_item[kept]))
    ranked = kept[order]
    ranked_item = problem.cluster_item[ranked]
    bounds = np.searchsorted(ranked_item, np.arange(problem.n_items + 1))
    reps = problem.cluster_rep
    ranked_list = ranked.tolist()
    plausible: Dict[DataItem, List[Value]] = {}
    for item_idx, item in enumerate(problem.items):
        lo = int(bounds[item_idx])
        hi = min(int(bounds[item_idx + 1]), lo + max_values)
        plausible[item] = [reps[c] for c in ranked_list[lo:hi]]
    return plausible
