"""ACCUCOPY — copying-aware fusion (Section 4.1).

ACCUCOPY augments ACCUFORMAT by weighting each source's vote by the
probability that it provided the value *independently*: copy detection runs
each round against the current selection (Dong et al. 2009), and a vote
shared with likely copy partners is discounted.

Two extra modes support the paper's experiments:

* ``known_groups`` — Table 7's "given the discovered copying" mode: the
  ground-truth groups are supplied and detection is skipped;
* ``similarity_aware_detection`` — the Section 5 ablation: copy detection
  credits values highly similar to the truth as true, avoiding the false
  positives that hurt ACCUCOPY on Stock.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.copying.detection import (
    DEFAULT_COPY_PROB,
    detect_copying,
    independence_weights,
    known_groups_matrix,
    selection_accuracy,
)
from repro.fusion.base import (
    FusionProblem,
    accumulate_by_cluster,
    softmax_per_item,
)
from repro.fusion.bayesian import AccuFormat, _TRUST_CLIP


class AccuCopy(AccuFormat):
    """ACCUFORMAT with votes discounted by copy-dependence probabilities."""

    name = "AccuCopy"
    per_attribute_trust = False
    uses_copy_detection = True

    def __init__(
        self,
        known_groups: Optional[Sequence[Sequence[str]]] = None,
        similarity_aware_detection: bool = False,
        copy_probability: float = DEFAULT_COPY_PROB,
        detection_interval: int = 1,
        agreement_gate: Optional[float] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.known_groups = known_groups
        self.similarity_aware_detection = similarity_aware_detection
        self.copy_probability = copy_probability
        self.detection_interval = max(1, detection_interval)
        #: None uses the detector default; 0 disables the gate (the raw
        #: Dong et al. behaviour, which false-positives on honest sources —
        #: the paper's Stock failure mode; see the copy-detection ablation).
        self.agreement_gate = agreement_gate

    def _initial_state(self, problem: FusionProblem, trust_seed):
        state = super()._initial_state(problem, trust_seed)
        # The round counter lives in the state dict (not on the method) so
        # the instance stays a stateless spec shareable across sessions.
        state["round"] = 0
        if self.known_groups is not None:
            dependence = known_groups_matrix(problem, self.known_groups)
            state["independence"] = independence_weights(
                problem, dependence, self.copy_probability
            )
        else:
            state["independence"] = np.ones(problem.n_claims)
        return state

    def _votes(self, problem: FusionProblem, state: Dict[str, np.ndarray]) -> np.ndarray:
        per_claim = self._vote_counts(problem, state) * state["independence"]
        scores = accumulate_by_cluster(problem, per_claim)
        if self.use_popularity:
            scores = scores + self._popularity_discount(problem) * problem.cluster_support
        if self.use_format:
            fmt_source, fmt_cluster, fmt_w = problem.format_edges
            if len(fmt_source):
                acc = np.clip(state["trust"][fmt_source], *_TRUST_CLIP)
                votes = np.log(self.n_false_values * acc / (1.0 - acc))
                np.add.at(scores, fmt_cluster, fmt_w * votes)
        if self.use_similarity:
            sim_a, sim_b, sim_w = problem.similarity_edges
            if len(sim_a):
                base = scores.copy()
                np.add.at(scores, sim_b, self.rho * sim_w * base[sim_a])
        return softmax_per_item(problem, scores)

    def _update_trust(self, problem, state, scores, selected) -> np.ndarray:
        new_trust = super()._update_trust(problem, state, scores, selected)
        state["round"] = int(state.get("round", 0)) + 1
        if self.known_groups is None and state["round"] % self.detection_interval == 0:
            kwargs = {}
            if self.agreement_gate is not None:
                kwargs["agreement_gate"] = self.agreement_gate
            detection = detect_copying(
                problem,
                selected,
                accuracy=selection_accuracy(problem, selected),
                copy_probability=self.copy_probability,
                similarity_aware=self.similarity_aware_detection,
                **kwargs,
            )
            state["independence"] = independence_weights(
                problem, detection.probability, self.copy_probability
            )
            state["last_detection"] = detection.probability
        return new_trust
