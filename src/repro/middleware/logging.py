"""Structured request logging: one JSON line per request.

Each completed request emits a single machine-parseable line —

``{"ts": ..., "method": "GET", "path": "/lookup", "status": 200,``
``"duration_ms": 0.21, "bytes": 94, "version": 7}``

— where ``version`` is the store version the answer came from (the
``X-Store-Version`` header the route handlers stamp), so serve logs can be
joined against the publish history.  For streamed responses (``/dump``,
``/events``) the duration covers the handler that *opened* the stream, not
the streaming itself, and ``bytes`` is -1; the line is written when the
response object is produced so a long-lived SSE subscription is still
logged at accept time.

The sink is any ``write()``-able text stream (default ``sys.stderr``);
exceptions from the wrapped handler are logged as status 500 and re-raised
for the server's error path to render.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Optional, TextIO

from repro.middleware import Handler, Middleware, Request

__all__ = ["request_logging"]


def request_logging(stream: Optional[TextIO] = None) -> Middleware:
    """Log every request as a JSON line to ``stream`` (default stderr)."""

    def middleware(handler: Handler) -> Handler:
        async def logged(request: Request):
            sink = stream if stream is not None else sys.stderr
            started = time.perf_counter()
            status = 500
            response = None
            try:
                response = await handler(request)
                status = response.status
                return response
            finally:
                record = {
                    "ts": time.time(),
                    "method": request.method,
                    "path": request.path,
                    "status": status,
                    "duration_ms": round(
                        (time.perf_counter() - started) * 1e3, 3
                    ),
                    "bytes": (
                        -1
                        if response is None or response.stream is not None
                        else len(response.body)
                    ),
                }
                if response is not None:
                    version = response.headers.get("X-Store-Version")
                    if version is not None:
                        record["version"] = int(version)
                try:
                    sink.write(json.dumps(record) + "\n")
                    sink.flush()
                except (OSError, ValueError):
                    pass  # a dead log sink must never fail the request

        return logged

    return middleware
