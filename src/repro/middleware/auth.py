"""Token-auth middleware: reject unauthenticated requests at the front door.

One static token guards every endpoint except an exempt list (``/health``
by default, so load balancers can probe without credentials).  Clients
present the token either as ``Authorization: Bearer <token>`` or as an
``X-API-Token`` header; comparison is constant-time.  This is deliberately
the simplest credential that still exercises the composition point — a
richer scheme (key sets, scopes) slots in as another middleware without
touching the server or the routes.
"""

from __future__ import annotations

import hmac
from typing import Sequence

from repro.middleware import Handler, Middleware, Request, json_response

__all__ = ["token_auth"]


def _presented_token(request: Request) -> str:
    authorization = request.headers.get("authorization", "")
    if authorization.lower().startswith("bearer "):
        return authorization[len("bearer "):].strip()
    return request.headers.get("x-api-token", "")


def token_auth(
    token: str,
    exempt: Sequence[str] = ("/health",),
) -> Middleware:
    """Require ``token`` on every request whose path is not in ``exempt``."""
    if not token:
        raise ValueError("token_auth needs a non-empty token")
    exempt_paths = frozenset(exempt)

    def middleware(handler: Handler) -> Handler:
        async def guarded(request: Request):
            if request.path in exempt_paths:
                return await handler(request)
            supplied = _presented_token(request)
            if not supplied or not hmac.compare_digest(supplied, token):
                return json_response(
                    {"error": "unauthorized"},
                    status=401,
                    headers={"WWW-Authenticate": "Bearer"},
                )
            return await handler(request)

        return guarded

    return middleware
