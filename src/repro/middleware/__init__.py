"""Composable request middleware for the HTTP truth-serving front-end.

The front-end (:mod:`repro.server`) models a request pipeline the way ASGI
frameworks do, but over two small dataclasses instead of a framework:

* :class:`Request` / :class:`Response` — one parsed HTTP exchange.  A
  response either carries ``body`` bytes (sent with ``Content-Length``) or
  an async ``stream`` of chunks (sent with ``Transfer-Encoding: chunked`` —
  the bulk-dump and SSE endpoints).
* a **handler** is ``async def handler(request) -> Response``;
* a **middleware** is a callable taking a handler and returning a wrapped
  handler — :func:`compose` folds a sequence of them around the innermost
  route dispatch, outermost first, so ``compose([a, b], h)`` runs
  ``a -> b -> h``.

The two shipped middlewares mirror the Agent-Server exemplar's
``auth_middleware`` / ``logging_middleware`` pair: :func:`token_auth`
(:mod:`repro.middleware.auth`) rejects unauthenticated requests before any
route code runs, and :func:`request_logging` (:mod:`repro.middleware.logging`)
emits one structured JSON line per request on the way back out.  Both are
plain middleware values — custom ones compose exactly the same way.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    Optional,
    Sequence,
)

__all__ = [
    "Request",
    "Response",
    "Handler",
    "Middleware",
    "compose",
    "json_response",
    "token_auth",
    "request_logging",
]

#: Reason phrases for the statuses the front-end emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


@dataclass
class Request:
    """One parsed HTTP request (headers lower-cased, query decoded)."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    http_version: str = "1.1"


@dataclass
class Response:
    """One HTTP response: either ``body`` bytes or a chunked ``stream``."""

    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: When set, the body is streamed chunk by chunk (``Transfer-Encoding:
    #: chunked``) and ``body`` is ignored — bulk dumps and SSE.
    stream: Optional[AsyncIterator[bytes]] = None

    @property
    def reason(self) -> str:
        return REASONS.get(self.status, "Unknown")


Handler = Callable[[Request], Awaitable[Response]]
Middleware = Callable[[Handler], Handler]


def compose(middlewares: Sequence[Middleware], handler: Handler) -> Handler:
    """Fold ``middlewares`` around ``handler``, outermost first."""
    for middleware in reversed(middlewares):
        handler = middleware(handler)
    return handler


def json_response(
    payload: object,
    status: int = 200,
    headers: Optional[Dict[str, str]] = None,
) -> Response:
    """A UTF-8 ``application/json`` response."""
    merged = {"Content-Type": "application/json; charset=utf-8"}
    if headers:
        merged.update(headers)
    return Response(
        status=status,
        headers=merged,
        body=json.dumps(payload, ensure_ascii=False).encode("utf-8"),
    )


from repro.middleware.auth import token_auth  # noqa: E402
from repro.middleware.logging import request_logging  # noqa: E402
