"""repro — a reproduction of "Truth Finding on the Deep Web: Is the Problem
Solved?" (Li et al., VLDB 2012).

The package is organized by subsystem:

* :mod:`repro.core` — the data model: attributes, claims, datasets,
  tolerance bucketing, gold standards;
* :mod:`repro.normalize` — value/time/string parsing and schema matching;
* :mod:`repro.datagen` — the Deep-Web simulator (Stock and Flight domains);
* :mod:`repro.profiling` — every data-quality measure of Section 3;
* :mod:`repro.fusion` — the sixteen fusion methods of Section 4;
* :mod:`repro.copying` — Bayesian copy detection;
* :mod:`repro.evaluation` — precision/recall, comparisons, error analysis;
* :mod:`repro.experiments` — one module per table/figure of the paper.

Quickstart::

    from repro.datagen import generate_stock_collection, StockConfig
    from repro.fusion import make_method
    from repro.evaluation import evaluate

    collection = generate_stock_collection(StockConfig.small())
    result = make_method("AccuSim").run(collection.snapshot)
    print(evaluate(collection.snapshot, collection.gold, result))
"""

from repro.core import (
    AttributeSpec,
    AttributeTable,
    Claim,
    DataItem,
    Dataset,
    DatasetSeries,
    ErrorReason,
    GoldStandard,
    SourceCategory,
    SourceMeta,
    ValueKind,
    build_gold_standard,
)
from repro.datagen import (
    DomainCollection,
    FlightConfig,
    StockConfig,
    generate_flight_collection,
    generate_stock_collection,
)
from repro.errors import (
    ConfigError,
    ConvergenceError,
    FusionError,
    GoldStandardError,
    ReproError,
    SchemaError,
    ValueParseError,
)
from repro.evaluation import evaluate
from repro.fusion import (
    METHOD_NAMES,
    FusionProblem,
    FusionResult,
    make_method,
)

__version__ = "1.0.0"

__all__ = [
    "AttributeSpec", "AttributeTable", "Claim", "DataItem", "Dataset",
    "DatasetSeries", "ErrorReason", "GoldStandard", "SourceCategory",
    "SourceMeta", "ValueKind", "build_gold_standard",
    "DomainCollection", "FlightConfig", "StockConfig",
    "generate_flight_collection", "generate_stock_collection",
    "ConfigError", "ConvergenceError", "FusionError", "GoldStandardError",
    "ReproError", "SchemaError", "ValueParseError",
    "evaluate",
    "METHOD_NAMES", "FusionProblem", "FusionResult", "make_method",
    "__version__",
]
