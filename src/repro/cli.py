"""Command-line interface: fuse a claims CSV with any method.

Usage::

    python -m repro.cli fuse claims.csv --method AccuSim -o result.json
    python -m repro.cli fuse claims.csv --method AccuCopy --gold gold.csv
    python -m repro.cli export-demo stock claims.csv --gold gold.csv
    python -m repro.cli methods

``export-demo`` writes one of the generated collections to CSV so the
round-trip can be exercised without private data.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.evaluation.metrics import evaluate
from repro.fusion.base import FusionProblem
from repro.fusion.registry import METHOD_NAMES, make_method
from repro.io import (
    read_claims_csv,
    read_gold_csv,
    write_claims_csv,
    write_gold_csv,
    write_result_json,
)


def _cmd_methods(_args: argparse.Namespace) -> int:
    for name in METHOD_NAMES:
        print(name)
    return 0


def _cmd_fuse(args: argparse.Namespace) -> int:
    dataset = read_claims_csv(args.claims)
    print(
        f"loaded {dataset.num_claims} claims from {dataset.num_sources} sources "
        f"({dataset.num_items} items)",
        file=sys.stderr,
    )
    method = make_method(args.method)
    result = method.run(FusionProblem(dataset))
    print(
        f"{args.method}: {result.rounds} rounds, "
        f"converged={result.converged}, {result.runtime_seconds:.2f}s",
        file=sys.stderr,
    )
    if args.gold:
        gold = read_gold_csv(args.gold)
        score = evaluate(dataset, gold, result)
        print(f"precision={score.precision:.4f} recall={score.recall:.4f}")
    if args.output:
        write_result_json(result, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    elif not args.gold:
        for item, value in sorted(result.selected.items())[:20]:
            print(f"{item.object_id}\t{item.attribute}\t{value}")
        if len(result.selected) > 20:
            print(f"... ({len(result.selected)} items; use -o for the full set)")
    return 0


def _cmd_export_demo(args: argparse.Namespace) -> int:
    if args.domain == "stock":
        from repro.datagen import StockConfig, generate_stock_collection

        collection = generate_stock_collection(StockConfig.small())
    else:
        from repro.datagen import FlightConfig, generate_flight_collection

        collection = generate_flight_collection(FlightConfig.small())
    write_claims_csv(collection.snapshot, args.claims)
    print(f"wrote {args.claims}", file=sys.stderr)
    if args.gold:
        write_gold_csv(collection.gold, args.gold)
        print(f"wrote {args.gold}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Truth discovery over a claims CSV.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuse = sub.add_parser("fuse", help="run a fusion method on a claims CSV")
    fuse.add_argument("claims", help="claims CSV (see repro.io)")
    fuse.add_argument("--method", default="AccuSim", choices=METHOD_NAMES)
    fuse.add_argument("--gold", help="optional gold CSV to score against")
    fuse.add_argument("-o", "--output", help="write the result JSON here")
    fuse.set_defaults(func=_cmd_fuse)

    demo = sub.add_parser("export-demo", help="export a generated collection")
    demo.add_argument("domain", choices=("stock", "flight"))
    demo.add_argument("claims", help="output claims CSV path")
    demo.add_argument("--gold", help="also write the gold standard here")
    demo.set_defaults(func=_cmd_export_demo)

    methods = sub.add_parser("methods", help="list available fusion methods")
    methods.set_defaults(func=_cmd_methods)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
