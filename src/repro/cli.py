"""Command-line interface: fuse a claims CSV with any method.

Usage::

    python -m repro.cli fuse claims.csv --method AccuSim -o result.json
    python -m repro.cli fuse claims.csv --method AccuCopy --gold gold.csv
    python -m repro.cli stream days/ --method AccuSim --output-dir out/
    python -m repro.cli serve claims.csv --shards 4 --store store.json
    python -m repro.cli serve days/ --stream --listen 8080 --store store.json
    python -m repro.cli serve store.json --listen 127.0.0.1:8080
    python -m repro.cli query store.json --object o1 --attribute price
    python -m repro.cli export-demo stock claims.csv --gold gold.csv
    python -m repro.cli methods

``export-demo`` writes one of the generated collections to CSV so the
round-trip can be exercised without private data.  ``stream`` tails a
directory of daily claim CSVs (one snapshot per file, processed in sorted
filename order) through warm fusion sessions, emitting each day's
selections and trust as it lands.  ``serve`` fuses a claims CSV (optionally
sharded by object across worker processes) — or streams a directory of
daily CSVs through warm sessions — into a versioned
:class:`~repro.serving.TruthStore` JSON file; ``query`` answers point
lookups, ensemble answers, and trust reads from that file without
re-solving anything.

With ``--listen [HOST:]PORT`` ``serve`` additionally exposes the store over
HTTP (:mod:`repro.server`): point lookups, trust reads, ensemble answers,
``/health``, a chunked ``/dump``, and an SSE ``/events`` stream that
surfaces each day's publish and solve progress live.  The listener starts
*before* the solves, so in streaming mode clients watch versions appear as
days land; the store is built with ``monotonic_days=True`` so a delayed
re-publish of an older day can never overwrite a newer snapshot.  A
prebuilt store JSON can be served directly (``serve store.json --listen``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.evaluation.metrics import evaluate
from repro.fusion.base import FusionProblem
from repro.fusion.registry import METHOD_NAMES
from repro.io import (
    read_claims_csv,
    read_gold_csv,
    write_claims_csv,
    write_gold_csv,
    write_result_json,
)


def _sharding_mode(args: argparse.Namespace) -> Optional[str]:
    """The validated ``cross_shard`` mode for ``--shards``/``--approximate``.

    ``None`` means the flags are inconsistent (the message is printed);
    shared by ``stream`` and ``serve`` so their CLI contracts cannot drift.
    """
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return None
    if args.approximate and args.shards == 1:
        print("--approximate needs --shards K with K > 1", file=sys.stderr)
        return None
    return "independent" if args.approximate else "exact"


def _method_kwargs(args: argparse.Namespace) -> dict:
    """Solver flags shared by ``fuse`` and ``stream``."""
    kwargs = {}
    if getattr(args, "max_rounds", None) is not None:
        kwargs["max_rounds"] = args.max_rounds
    if getattr(args, "tolerance", None) is not None:
        kwargs["tolerance"] = args.tolerance
    if getattr(args, "engine", None) is not None:
        kwargs["engine"] = args.engine
    return kwargs


def _cmd_methods(_args: argparse.Namespace) -> int:
    for name in METHOD_NAMES:
        print(name)
    return 0


def _cmd_fuse(args: argparse.Namespace) -> int:
    from repro.parallel import solve_methods

    dataset = read_claims_csv(args.claims)
    print(
        f"loaded {dataset.num_claims} claims from {dataset.num_sources} sources "
        f"({dataset.num_items} items)",
        file=sys.stderr,
    )
    methods = args.method or ["AccuSim"]
    kwargs = _method_kwargs(args)
    problem = FusionProblem(dataset)
    # One compiled problem, one method run each; several methods fan out
    # across the worker pool.
    outcomes = solve_methods(
        problem,
        methods,
        workers=args.workers,
        method_kwargs={name: dict(kwargs) for name in methods},
    )
    gold = read_gold_csv(args.gold) if args.gold else None
    multi = len(methods) > 1
    for name, outcome in zip(methods, outcomes):
        result = outcome.result
        print(
            f"{name}: {result.rounds} rounds, "
            f"converged={result.converged}, {result.runtime_seconds:.2f}s",
            file=sys.stderr,
        )
        if gold is not None:
            score = evaluate(dataset, gold, result)
            prefix = f"{name}: " if multi else ""
            print(f"{prefix}precision={score.precision:.4f} recall={score.recall:.4f}")
        if args.output:
            output = Path(args.output)
            if multi:
                output = output.with_name(f"{output.stem}.{name}{output.suffix}")
            write_result_json(result, output)
            print(f"wrote {output}", file=sys.stderr)
        elif gold is None:
            for item, value in sorted(result.selected.items())[:20]:
                print(f"{item.object_id}\t{item.attribute}\t{value}")
            if len(result.selected) > 20:
                print(f"... ({len(result.selected)} items; use -o for the full set)")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.streaming import StreamRunner

    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"{directory} is not a directory", file=sys.stderr)
        return 2
    cross_shard = _sharding_mode(args)
    if cross_shard is None:
        return 2
    methods = args.method or ["AccuSim"]
    kwargs = _method_kwargs(args)
    runner = StreamRunner(
        methods,
        {name: dict(kwargs) for name in methods} if kwargs else None,
        warm_start=not args.cold,
        workers=args.workers,
        shards=args.shards,
        cross_shard=cross_shard,
    )
    output_dir = Path(args.output_dir) if args.output_dir else None
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)

    try:
        return _stream_loop(args, directory, methods, runner, output_dir)
    finally:
        runner.close()


def _stream_loop(args, directory, methods, runner, output_dir) -> int:
    seen = set()
    idle_polls = 0
    while True:
        pending = sorted(
            p for p in directory.glob("*.csv") if p.name not in seen
        )
        if not pending:
            if not args.follow:
                break
            idle_polls += 1
            if args.max_polls is not None and idle_polls >= args.max_polls:
                break
            time.sleep(args.poll_seconds)
            continue
        idle_polls = 0
        for path in pending:
            if seen and path.name < max(seen):
                # A late-arriving file sorts before a day already fused;
                # warm trust and delta state now see days out of order.
                print(
                    f"warning: {path.name} arrived after later days were "
                    "fused; streaming it out of order",
                    file=sys.stderr,
                )
            seen.add(path.name)
            dataset = read_claims_csv(path)
            step = runner.push(dataset)
            stats = step.stats
            for name, result in step.results.items():
                print(
                    f"{step.day} {name}: {len(result.selected)} items, "
                    f"{result.rounds} rounds, converged={result.converged}, "
                    f"compile {step.compile_seconds:.3f}s "
                    f"({'full' if stats.full_compile else 'delta'}, "
                    f"{stats.n_dirty_items} dirty items), "
                    f"solve {result.runtime_seconds:.3f}s"
                )
                if output_dir is not None:
                    out = output_dir / f"{step.day}.{name}.json"
                    write_result_json(result, out)
                    print(f"wrote {out}", file=sys.stderr)
    if not runner.steps:
        print(f"no claim CSVs found in {directory}", file=sys.stderr)
        return 1
    print(
        f"streamed {len(runner.steps)} day(s) x {len(methods)} method(s)",
        file=sys.stderr,
    )
    return 0


def _parse_listen(text: str) -> Optional[tuple]:
    """``[HOST:]PORT`` -> ``(host, port)``; ``None`` when unparseable."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        return None
    if not 0 <= port <= 65535:
        return None
    return (host or "127.0.0.1", port)


def _start_listener(args: argparse.Namespace, listen: tuple, store):
    from repro.server import run_in_thread

    host, port = listen
    handle = run_in_thread(
        store,
        host,
        port,
        backend=args.backend,
        auth_token=args.auth_token,
        log_stream=None if args.no_request_log else sys.stderr,
    )
    print(f"serving on {handle.url}", file=sys.stderr)
    return handle


def _listen_wait(args: argparse.Namespace) -> None:
    """Block while the HTTP listener serves (bounded by ``--listen-for``)."""
    try:
        if args.listen_for is not None:
            time.sleep(args.listen_for)
        else:  # pragma: no cover - interactive serve-until-interrupted
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover
        pass


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import StalePublishError
    from repro.serving import TruthService, TruthStore

    listen = None
    if args.listen is not None:
        listen = _parse_listen(args.listen)
        if listen is None:
            print(
                f"--listen expects [HOST:]PORT, got {args.listen!r}",
                file=sys.stderr,
            )
            return 2
    source = Path(args.source)
    methods = args.method or ["AccuSim"]
    kwargs = _method_kwargs(args)

    if source.is_file() and source.suffix == ".json":
        # A prebuilt store: nothing to solve, just answer traffic from it.
        if listen is None:
            print(
                f"{source} looks like a store JSON; serving it needs "
                "--listen [HOST:]PORT (use `query` for one-shot reads)",
                file=sys.stderr,
            )
            return 2
        try:
            store = TruthStore.load(source)
        except (OSError, ValueError, KeyError) as error:
            print(f"cannot read store {source}: {error}", file=sys.stderr)
            return 2
        with _start_listener(args, listen, store):
            _listen_wait(args)
        return 0

    if args.stream and not source.is_dir():
        print(
            f"--stream serves a directory of daily CSVs; {source} is not one",
            file=sys.stderr,
        )
        return 2
    cross_shard = _sharding_mode(args)
    if cross_shard is None:
        return 2
    # Live listeners get a monotonic store: the publish loop is exactly
    # where a delayed re-publish of an older day would otherwise silently
    # overwrite a newer snapshot under concurrent readers.
    store = TruthStore(monotonic_days=listen is not None)
    handle = _start_listener(args, listen, store) if listen else None
    try:
        if source.is_dir():
            # Incremental serve: every daily CSV becomes the next store
            # version.  With --shards K each day is diff-compiled by K
            # per-shard series compilers (sharded streaming straight into
            # the persisted store).
            paths = sorted(source.glob("*.csv"))
            if not paths:
                print(f"no claim CSVs found in {source}", file=sys.stderr)
                return 1
            with TruthService(
                methods,
                {name: dict(kwargs) for name in methods} if kwargs else None,
                workers=args.workers,
                store=store,
                shards=args.shards,
                cross_shard=cross_shard,
            ) as service:
                for path in paths:
                    try:
                        version = service.ingest(read_claims_csv(path))
                    except StalePublishError as error:
                        print(
                            f"warning: skipping {path.name}: {error}",
                            file=sys.stderr,
                        )
                        continue
                    store.save(args.store)
                    if handle is not None:
                        step = service.runner.steps[-1]
                        handle.broadcast("day", {
                            "day": step.day,
                            "version": version,
                            "compile_s": round(step.compile_seconds, 4),
                            "rounds": {
                                name: result.rounds
                                for name, result in step.results.items()
                            },
                        })
                    print(
                        f"{store.day}: version {version}, "
                        f"{store.n_items} items -> {args.store}",
                        file=sys.stderr,
                    )
        elif source.is_file():
            dataset = read_claims_csv(source)
            if args.shards > 1:
                from repro.core.shard import ShardedCorpus, ShardPlan

                corpus = ShardedCorpus(
                    dataset,
                    args.shards,
                    cross_shard=cross_shard,
                )
                plan = ShardPlan(
                    corpus, methods, {name: dict(kwargs) for name in methods}
                )
                store.publish_plan(plan.run(workers=args.workers))
            else:
                from repro.parallel import solve_methods

                outcomes = solve_methods(
                    FusionProblem(dataset),
                    methods,
                    workers=args.workers,
                    method_kwargs={name: dict(kwargs) for name in methods},
                )
                store.publish(
                    dataset.day,
                    {name: o.result for name, o in zip(methods, outcomes)},
                )
            store.save(args.store)
            print(
                f"{store.day}: version {store.version}, {store.n_items} items, "
                f"methods: {', '.join(store.methods)} -> {args.store}",
                file=sys.stderr,
            )
        else:
            print(
                f"{source} is neither a claims CSV nor a directory",
                file=sys.stderr,
            )
            return 2
        if handle is not None:
            _listen_wait(args)
    finally:
        if handle is not None:
            handle.stop()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serving import TruthStore

    try:
        store = TruthStore.load(args.store)
    except (OSError, ValueError, KeyError) as error:
        print(f"cannot read store {args.store}: {error}", file=sys.stderr)
        return 2
    snap = store.snapshot()
    if args.trust:
        if args.method is not None and args.method not in snap.methods:
            print(f"method {args.method!r} is not published", file=sys.stderr)
            return 1
        value = store.trust(args.trust, method=args.method, snapshot=snap)
        if value is None:
            print(f"unknown source {args.trust!r}", file=sys.stderr)
            return 1
        print(f"{args.trust}\t{value:.6f}")
        return 0
    if args.object or args.attribute or args.ensemble:
        if not (args.object and args.attribute):
            print(
                "query needs both --object and --attribute", file=sys.stderr
            )
            return 2
        if args.ensemble:
            answer = store.ensemble(args.object, args.attribute, snapshot=snap)
        else:
            answer = store.lookup(
                args.object, args.attribute, method=args.method, snapshot=snap
            )
        if answer is None:
            print(
                f"no truth for ({args.object!r}, {args.attribute!r})",
                file=sys.stderr,
            )
            return 1
        print(
            f"{answer.object_id}\t{answer.attribute}\t{answer.value}\t"
            f"({answer.method}, version {answer.version}, day {answer.day})"
        )
        return 0
    print(
        f"store version {snap.version} (day {snap.day}): {snap.n_items} items, "
        f"methods: {', '.join(snap.methods)}"
    )
    return 0


def _cmd_export_demo(args: argparse.Namespace) -> int:
    if args.domain == "stock":
        from repro.datagen import StockConfig, generate_stock_collection

        collection = generate_stock_collection(StockConfig.small())
    else:
        from repro.datagen import FlightConfig, generate_flight_collection

        collection = generate_flight_collection(FlightConfig.small())
    write_claims_csv(collection.snapshot, args.claims)
    print(f"wrote {args.claims}", file=sys.stderr)
    if args.gold:
        write_gold_csv(collection.gold, args.gold)
        print(f"wrote {args.gold}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Truth discovery over a claims CSV.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuse = sub.add_parser("fuse", help="run fusion method(s) on a claims CSV")
    fuse.add_argument("claims", help="claims CSV (see repro.io)")
    fuse.add_argument("--method", action="append", choices=METHOD_NAMES,
                      help="method(s) to run (repeatable; default: AccuSim)")
    fuse.add_argument("--gold", help="optional gold CSV to score against")
    fuse.add_argument("-o", "--output",
                      help="write the result JSON here (with several methods "
                           "the method name is inserted before the suffix)")
    fuse.add_argument("--max-rounds", type=int, default=None,
                      help="cap on fixed-point rounds (method default: 60)")
    fuse.add_argument("--tolerance", type=float, default=None,
                      help="L-inf trust convergence threshold (default 1e-5)")
    fuse.add_argument("--engine", choices=("numpy", "native"), default=None,
                      help="fixed-point execution engine (default: "
                           "REPRO_ENGINE env var, then numpy; native needs "
                           "numba and falls back to numpy with a warning)")
    fuse.add_argument("--workers", type=int, default=1,
                      help="worker processes when several methods are given")
    fuse.set_defaults(func=_cmd_fuse)

    stream = sub.add_parser(
        "stream",
        help="tail a directory of daily claim CSVs through fusion sessions",
    )
    stream.add_argument("directory", help="directory of per-day claims CSVs")
    stream.add_argument("--method", action="append", choices=METHOD_NAMES,
                        help="method(s) to stream (default: AccuSim)")
    stream.add_argument("--output-dir",
                        help="write per-day result JSONs (<day>.<method>.json)")
    stream.add_argument("--cold", action="store_true",
                        help="cold-start trust every day instead of warm-starting")
    stream.add_argument("--follow", action="store_true",
                        help="keep polling the directory for new CSVs")
    stream.add_argument("--poll-seconds", type=float, default=2.0,
                        help="polling interval with --follow (default 2s)")
    stream.add_argument("--max-polls", type=int, default=None,
                        help="stop --follow after this many idle polls")
    stream.add_argument("--max-rounds", type=int, default=None,
                        help="cap on fixed-point rounds (method default: 60)")
    stream.add_argument("--tolerance", type=float, default=None,
                        help="L-inf trust convergence threshold (default 1e-5)")
    stream.add_argument("--engine", choices=("numpy", "native"), default=None,
                        help="fixed-point execution engine (default: "
                             "REPRO_ENGINE env var, then numpy)")
    stream.add_argument("--workers", type=int, default=1,
                        help="solve each day's methods across this many workers")
    stream.add_argument("--shards", type=int, default=1,
                        help="shard the stream by object key across K "
                             "per-shard series compilers (default 1)")
    stream.add_argument("--approximate", action="store_true",
                        help="solve stream shards independently (shard-local "
                             "trust/tolerances) instead of the exact merge")
    stream.set_defaults(func=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="fuse claims into a queryable truth-store JSON file",
    )
    serve.add_argument("source",
                       help="claims CSV, a directory of per-day CSVs (each "
                            "day becomes the next store version), or an "
                            "existing store JSON to serve with --listen")
    serve.add_argument("--method", action="append", choices=METHOD_NAMES,
                       help="method(s) to publish (repeatable; default: AccuSim)")
    serve.add_argument("--store", default="truth_store.json",
                       help="output store path (default: truth_store.json)")
    serve.add_argument("--shards", type=int, default=1,
                       help="shard the corpus (CSV input) or the stream "
                            "(directory / --stream input) by object key "
                            "into K shards (default 1)")
    serve.add_argument("--approximate", action="store_true",
                       help="solve shards independently (shard-local trust "
                            "and tolerances) instead of the exact merge")
    serve.add_argument("--stream", action="store_true",
                       help="require streaming input: serve a directory of "
                            "daily CSVs through (optionally sharded) warm "
                            "sessions, one store version per day")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes for the solves")
    serve.add_argument("--max-rounds", type=int, default=None,
                       help="cap on fixed-point rounds (method default: 60)")
    serve.add_argument("--tolerance", type=float, default=None,
                       help="L-inf trust convergence threshold (default 1e-5)")
    serve.add_argument("--engine", choices=("numpy", "native"), default=None,
                       help="fixed-point execution engine (default: "
                            "REPRO_ENGINE env var, then numpy)")
    serve.add_argument("--listen", metavar="[HOST:]PORT", default=None,
                       help="also serve the store over HTTP (asyncio "
                            "front-end: /health /lookup /trust /ensemble "
                            "/dump /events); the listener starts before the "
                            "solves so publishes are visible live")
    serve.add_argument("--listen-for", type=float, default=None,
                       metavar="SECONDS",
                       help="stop the HTTP listener after this many seconds "
                            "(default: serve until interrupted)")
    serve.add_argument("--auth-token", default=None,
                       help="require this bearer token (Authorization: "
                            "Bearer or X-API-Token) on every endpoint "
                            "except /health")
    serve.add_argument("--backend", choices=("stdlib", "starlette"),
                       default="stdlib",
                       help="HTTP backend for --listen; starlette/uvicorn "
                            "is an optional fast path that falls back to "
                            "the stdlib server with a warning when the "
                            "packages are missing")
    serve.add_argument("--no-request-log", action="store_true",
                       help="disable the structured JSON request log "
                            "emitted to stderr while listening")
    serve.set_defaults(func=_cmd_serve)

    query = sub.add_parser(
        "query",
        help="answer point lookups from a truth-store JSON file",
    )
    query.add_argument("store", help="store JSON written by `serve`")
    query.add_argument("--object", help="object id to look up")
    query.add_argument("--attribute", help="attribute to look up")
    query.add_argument("--method", default=None,
                       help="published method to read (default: first)")
    query.add_argument("--ensemble", action="store_true",
                       help="majority vote across all published methods")
    query.add_argument("--trust", metavar="SOURCE",
                       help="read a source's published trustworthiness")
    query.set_defaults(func=_cmd_query)

    demo = sub.add_parser("export-demo", help="export a generated collection")
    demo.add_argument("domain", choices=("stock", "flight"))
    demo.add_argument("claims", help="output claims CSV path")
    demo.add_argument("--gold", help="also write the gold standard here")
    demo.set_defaults(func=_cmd_export_demo)

    methods = sub.add_parser("methods", help="list available fusion methods")
    methods.set_defaults(func=_cmd_methods)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
