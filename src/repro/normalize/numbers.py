"""Numeric value normalization (Section 2.2).

Deep-Web sources format the same number many ways — the paper's example is
``"6.7M"``, ``"6,700,000"`` and ``"6700000"`` being the same value.  This
module parses such strings to canonical floats and records the *granularity*
implied by the formatting (``"6.7M"`` is precise only to 0.1 million), which
feeds the formatting evidence used by ACCUFORMAT (Section 4.1).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import ValueParseError

_SUFFIXES = {
    "K": 1e3,
    "M": 1e6,
    "B": 1e9,
    "T": 1e12,
}

_NUMBER_RE = re.compile(
    r"""^\s*
    (?P<sign>[-+(]?)\s*
    \$?\s*
    (?P<digits>\d{1,3}(?:,\d{3})+|\d*\.?\d+)
    \s*(?P<suffix>[KMBT]?)
    \s*(?P<percent>%?)
    \)?\s*$""",
    re.VERBOSE | re.IGNORECASE,
)


@dataclass(frozen=True)
class ParsedNumber:
    """A parsed numeric value plus the granularity implied by its format."""

    value: float
    granularity: Optional[float]
    is_percent: bool = False


def _decimal_places(digits: str) -> int:
    if "." not in digits:
        return 0
    return len(digits.split(".", 1)[1])


def parse_number(raw: str) -> ParsedNumber:
    """Parse one formatted number string.

    Handles thousands separators, currency signs, ``K/M/B/T`` suffixes,
    percent signs, and parenthesized/“-” negatives.  The granularity is the
    smallest step representable in the given format: ``"6.7M"`` has
    granularity ``1e5``; plain integers have granularity ``None`` (exact).

    Raises
    ------
    ValueParseError
        If the string is not a recognizable number.
    """
    if raw is None:
        raise ValueParseError("cannot parse None as a number")
    text = str(raw).strip()
    match = _NUMBER_RE.match(text)
    if not match:
        # Scientific notation ("1e+10") falls outside the Deep-Web formats
        # but is accepted for robustness.
        try:
            value = float(text)
        except ValueError:
            raise ValueParseError(f"unparseable number: {raw!r}") from None
        if math.isnan(value) or math.isinf(value):
            raise ValueParseError(f"unparseable number: {raw!r}")
        return ParsedNumber(value=value, granularity=None)
    digits = match.group("digits").replace(",", "")
    try:
        magnitude = float(digits)
    except ValueError:  # pragma: no cover - regex should prevent this
        raise ValueParseError(f"unparseable number: {raw!r}") from None
    sign = -1.0 if match.group("sign") in ("-", "(") else 1.0
    suffix = match.group("suffix").upper()
    scale = _SUFFIXES.get(suffix, 1.0)
    value = sign * magnitude * scale

    granularity: Optional[float] = None
    if suffix:
        granularity = scale / (10 ** _decimal_places(match.group("digits")))
        if granularity <= 1.0:
            granularity = None
    return ParsedNumber(
        value=value,
        granularity=granularity,
        is_percent=bool(match.group("percent")),
    )


def format_number(value: float, granularity: Optional[float] = None) -> str:
    """Render a float the way a Deep-Web source would.

    With a granularity of 1e6 renders ``"7.5M"``-style strings; otherwise a
    plain decimal with thousands separators for large integers.
    """
    if granularity and granularity >= 1e3:
        for suffix, scale in (("T", 1e12), ("B", 1e9), ("M", 1e6), ("K", 1e3)):
            if granularity >= scale or abs(value) >= scale:
                decimals = max(0, int(round(math.log10(scale / granularity))))
                return f"{value / scale:.{decimals}f}{suffix}"
    if abs(value) >= 1000 and float(value).is_integer():
        return f"{int(value):,}"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.10g}"


def round_to_granularity(value: float, granularity: float) -> float:
    """Round a value onto a granularity grid (what a rounding source reports)."""
    if granularity <= 0:
        raise ValueParseError(f"granularity must be positive, got {granularity}")
    return round(value / granularity) * granularity


def rounds_to(fine: float, coarse: float, granularity: float) -> bool:
    """Whether ``coarse`` equals ``fine`` rounded onto the granularity grid.

    This is the subsumption test behind the ACCUFORMAT evidence (Section 4.1):
    a source that rounds to millions and provides ``"8M"`` is treated as a
    partial provider of any finer value that rounds to 8e6.
    """
    if granularity <= 0:
        return False
    return math.isclose(
        round(fine / granularity) * granularity, coarse, rel_tol=1e-12, abs_tol=granularity * 1e-9
    )
