"""Time value normalization for the Flight domain.

Flight sources report times in many formats — ``"6:15 PM"``, ``"18:15"``,
``"Dec 8 6:15p"`` — and the paper normalizes them before comparison, with a
10-minute tolerance.  The canonical representation throughout this library is
*minutes since midnight* as a float, so arithmetic (deviation in minutes,
Equation 2) is direct.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import ValueParseError

_TIME_RE = re.compile(
    r"""(?:^|\s)
    (?P<hour>\d{1,2})
    :
    (?P<minute>\d{2})
    (?::(?P<second>\d{2}))?
    \s*
    (?P<ampm>[AaPp]\.?[Mm]?\.?)?
    \s*$""",
    re.VERBOSE,
)

MINUTES_PER_DAY = 24 * 60


def parse_time(raw: str) -> float:
    """Parse a clock time to minutes since midnight.

    Accepts 24-hour (``"18:15"``) and 12-hour (``"6:15 PM"``, ``"6:15p"``)
    formats, with an optional leading date fragment which is ignored.

    Raises
    ------
    ValueParseError
        If no clock time can be found in the string.
    """
    if raw is None:
        raise ValueParseError("cannot parse None as a time")
    text = str(raw).strip()
    match = _TIME_RE.search(text)
    if not match:
        raise ValueParseError(f"unparseable time: {raw!r}")
    hour = int(match.group("hour"))
    minute = int(match.group("minute"))
    if minute >= 60:
        raise ValueParseError(f"invalid minutes in time: {raw!r}")
    ampm = (match.group("ampm") or "").lower()
    if ampm.startswith("p"):
        if hour > 12:
            raise ValueParseError(f"hour {hour} with PM marker: {raw!r}")
        if hour != 12:
            hour += 12
    elif ampm.startswith("a"):
        if hour > 12:
            raise ValueParseError(f"hour {hour} with AM marker: {raw!r}")
        if hour == 12:
            hour = 0
    if hour >= 24:
        raise ValueParseError(f"invalid hour in time: {raw!r}")
    return float(hour * 60 + minute)


def format_time(minutes: float, twelve_hour: bool = False) -> str:
    """Render minutes-since-midnight as a clock string."""
    total = int(round(minutes)) % MINUTES_PER_DAY
    hour, minute = divmod(total, 60)
    if not twelve_hour:
        return f"{hour:02d}:{minute:02d}"
    suffix = "AM" if hour < 12 else "PM"
    display_hour = hour % 12 or 12
    return f"{display_hour}:{minute:02d} {suffix}"


def minutes_between(a: float, b: float, wrap_midnight: bool = False) -> float:
    """Absolute difference of two clock times in minutes.

    With ``wrap_midnight`` the difference is taken on the 24h circle, so
    23:55 and 00:05 are 10 minutes apart rather than 1430.
    """
    diff = abs(float(a) - float(b))
    if wrap_midnight:
        diff = min(diff, MINUTES_PER_DAY - diff)
    return diff


def clamp_to_day(minutes: float) -> float:
    """Wrap a possibly-negative or >24h offset back into [0, 1440)."""
    return float(minutes) % MINUTES_PER_DAY


def try_parse_time(raw: str) -> Optional[float]:
    """Like :func:`parse_time` but returns ``None`` instead of raising."""
    try:
        return parse_time(raw)
    except ValueParseError:
        return None
