"""String/categorical value normalization (gates, symbols).

The Flight domain's gate attributes are strings with formatting noise:
``"C102"``, ``"C-102"``, ``"Gate C102"``, ``"Terminal C, Gate 102"``.  The
paper resolves such heterogeneity manually; we implement the equivalent
canonicalizer so that value-level comparison only sees genuine conflicts.
"""

from __future__ import annotations

import re

_GATE_NOISE_RE = re.compile(r"\b(gate|terminal|term|concourse)\b", re.IGNORECASE)
_NON_ALNUM_RE = re.compile(r"[^A-Z0-9]+")
_WS_RE = re.compile(r"\s+")


def normalize_gate(raw: str) -> str:
    """Canonicalize a gate designator: ``"Gate C-102"`` -> ``"C102"``."""
    if raw is None:
        return ""
    text = _GATE_NOISE_RE.sub(" ", str(raw))
    text = text.upper()
    text = _NON_ALNUM_RE.sub("", text)
    return text


def normalize_symbol(raw: str) -> str:
    """Canonicalize a stock ticker symbol: strip whitespace, upper-case."""
    if raw is None:
        return ""
    return _WS_RE.sub("", str(raw)).upper()


def normalize_name(raw: str) -> str:
    """Loose canonical form for free-text names (attribute labels etc.)."""
    if raw is None:
        return ""
    text = str(raw).strip().lower()
    text = re.sub(r"[^a-z0-9%$/ ]+", " ", text)
    return _WS_RE.sub(" ", text).strip()
