"""Value, time, string, and schema normalization."""

from repro.normalize.numbers import (
    ParsedNumber,
    format_number,
    parse_number,
    round_to_granularity,
    rounds_to,
)
from repro.normalize.schema import SchemaMatcher, match_statistics
from repro.normalize.strings import normalize_gate, normalize_name, normalize_symbol
from repro.normalize.times import (
    MINUTES_PER_DAY,
    clamp_to_day,
    format_time,
    minutes_between,
    parse_time,
    try_parse_time,
)

__all__ = [
    "ParsedNumber",
    "format_number",
    "parse_number",
    "round_to_granularity",
    "rounds_to",
    "SchemaMatcher",
    "match_statistics",
    "normalize_gate",
    "normalize_name",
    "normalize_symbol",
    "MINUTES_PER_DAY",
    "clamp_to_day",
    "format_time",
    "minutes_between",
    "parse_time",
    "try_parse_time",
]
