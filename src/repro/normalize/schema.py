"""Local-to-global attribute matching (schema-level heterogeneity).

Section 2.2: Stock sources expose 333 differently-named *local* attributes
that collapse to 153 *global* attributes after manual matching ("Some of the
attributes have the same semantics but are named differently").  We reproduce
the mechanism with a synonym table plus a normalized-name fallback: the
simulator emits local names drawn from per-attribute synonym pools, and
:class:`SchemaMatcher` maps them back, so Figure 1 (attribute coverage over
global attributes) can be regenerated from local schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SchemaError
from repro.normalize.strings import normalize_name


@dataclass
class SchemaMatcher:
    """Maps local attribute names to canonical global attribute names."""

    _synonyms: Dict[str, str] = field(default_factory=dict)
    _globals: Dict[str, str] = field(default_factory=dict)

    def register_global(self, name: str) -> None:
        """Declare a global attribute; its own name always maps to itself."""
        key = normalize_name(name)
        if not key:
            raise SchemaError(f"invalid global attribute name {name!r}")
        existing = self._globals.get(key)
        if existing is not None and existing != name:
            raise SchemaError(
                f"normalized collision between globals {existing!r} and {name!r}"
            )
        self._globals[key] = name
        self._synonyms[key] = name

    def register_synonym(self, local_name: str, global_name: str) -> None:
        """Declare one local spelling of a global attribute."""
        gkey = normalize_name(global_name)
        if gkey not in self._globals:
            raise SchemaError(f"unknown global attribute {global_name!r}")
        lkey = normalize_name(local_name)
        if not lkey:
            raise SchemaError(f"invalid local attribute name {local_name!r}")
        mapped = self._synonyms.get(lkey)
        if mapped is not None and mapped != self._globals[gkey]:
            raise SchemaError(
                f"local name {local_name!r} already maps to {mapped!r}"
            )
        self._synonyms[lkey] = self._globals[gkey]

    def resolve(self, local_name: str) -> Optional[str]:
        """The global attribute for a local name, or ``None`` if unmatched."""
        return self._synonyms.get(normalize_name(local_name))

    def resolve_required(self, local_name: str) -> str:
        resolved = self.resolve(local_name)
        if resolved is None:
            raise SchemaError(f"unmatched local attribute {local_name!r}")
        return resolved

    @property
    def global_names(self) -> List[str]:
        return sorted(set(self._globals.values()))

    @property
    def num_locals(self) -> int:
        return len(self._synonyms)

    def match_schema(self, local_names: Iterable[str]) -> Dict[str, Optional[str]]:
        """Resolve a whole local schema at once."""
        return {name: self.resolve(name) for name in local_names}


def match_statistics(
    matcher: SchemaMatcher, local_schemas: Dict[str, Iterable[str]]
) -> Tuple[int, int]:
    """(#local attributes, #global attributes) across sources, as in Table 1.

    ``local_schemas`` maps source id to its local attribute names.  Local
    attributes are counted as distinct names across all sources (the paper's
    333 for Stock); globals are the distinct resolved targets (153).
    """
    local_names = set()
    global_names = set()
    for names in local_schemas.values():
        for name in names:
            local_names.add(normalize_name(name))
            resolved = matcher.resolve(name)
            if resolved is not None:
                global_names.add(resolved)
    return len(local_names), len(global_names)
