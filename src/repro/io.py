"""Import/export: claim tables as CSV, fusion results as JSON.

A downstream user's data rarely starts as a :class:`~repro.core.Dataset`;
this module round-trips the library's objects through plain files:

* :func:`write_claims_csv` / :func:`read_claims_csv` — the sparse claim
  matrix as ``source,object,attribute,value,granularity`` rows, with an
  attribute-spec header section so value kinds survive the round trip;
* :func:`write_result_json` / :func:`read_result_json` — a
  :class:`~repro.fusion.base.FusionResult` (selected values + trust);
* :func:`write_gold_csv` / :func:`read_gold_csv` — gold standards.

Everything is stdlib ``csv``/``json``; no extra dependencies.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.attributes import AttributeSpec, AttributeTable, ValueKind
from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.core.records import Claim, DataItem, SourceMeta, Value
from repro.errors import ValueParseError
from repro.fusion.base import FusionResult

PathLike = Union[str, Path]

_KIND_TAG = "#attribute"
_SOURCE_TAG = "#source"


def _encode_value(value: Value) -> str:
    if isinstance(value, str):
        return f"s:{value}"
    return f"f:{float(value)!r}"


def _decode_value(text: str) -> Value:
    if text.startswith("s:"):
        return text[2:]
    if text.startswith("f:"):
        try:
            return float(text[2:])
        except ValueError:
            raise ValueParseError(f"bad float payload {text!r}") from None
    raise ValueParseError(f"untagged value payload {text!r}")


def write_claims_csv(dataset: Dataset, path: PathLike) -> None:
    """Write a snapshot's claims (plus schema and source metadata) to CSV."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["domain", dataset.domain, "day", dataset.day])
        for spec in dataset.attributes:
            writer.writerow(
                [_KIND_TAG, spec.name, spec.kind.value,
                 repr(spec.tolerance_factor), int(spec.statistical)]
            )
        for meta in dataset.sources.values():
            writer.writerow(
                [_SOURCE_TAG, meta.source_id, meta.name,
                 meta.category.value, int(meta.is_authority)]
            )
        writer.writerow(["source", "object", "attribute", "value", "granularity"])
        for item, source_id, claim in dataset.iter_claims():
            writer.writerow([
                source_id,
                item.object_id,
                item.attribute,
                _encode_value(claim.value),
                "" if claim.granularity is None else repr(claim.granularity),
            ])


def read_claims_csv(path: PathLike) -> Dataset:
    """Read a dataset written by :func:`write_claims_csv` (frozen)."""
    from repro.core.records import SourceCategory

    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if len(header) < 4 or header[0] != "domain":
            raise ValueParseError(f"{path}: not a claims CSV (bad header)")
        domain, day = header[1], header[3]

        table = AttributeTable()
        sources = []
        claims = []
        in_claims = False
        for row in reader:
            if not row:
                continue
            if row[0] == _KIND_TAG:
                table.add(
                    AttributeSpec(
                        name=row[1],
                        kind=ValueKind(row[2]),
                        tolerance_factor=float(row[3]),
                        statistical=bool(int(row[4])),
                    )
                )
            elif row[0] == _SOURCE_TAG:
                sources.append(
                    SourceMeta(
                        source_id=row[1],
                        name=row[2],
                        category=SourceCategory(row[3]),
                        is_authority=bool(int(row[4])),
                    )
                )
            elif row[0] == "source" and not in_claims:
                in_claims = True
            else:
                claims.append(row)

    dataset = Dataset(domain=domain, day=day, attributes=table)
    for meta in sources:
        dataset.add_source(meta)
    for source_id, object_id, attribute, payload, granularity in claims:
        dataset.add_claim(
            source_id,
            DataItem(object_id, attribute),
            Claim(
                value=_decode_value(payload),
                granularity=float(granularity) if granularity else None,
            ),
        )
    return dataset.freeze()


def write_result_json(result: FusionResult, path: PathLike) -> None:
    """Serialize a fusion result (selected values, trust, run metadata)."""
    payload = {
        "method": result.method,
        "rounds": result.rounds,
        "converged": result.converged,
        "runtime_seconds": result.runtime_seconds,
        "selected": [
            {
                "object": item.object_id,
                "attribute": item.attribute,
                "value": _encode_value(value),
            }
            for item, value in sorted(result.selected.items())
        ],
        "trust": result.trust,
        "attr_trust": (
            None
            if result.attr_trust is None
            else [
                {"source": s, "attribute": a, "trust": t}
                for (s, a), t in sorted(result.attr_trust.items())
            ]
        ),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def read_result_json(path: PathLike) -> FusionResult:
    """Load a fusion result written by :func:`write_result_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    selected = {
        DataItem(entry["object"], entry["attribute"]): _decode_value(entry["value"])
        for entry in payload["selected"]
    }
    attr_trust: Optional[Dict] = None
    if payload.get("attr_trust") is not None:
        attr_trust = {
            (entry["source"], entry["attribute"]): entry["trust"]
            for entry in payload["attr_trust"]
        }
    return FusionResult(
        method=payload["method"],
        selected=selected,
        trust=payload["trust"],
        attr_trust=attr_trust,
        rounds=payload["rounds"],
        converged=payload["converged"],
        runtime_seconds=payload["runtime_seconds"],
    )


def write_gold_csv(gold: GoldStandard, path: PathLike) -> None:
    """Write a gold standard to CSV."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["domain", gold.domain])
        writer.writerow(["object", "attribute", "value"])
        for item, value in sorted(gold.values.items()):
            writer.writerow([item.object_id, item.attribute, _encode_value(value)])


def read_gold_csv(path: PathLike) -> GoldStandard:
    """Load a gold standard written by :func:`write_gold_csv`."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if len(header) < 2 or header[0] != "domain":
            raise ValueParseError(f"{path}: not a gold CSV (bad header)")
        domain = header[1]
        next(reader)  # column header
        values = {
            DataItem(row[0], row[1]): _decode_value(row[2])
            for row in reader
            if row
        }
    return GoldStandard(domain=domain, values=values)
