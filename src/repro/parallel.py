"""Parallel execution engine: shared-memory fusion workers and a solve scheduler.

The paper's headline experiments are embarrassingly parallel — sixteen
methods per snapshot, one solve per source-prefix in the Figure 9 sweep,
one per day in Table 9 — but a compiled :class:`~repro.fusion.base.FusionProblem`
is megabytes of numpy arrays, and pickling it into every worker would cost
more than the solves.  This module is the layer in between:

* :class:`SolveScheduler` — takes a *plan* of :class:`SolveJob`\\ s against
  registered problems, dedupes shared compilations (one export per problem,
  not per job), publishes each problem's arrays **once** into
  ``multiprocessing.shared_memory`` (:mod:`repro.core.shm`) with the object
  tables (items, sources, values, attribute specs, gold) in a pickle
  sidecar loaded once per worker, and fans the jobs out to a persistent
  ``ProcessPoolExecutor``.  Workers rehydrate zero-copy problem views,
  run :func:`~repro.fusion.spec.run_fixed_point` (or the batched sweep
  solver of :mod:`repro.fusion.batch`), and results are gathered in
  deterministic plan order.  With ``workers <= 1`` — or on platforms
  without POSIX shared memory — the same job-execution code runs inline,
  so serial and parallel schedules are bit-identical by construction.
* Job shapes cover the big consumers: plain method runs (method
  comparisons, ensembles), source-restricted runs and *batched sweeps*
  (Figure 9 / greedy selection; each worker chunk solves its restrictions
  through the block-diagonal batch solver), and *raw* session steps
  (streaming: the worker returns trust + selected indices and the parent
  session absorbs them, keeping warm-start state authoritative in the
  parent).

Everything future scale work schedules onto lives here: sharding a corpus
is a plan of restricted jobs; serving is a plan of raw steps.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.columnar import ColumnarView, CompiledClusters, compute_tolerances
from repro.core.gold import GoldStandard
from repro.core.shard import (
    ShardSpec,
    _cached_item_codes,
    pack_shard_codes,
    shard_problem,
    shard_problem_from_view,
)
from repro.core.shm import (
    AttachedBundle,
    BundleDescriptor,
    SharedArrayBundle,
    ViewBundle,
    shared_memory_available,
)
from repro.errors import ConfigError, FusionError
from repro.fusion.base import FusionProblem, FusionResult
from repro.fusion.batch import RestrictionOutcome
from repro.fusion.registry import make_method
from repro.fusion.spec import MethodSpec, run_fixed_point

__all__ = [
    "MethodCall",
    "SolveJob",
    "CallOutcome",
    "JobOutcome",
    "SolveScheduler",
    "default_workers",
    "solve_methods",
    "solve_sweep",
]


def default_workers() -> int:
    """A sensible worker count for this host (``0`` disables the pool)."""
    cores = os.cpu_count() or 1
    return cores if cores > 1 else 0


# --------------------------------------------------------------------------
# Plan vocabulary
# --------------------------------------------------------------------------

@dataclass
class MethodCall:
    """One method invocation inside a job."""

    method: str
    kwargs: Dict[str, object] = field(default_factory=dict)
    trust_seed: Optional[Dict[str, float]] = None
    freeze_trust: bool = False
    warm_trust: Optional[np.ndarray] = None
    tag: object = None


@dataclass
class SolveJob:
    """One schedulable unit: method calls against one registered problem.

    ``sources`` restricts the problem (the worker carves the restriction
    from the shared view); ``shard`` carves an object-sharded sub-corpus the
    same way (:func:`repro.core.shard.shard_problem` — the worker recompiles
    the shard from the shared view, so a shard job ships only the
    :class:`~repro.core.shard.ShardSpec`); ``subsets`` turns the job into a
    batched sweep — every call runs on every subset through
    :func:`repro.fusion.batch.solve_restrictions`.  ``raw=True`` returns
    trust/selection arrays instead of packaged results (the streaming
    protocol).  ``evaluate`` scores outcomes against the problem's
    registered gold standard inside the worker.
    """

    problem: str
    calls: List[MethodCall]
    sources: Optional[List[str]] = None
    shard: Optional[ShardSpec] = None
    subsets: Optional[List[List[str]]] = None
    batched: bool = True
    raw: bool = False
    evaluate: bool = False
    return_selection: bool = True
    tag: object = None


@dataclass
class CallOutcome:
    """Outcome of one method call on one (possibly restricted) problem."""

    method: str
    tag: object = None
    result: Optional[FusionResult] = None
    trust: Optional[np.ndarray] = None
    selected: Optional[np.ndarray] = None  # cluster indices (raw jobs)
    rounds: int = 0
    converged: bool = False
    runtime_seconds: float = 0.0
    precision: Optional[float] = None
    recall: Optional[float] = None
    empty: bool = False


@dataclass
class JobOutcome:
    """A job's outcomes, shaped like the job (calls, or subsets x calls)."""

    tag: object = None
    calls: Optional[List[CallOutcome]] = None
    sweep: Optional[List[List[CallOutcome]]] = None


# --------------------------------------------------------------------------
# Problem export / rehydration
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ProblemDescriptor:
    """Everything a worker needs to rehydrate a registered problem."""

    key: str
    generation: int
    bundle: BundleDescriptor
    sidecar: str
    has_mask: bool
    has_copy: bool


@dataclass(frozen=True)
class ViewDescriptor:
    """A view-only registration: raw columns, no compiled problem.

    ``shard_meta`` records the ``(n_shards, assign)`` the shipped
    ``shard_codes`` array was computed for; a job whose :class:`ShardSpec`
    matches indexes the shared array, anything else re-derives the
    assignment (memoized per worker).  Precomputed global Equation-(3)
    tolerances, when exported, ride in the bundle as ``attr_tol``.
    """

    key: str
    generation: int
    bundle: BundleDescriptor
    sidecar: str
    shard_meta: Optional[Tuple[int, str]] = None


def _export_problem(
    problem: FusionProblem, gold: Optional[GoldStandard], tmpdir: str,
    key: str, generation: int, with_copy: bool,
) -> Tuple[SharedArrayBundle, ProblemDescriptor]:
    view = problem._view
    if view is None:
        raise FusionError("only columnar-compiled problems can be exported")
    arrays: Dict[str, np.ndarray] = {
        "v_item_attr": view.item_attr,
        "v_item_start": view.item_start,
        "v_claim_item": view.claim_item,
        "v_claim_source": view.claim_source,
        "v_claim_value": view.claim_value,
        "v_claim_numeric": view.claim_numeric,
        "v_claim_granularity": view.claim_granularity,
        "v_value_numeric": view.value_numeric,
        "v_value_str_rank": view.value_str_rank,
        "attr_tol": problem._attr_tol,
        "source_codes": problem._source_codes,
        "p_item_index": problem._item_index,
        "p_item_start": problem.item_start,
        "p_cluster_item": problem.cluster_item,
        "p_cluster_value": problem._cluster_value_code,
        "p_cluster_support": problem.cluster_support,
        "p_claim_source": problem._source_codes[problem.claim_source],
        "p_claim_cluster": problem.claim_cluster,
        "p_claim_value": problem._claim_value_code,
        "p_claim_granularity": problem._claim_granularity,
    }
    has_mask = problem._claim_mask is not None
    if has_mask:
        arrays["claim_mask"] = problem._claim_mask
    has_copy = False
    if with_copy or problem._copy is not None or problem._copy_seed is not None:
        structures = problem.copy_structures
        arrays["copy_same"] = np.asarray(structures.same, dtype=np.float64)
        arrays["copy_shared"] = np.asarray(structures.shared, dtype=np.float64)
        has_copy = True
    bundle = SharedArrayBundle.create(arrays)

    sidecar = os.path.join(tmpdir, f"{key}.{generation}.pkl".replace(os.sep, "_"))
    payload = {
        "items": view.items,
        "sources": view.sources,
        "attr_names": view.attr_names,
        "attr_specs": view.attr_specs,
        "values": view.values,
        "problem_sources": list(problem.sources),
        "gold": (gold.domain, dict(gold.values)) if gold is not None else None,
    }
    with open(sidecar, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    descriptor = ProblemDescriptor(
        key=key,
        generation=generation,
        bundle=bundle.descriptor,
        sidecar=sidecar,
        has_mask=has_mask,
        has_copy=has_copy,
    )
    return bundle, descriptor


def _export_view(
    view: ColumnarView,
    gold: Optional[GoldStandard],
    tmpdir: str,
    key: str,
    generation: int,
    shard_codes: Optional[np.ndarray],
    shard_meta: Optional[Tuple[int, str]],
    attr_tol: Optional[np.ndarray],
) -> Tuple[ViewBundle, ViewDescriptor]:
    extras: Dict[str, np.ndarray] = {}
    if shard_codes is not None:
        extras["shard_codes"] = pack_shard_codes(np.asarray(shard_codes))
    if attr_tol is not None:
        extras["attr_tol"] = np.asarray(attr_tol, dtype=np.float64)
    bundle = ViewBundle.create_from_view(view, extras)
    sidecar = os.path.join(tmpdir, f"{key}.{generation}.pkl".replace(os.sep, "_"))
    payload = {
        "items": view.items,
        "sources": view.sources,
        "attr_names": view.attr_names,
        "attr_specs": view.attr_specs,
        "values": view.values,
        "gold": (gold.domain, dict(gold.values)) if gold is not None else None,
    }
    with open(sidecar, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    descriptor = ViewDescriptor(
        key=key,
        generation=generation,
        bundle=bundle.descriptor,
        sidecar=sidecar,
        shard_meta=shard_meta if shard_codes is not None else None,
    )
    return bundle, descriptor


class _AttachedView:
    """Worker-side rehydrated view plus a memo of the shards carved from it."""

    def __init__(self, descriptor: ViewDescriptor):
        self.generation = descriptor.generation
        self.bundle = AttachedBundle(descriptor.bundle)
        with open(descriptor.sidecar, "rb") as handle:
            payload = pickle.load(handle)
        self.view = ViewBundle.rebuild_view(self.bundle, payload)
        self.shard_meta = descriptor.shard_meta
        self.shard_codes = self.bundle.get("shard_codes")
        self.attr_tol = self.bundle.get("attr_tol")
        self.shards: Dict[ShardSpec, FusionProblem] = {}
        self.gold: Optional[GoldStandard] = None
        if payload["gold"] is not None:
            domain, values = payload["gold"]
            self.gold = GoldStandard(domain=domain, values=values)

    def shard_problem(self, spec: ShardSpec) -> FusionProblem:
        problem = self.shards.get(spec)
        if problem is None:
            if (
                self.shard_codes is not None
                and self.shard_meta == (spec.n_shards, spec.assign)
            ):
                codes = self.shard_codes
            else:
                # Re-derive the assignment once per (K, assign), not per
                # spec: the memo lives on this attached-view entry.
                codes = _cached_item_codes(
                    self, self.view, spec.n_shards, spec.assign
                )
            attr_tol = self.attr_tol
            if attr_tol is None and spec.tolerance_scope == "global":
                # Global medians are spec-independent; compute them once.
                attr_tol = self.attr_tol = compute_tolerances(self.view)
            problem = shard_problem_from_view(
                self.view, spec, codes=codes, attr_tol=attr_tol
            )
            self.shards[spec] = problem
        return problem

    def close(self) -> None:
        self.view = None
        self.shards = {}
        self.bundle.close()


class _AttachedProblem:
    """Worker-side rehydrated problem plus the bundle keeping it alive."""

    def __init__(self, descriptor: ProblemDescriptor):
        self.generation = descriptor.generation
        self.bundle = AttachedBundle(descriptor.bundle)
        with open(descriptor.sidecar, "rb") as handle:
            payload = pickle.load(handle)
        arr = self.bundle.arrays
        view = ColumnarView(
            items=payload["items"],
            sources=payload["sources"],
            attr_names=payload["attr_names"],
            attr_specs=payload["attr_specs"],
            item_attr=arr["v_item_attr"],
            item_start=arr["v_item_start"],
            claim_item=arr["v_claim_item"],
            claim_source=arr["v_claim_source"],
            claim_value=arr["v_claim_value"],
            claim_numeric=arr["v_claim_numeric"],
            claim_granularity=arr["v_claim_granularity"],
            values=payload["values"],
            value_numeric=arr["v_value_numeric"],
            value_str_rank=arr["v_value_str_rank"],
        )
        item_index = arr["p_item_index"]
        compiled = CompiledClusters(
            item_index=item_index,
            item_attr=view.item_attr[item_index],
            item_start=arr["p_item_start"],
            cluster_item=arr["p_cluster_item"],
            cluster_value=arr["p_cluster_value"],
            cluster_support=arr["p_cluster_support"],
            claim_source=arr["p_claim_source"],
            claim_cluster=arr["p_claim_cluster"],
            claim_value=arr["p_claim_value"],
            claim_granularity=arr["p_claim_granularity"],
        )
        self.problem = FusionProblem.from_compiled(
            view=view,
            compiled=compiled,
            sources=payload["problem_sources"],
            source_codes=arr["source_codes"],
            attr_tol=arr["attr_tol"],
            claim_mask=arr.get("claim_mask"),
        )
        if descriptor.has_copy:
            self.problem.seed_copy_counts(arr["copy_same"], arr["copy_shared"])
        self.gold: Optional[GoldStandard] = None
        if payload["gold"] is not None:
            domain, values = payload["gold"]
            self.gold = GoldStandard(domain=domain, values=values)

    def close(self) -> None:
        self.problem = None
        self.bundle.close()


#: Per-worker cache of attached problems/views, keyed by registration key.
_WORKER_PROBLEMS: Dict[str, object] = {}


def _worker_execute(descriptor, job: SolveJob) -> JobOutcome:
    wants_view = isinstance(descriptor, ViewDescriptor)
    entry = _WORKER_PROBLEMS.get(descriptor.key)
    if (
        entry is None
        or entry.generation != descriptor.generation
        or isinstance(entry, _AttachedView) != wants_view
    ):
        if entry is not None:
            entry.close()
        entry = (
            _AttachedView(descriptor) if wants_view
            else _AttachedProblem(descriptor)
        )
        _WORKER_PROBLEMS[descriptor.key] = entry
    if wants_view:
        return _execute_view_job(entry, job)
    return _execute_job(entry.problem, entry.gold, job)


# --------------------------------------------------------------------------
# Job execution (shared by workers and the serial fallback)
# --------------------------------------------------------------------------

def _score(outcome: CallOutcome, matcher, gold, result) -> None:
    from repro.evaluation.metrics import evaluate

    if gold is None or result is None or matcher is None:
        return
    scored = evaluate(matcher, gold, result)
    outcome.precision = scored.precision
    outcome.recall = scored.recall


def _run_call(
    problem: FusionProblem, call: MethodCall, raw: bool
) -> CallOutcome:
    method = make_method(call.method, **call.kwargs)
    spec = MethodSpec.of(method)
    started = time.perf_counter()
    state = spec.initial_state(problem, call.trust_seed)
    warmed = call.warm_trust is not None
    if warmed:
        state["trust"] = np.array(call.warm_trust, dtype=np.float64, copy=True)
    selected, rounds, converged = run_fixed_point(
        spec, problem, state, call.freeze_trust
    )
    runtime = time.perf_counter() - started
    outcome = CallOutcome(
        method=spec.name,
        tag=call.tag,
        trust=state["trust"],
        rounds=rounds,
        converged=converged,
        runtime_seconds=runtime,
    )
    if raw:
        outcome.selected = selected
    else:
        result = spec.package(problem, state, selected, rounds, converged, runtime)
        result.extras["warm_started"] = warmed
        outcome.result = result
    return outcome


def _strip_selection(outcome: CallOutcome) -> CallOutcome:
    if outcome.result is not None:
        outcome.result.selected = {}
    return outcome


def _execute_sweep(
    problem: FusionProblem, gold: Optional[GoldStandard], job: SolveJob
) -> JobOutcome:
    from repro.fusion.batch import GoldScorer, RestrictionSweep

    subsets = job.subsets or []
    rows: List[List[Optional[CallOutcome]]] = [
        [None] * len(job.calls) for _ in subsets
    ]

    def record(c: int, s: int, restriction: RestrictionOutcome) -> None:
        call = job.calls[c]
        outcome = CallOutcome(
            method=call.method, tag=call.tag, empty=restriction.empty
        )
        if restriction.empty:
            outcome.recall = 0.0
            outcome.precision = 0.0
        elif restriction.result is None:
            # Raw batched outcome: score the selection arrays directly.
            outcome.rounds = restriction.rounds
            outcome.converged = restriction.converged
            outcome.trust = restriction.trust_array
            if scorer is not None:
                outcome.precision, outcome.recall = scorer.score(
                    restriction.matcher, restriction.selected_local
                )
        else:
            outcome.result = restriction.result
            outcome.rounds = restriction.result.rounds
            outcome.converged = restriction.result.converged
            outcome.runtime_seconds = restriction.result.runtime_seconds
            if job.evaluate:
                _score(outcome, restriction.matcher, gold, restriction.result)
            if not job.return_selection:
                _strip_selection(outcome)
        rows[s][c] = outcome

    # Restrictions are compiled once and shared by every method of the
    # sweep — batch-safe methods multiplex their rounds across the subsets,
    # the rest solve per subset on the same compiled problems.  When the
    # caller wants scores but no selections, batched solves stay in array
    # form end to end (GoldScorer), never materializing per-item dicts.
    sweep = RestrictionSweep(problem, subsets, shared_tolerances=job.batched)
    raw = job.batched and not job.return_selection and not job.raw
    scorer = (
        GoldScorer(problem, gold) if raw and job.evaluate and gold is not None
        else None
    )
    for c, call in enumerate(job.calls):
        method = make_method(call.method, **call.kwargs)
        outcomes = sweep.solve(method, batched=job.batched, package=not raw)
        for s, restriction in enumerate(outcomes):
            record(c, s, restriction)
    return JobOutcome(tag=job.tag, sweep=rows)


def _execute_view_job(entry, job: SolveJob) -> JobOutcome:
    """Run a job against a view-only registration (worker or serial inline).

    View registrations carry no compiled problem, so only shard jobs make
    sense against them — the shard compile *is* the point.  The carved
    problem then runs through the ordinary job executor (sweeps and source
    restrictions compose within the shard).
    """
    import dataclasses

    if job.shard is None:
        raise FusionError(
            "view-only registrations require shard jobs "
            "(register the compiled problem for unsharded solves)"
        )
    target = entry.shard_problem(job.shard)
    return _execute_job(target, entry.gold, dataclasses.replace(job, shard=None))


def _execute_job(
    problem: FusionProblem, gold: Optional[GoldStandard], job: SolveJob
) -> JobOutcome:
    target = problem
    if job.shard is not None:
        target = shard_problem(target, job.shard)
    if job.subsets is not None:
        return _execute_sweep(target, gold, job)
    if job.sources is not None:
        target = target.restrict_sources(job.sources)
    outcomes = []
    for call in job.calls:
        outcome = _run_call(target, call, job.raw)
        if job.evaluate and not job.raw:
            _score(outcome, target, gold, outcome.result)
        if not job.return_selection and not job.raw:
            _strip_selection(outcome)
        outcomes.append(outcome)
    return JobOutcome(tag=job.tag, calls=outcomes)


# --------------------------------------------------------------------------
# The scheduler
# --------------------------------------------------------------------------

class _LocalView:
    """Serial-mode twin of :class:`_AttachedView` (same carve-and-memo code)."""

    def __init__(self, view, gold, shard_codes, shard_meta, attr_tol):
        self.view = view
        self.gold = gold
        self.shard_codes = shard_codes
        self.shard_meta = shard_meta
        self.attr_tol = attr_tol
        self.shards: Dict[ShardSpec, FusionProblem] = {}

    shard_problem = _AttachedView.shard_problem


class _Registration:
    def __init__(self, problem, gold, bundle=None, descriptor=None, view=None):
        self.problem = problem
        self.gold = gold
        self.bundle = bundle
        self.descriptor = descriptor
        self.view = view  # a _LocalView for serial view-only registrations
        self.exported_gold = False


class SolveScheduler:
    """A planned solve scheduler over a persistent worker pool.

    ``workers <= 1`` (or missing platform shared memory) degrades to an
    inline serial executor running the exact same job code, so callers can
    thread a single scheduler through unconditionally.
    """

    def __init__(self, workers: int = 0):
        self.workers = int(workers) if workers else 0
        self._parallel = self.workers > 1 and shared_memory_available()
        self._registrations: Dict[str, _Registration] = {}
        self._pool = None
        self._tmpdir: Optional[str] = None

    # ------------------------------------------------------------ lifecycle
    @property
    def parallel(self) -> bool:
        return self._parallel

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down and release every shared segment."""
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - interpreter teardown
                pass
            self._pool = None
        for registration in self._registrations.values():
            if registration.bundle is not None:
                registration.bundle.close()
                registration.bundle.unlink()
        self._registrations.clear()
        if self._tmpdir is not None:
            shutil.rmtree(self._tmpdir, ignore_errors=True)
            self._tmpdir = None

    def __enter__(self) -> "SolveScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------- registration
    def default_key(self, problem: FusionProblem) -> str:
        """The canonical key a problem registers under when none is given.

        Safe to key on identity: registrations hold a strong reference, so
        a registered problem's ``id`` cannot be recycled while it is live.
        """
        return f"p{id(problem):x}"

    def register(
        self,
        key: Optional[str],
        problem: FusionProblem,
        gold: Optional[GoldStandard] = None,
        with_copy: bool = False,
    ) -> str:
        """Publish a compiled problem under ``key`` (idempotent per object).

        Re-registering a key with a *different* problem object replaces the
        export (streaming reuses one key across days); re-registering the
        same object is free — this is how shared compilations are deduped
        across jobs and experiments.  Upgrades that change what workers can
        see (a gold standard appearing, ``with_copy`` turning on for a
        copy-aware plan) re-export in place.
        """
        if key is None:
            key = self.default_key(problem)
        existing = self._registrations.get(key)
        if existing is not None and existing.problem is problem:
            if gold is not None and existing.gold is None:
                existing.gold = gold
            if self._parallel and existing.descriptor is not None:
                has_copy = existing.descriptor.has_copy
                needs_copy = with_copy and not has_copy
                needs_gold = existing.gold is not None and not existing.exported_gold
                if needs_copy or needs_gold:
                    self._reexport(key, existing, with_copy or has_copy)
            return key
        if not self._parallel:
            self._registrations[key] = _Registration(problem, gold)
            return key
        registration = _Registration(problem, gold)
        self._registrations[key] = registration
        self._reexport(key, registration, with_copy, previous=existing)
        return key

    def register_view(
        self,
        key: Optional[str],
        view: ColumnarView,
        gold: Optional[GoldStandard] = None,
        shard_codes: Optional[np.ndarray] = None,
        n_shards: Optional[int] = None,
        assign: str = "hash",
        attr_tol: Optional[np.ndarray] = None,
    ) -> str:
        """Publish a raw columnar view under ``key`` — the compile-free export.

        Unlike :meth:`register`, nothing is compiled parent-side: the view
        columns (plus the object→shard assignment ``shard_codes`` computed
        for ``(n_shards, assign)``, and optional precomputed global
        tolerances) ship as-is, and workers compile only the shards their
        jobs name (:func:`repro.core.shard.shard_problem_from_view`).
        Re-registering the same view object under the same key is free;
        supplying a gold standard, assignment codes, or tolerances the
        existing registration lacks upgrades it (re-exporting in place),
        mirroring :meth:`register`.
        """
        if key is None:
            key = f"v{id(view):x}"
        if shard_codes is not None and n_shards is None:
            raise ConfigError(
                "register_view needs n_shards alongside shard_codes "
                "(workers match codes by (n_shards, assign))"
            )
        shard_meta = (int(n_shards), assign) if n_shards is not None else None
        existing = self._registrations.get(key)
        if (
            existing is not None
            and existing.view is not None
            and existing.view.view is view
        ):
            previous = existing.view
            upgrades = (
                (gold is not None and previous.gold is None)
                or (shard_codes is not None and previous.shard_meta != shard_meta)
                or (attr_tol is not None and previous.attr_tol is None)
            )
            if not upgrades:
                return key
            # Merge what the existing registration already carried and fall
            # through to a fresh export.
            gold = gold if gold is not None else previous.gold
            if shard_codes is None:
                shard_codes, shard_meta = previous.shard_codes, previous.shard_meta
            attr_tol = attr_tol if attr_tol is not None else previous.attr_tol
        local = _LocalView(view, gold, shard_codes, shard_meta, attr_tol)
        registration = _Registration(None, gold, view=local)
        self._registrations[key] = registration
        if not self._parallel:
            return key
        if self._tmpdir is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-sched-")
        generation = (
            existing.descriptor.generation + 1
            if existing is not None and existing.descriptor is not None
            else 0
        )
        if existing is not None and existing.bundle is not None:
            existing.bundle.close()
            existing.bundle.unlink()
        registration.bundle, registration.descriptor = _export_view(
            view, gold, self._tmpdir, key, generation,
            shard_codes, shard_meta, attr_tol,
        )
        return key

    def _reexport(self, key, registration, with_copy, previous=None):
        if self._tmpdir is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-sched-")
        generation = (
            previous.descriptor.generation + 1
            if previous is not None and previous.descriptor is not None
            else (registration.descriptor.generation + 1
                  if registration.descriptor is not None else 0)
        )
        if previous is not None and previous.bundle is not None:
            previous.bundle.close()
            previous.bundle.unlink()
        if registration.bundle is not None:
            registration.bundle.close()
            registration.bundle.unlink()
        registration.bundle, registration.descriptor = _export_problem(
            registration.problem, registration.gold, self._tmpdir,
            key, generation, with_copy,
        )
        registration.exported_gold = registration.gold is not None

    # ------------------------------------------------------------- execution
    def run(self, jobs: Sequence[SolveJob]) -> List[JobOutcome]:
        """Execute a plan; outcomes come back in plan order."""
        for job in jobs:
            if job.problem not in self._registrations:
                raise FusionError(
                    f"problem {job.problem!r} is not registered with this scheduler"
                )
        if not self._parallel:
            outcomes = []
            for job in jobs:
                registration = self._registrations[job.problem]
                if registration.view is not None:
                    outcomes.append(_execute_view_job(registration.view, job))
                else:
                    outcomes.append(
                        _execute_job(registration.problem, registration.gold, job)
                    )
            return outcomes
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                _worker_execute, self._registrations[job.problem].descriptor, job
            )
            for job in jobs
        ]
        return [future.result() for future in futures]


# --------------------------------------------------------------------------
# Convenience plans
# --------------------------------------------------------------------------

def _normalize_calls(
    calls: Sequence[Union[str, MethodCall]],
    method_kwargs: Optional[Dict[str, dict]] = None,
    engine: Optional[str] = None,
) -> List[MethodCall]:
    normalized = []
    for call in calls:
        if not isinstance(call, MethodCall):
            call = MethodCall(call, kwargs=dict((method_kwargs or {}).get(call, {})))
        if engine is not None and "engine" not in call.kwargs:
            # Engine selection rides in the call kwargs, so each worker's
            # make_method() resolves it locally — native programs compile
            # once per worker process and reuse numba's on-disk cache.
            call = replace(call, kwargs={**call.kwargs, "engine": engine})
        normalized.append(call)
    return normalized


def _uses_copy_detection(calls: Sequence[MethodCall]) -> bool:
    return any(
        getattr(make_method(c.method, **c.kwargs), "uses_copy_detection", False)
        for c in calls
    )


def solve_methods(
    problem: FusionProblem,
    calls: Sequence[Union[str, MethodCall]],
    *,
    gold: Optional[GoldStandard] = None,
    workers: int = 0,
    scheduler: Optional[SolveScheduler] = None,
    key: Optional[str] = None,
    evaluate: bool = False,
    method_kwargs: Optional[Dict[str, dict]] = None,
    engine: Optional[str] = None,
) -> List[CallOutcome]:
    """Run several method calls on one compiled problem, optionally parallel."""
    plan = _normalize_calls(calls, method_kwargs, engine)
    own: Optional[SolveScheduler] = None
    sched = scheduler
    if sched is None:
        sched = own = SolveScheduler(workers=workers)
    try:
        key = sched.register(
            key, problem, gold=gold, with_copy=_uses_copy_detection(plan)
        )
        if not sched.parallel:
            job = SolveJob(problem=key, calls=plan, evaluate=evaluate)
            return sched.run([job])[0].calls
        jobs = [
            SolveJob(problem=key, calls=[call], evaluate=evaluate)
            for call in plan
        ]
        return [outcome.calls[0] for outcome in sched.run(jobs)]
    finally:
        if own is not None:
            own.close()


def solve_sweep(
    problem: FusionProblem,
    calls: Sequence[Union[str, MethodCall]],
    subsets: Sequence[Sequence[str]],
    *,
    gold: Optional[GoldStandard] = None,
    workers: int = 0,
    scheduler: Optional[SolveScheduler] = None,
    key: Optional[str] = None,
    evaluate: bool = True,
    batched: bool = True,
    return_selection: bool = False,
    engine: Optional[str] = None,
) -> List[List[CallOutcome]]:
    """Solve every (subset, call) pair; returns subset-major outcomes.

    Subsets are strided across the worker chunks (a prefix sweep's small
    and large prefixes interleave, balancing the chunks) and each chunk
    runs through the batched solver where the method allows.
    """
    plan = _normalize_calls(calls, None, engine)
    subset_lists = [list(s) for s in subsets]
    own: Optional[SolveScheduler] = None
    sched = scheduler
    if sched is None:
        sched = own = SolveScheduler(workers=workers)
    try:
        key = sched.register(
            key, problem, gold=gold, with_copy=_uses_copy_detection(plan)
        )
        if not sched.parallel or len(subset_lists) < 2:
            job = SolveJob(
                problem=key, calls=plan, subsets=subset_lists,
                batched=batched, evaluate=evaluate,
                return_selection=return_selection,
            )
            return sched.run([job])[0].sweep
        n_chunks = min(sched.workers, len(subset_lists))
        chunk_indices = [
            list(range(k, len(subset_lists), n_chunks)) for k in range(n_chunks)
        ]
        jobs = [
            SolveJob(
                problem=key,
                calls=plan,
                subsets=[subset_lists[i] for i in indices],
                batched=batched,
                evaluate=evaluate,
                return_selection=return_selection,
            )
            for indices in chunk_indices
        ]
        outcomes = sched.run(jobs)
        rows: List[Optional[List[CallOutcome]]] = [None] * len(subset_lists)
        for indices, outcome in zip(chunk_indices, outcomes):
            for local, index in enumerate(indices):
                rows[index] = outcome.sweep[local]
        return rows  # type: ignore[return-value]
    finally:
        if own is not None:
            own.close()
