"""Plain-text rendering helpers."""

from repro.experiments.report import (
    format_bar_chart,
    format_percent,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(
            ["name", "value"],
            [("alpha", 1.0), ("b", 0.5)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        assert "1.000" in text and "0.500" in text

    def test_none_renders_dash(self):
        text = format_table(["a"], [(None,)])
        assert "-" in text.splitlines()[-1]

    def test_bool_renders_x(self):
        text = format_table(["a", "b"], [(True, False)])
        last = text.splitlines()[-1]
        assert "X" in last

    def test_wide_cells_extend_columns(self):
        text = format_table(["h"], [("a-very-long-cell-value",)])
        header, sep, row = text.splitlines()
        assert len(sep) >= len("a-very-long-cell-value")


class TestFormatSeries:
    def test_rows_per_label(self):
        text = format_series(
            [0.1, 0.2],
            {"s1": [1.0, 2.0], "s2": [3.0, 4.0]},
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header + separator + 2 rows

    def test_short_series_padded_with_dash(self):
        text = format_series([1, 2], {"s": [0.5]})
        assert text.splitlines()[-1].endswith("-")


class TestFormatBarChart:
    def test_bars_scale_with_values(self):
        text = format_bar_chart({"a": 1.0, "b": 0.5}, width=10)
        bar_a = text.splitlines()[0].count("#")
        bar_b = text.splitlines()[1].count("#")
        assert bar_a == 10 and bar_b == 5

    def test_empty_data(self):
        assert format_bar_chart({}, title="t") == "t"


class TestFormatPercent:
    def test_values(self):
        assert format_percent(0.125) == "12.5%"
        assert format_percent(None) == "-"
