"""The experiments CLI entry point."""

import pytest

from repro.experiments.runner import main


class TestMain:
    def test_single_experiment(self, capsys):
        assert main(["table6", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "== table6" in out
        assert "AccuCopy" in out

    def test_alias(self, capsys):
        assert main(["table2", "--scale", "tiny"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table6", "--scale", "galactic"])

    def test_unknown_experiment(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            main(["table42", "--scale", "tiny"])
