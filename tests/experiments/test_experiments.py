"""Every experiment runs at tiny scale and reproduces the paper's *shapes*."""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    figure1,
    figure2_3,
    figure6,
    figure7,
    figure9,
    figure10,
    figure12,
    table1,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.experiments.context import ExperimentContext, get_context
from repro.experiments.runner import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def ctx():
    return get_context("tiny")


class TestContext:
    def test_scales_validated(self):
        with pytest.raises(ConfigError):
            ExperimentContext(scale="huge").stock  # noqa: B018

    def test_problem_cached(self, ctx):
        assert ctx.problem("stock") is ctx.problem("stock")

    def test_domains(self, ctx):
        assert ctx.domains == ("stock", "flight")


class TestStructure:
    def test_table1_counts(self, ctx):
        result = table1.run(ctx)
        by_domain = {r.domain: r for r in result.rows}
        assert by_domain["stock"].num_sources == 55
        assert by_domain["flight"].num_sources == 38
        assert by_domain["stock"].considered_attrs == 16
        assert by_domain["flight"].considered_attrs == 6
        assert by_domain["stock"].num_local_attrs > by_domain["stock"].num_global_attrs

    def test_figure1_zipf(self, ctx):
        result = figure1.run(ctx)
        for series in result.series.values():
            assert all(a >= b for a, b in zip(series, series[1:]))

    def test_figure2_3_stock_more_redundant(self, ctx):
        result = figure2_3.run(ctx)
        assert result.mean_item["stock"] > result.mean_item["flight"]

    def test_figure6_stock_semantics_flight_pure(self, ctx):
        from repro.core.records import ErrorReason
        result = figure6.run(ctx)
        stock = result.full_shares["stock"]
        flight = result.full_shares["flight"]
        assert stock[ErrorReason.SEMANTICS_AMBIGUITY] == max(stock.values())
        assert flight.get(ErrorReason.PURE_ERROR, 0) > 0.2

    def test_figure7_high_dominance_is_precise(self, ctx):
        result = figure7.run(ctx)
        for domain in ("stock", "flight"):
            top_bucket = result.precision[domain][-1]
            assert top_bucket is None or top_bucket > 0.9

    def test_table5_group_sizes(self, ctx):
        result = table5.run(ctx)
        assert [g.size for g in result.groups["stock"]] == [11, 2]
        assert [g.size for g in result.groups["flight"]] == [5, 4, 3, 2, 2]

    def test_table5_removal_improves_flight(self, ctx):
        result = table5.run(ctx)
        assert (
            result.vote_without_copiers["flight"]
            > result.vote_with_copiers["flight"]
        )

    def test_table6_is_static(self, ctx):
        result = table6.run(ctx)
        assert len(result.rows) == 16


class TestFusionExperiments:
    @pytest.fixture(scope="class")
    def t7(self, ctx):
        return table7.run(ctx)

    def test_table7_all_methods_both_domains(self, t7):
        assert len(t7.rows) == 32

    def test_table7_precisions_in_range(self, t7):
        for row in t7.rows:
            assert 0.0 <= row.precision_without_trust <= 1.0
            if row.precision_with_trust is not None:
                assert 0.0 <= row.precision_with_trust <= 1.0

    def test_table7_vote_has_no_trust_column(self, t7):
        for domain in ("stock", "flight"):
            assert t7.row(domain, "Vote").precision_with_trust is None

    def test_table7_seeded_accucopy_strong(self, t7):
        """Given sampled trust + known copying, AccuCopy is near the top
        (the paper's headline for both domains)."""
        for domain in ("stock", "flight"):
            row = t7.row(domain, "AccuCopy")
            assert row.precision_with_trust is not None
            assert row.precision_with_trust >= row.precision_without_trust - 0.02

    def test_table8_pairs_counted(self, ctx):
        result = table8.run(ctx, pairs=[("AccuPr", "AccuSim")])
        for rows in result.comparisons.values():
            row = rows[0]
            assert row.fixed_errors >= 0 and row.new_errors >= 0

    def test_figure9_curves_cover_prefixes(self, ctx):
        result = figure9.run(
            ctx, stock_methods=("Vote",), flight_methods=("Vote",),
            prefix_step=20,
        )
        for domain in ("stock", "flight"):
            curve = result.curves[domain]["Vote"]
            assert len(curve.recalls) == len(result.prefix_sizes[domain])

    def test_figure10_best_beats_vote_on_flight(self, ctx):
        result = figure10.run(ctx)
        overall = result.overall["flight"]
        assert overall["AccuCopy"] >= overall["Vote"]

    def test_figure12_vote_is_fastest(self, ctx):
        result = figure12.run(ctx, method_names=("Vote", "AccuPr", "AccuCopy"))
        for domain in ("stock", "flight"):
            assert result.runtime_of(domain, "Vote") <= result.runtime_of(
                domain, "AccuCopy"
            )

    def test_table9_summaries(self, ctx):
        result = table9.run(ctx, method_names=("Vote", "PopAccu"), max_days=2)
        avg, minimum, dev = result.summary("stock", "Vote")
        assert 0.0 <= minimum <= avg <= 1.0
        assert dev >= 0.0


class TestRunner:
    def test_all_ids_render(self, ctx):
        # cheap experiments only; the heavy ones are covered above
        for experiment_id in ("table1", "figure1", "figure2_3", "table6"):
            text = run_experiment(experiment_id, scale="tiny")
            assert isinstance(text, str) and text

    def test_aliases(self):
        text = run_experiment("figure2", scale="tiny")
        assert "Figure 2" in text

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            run_experiment("table99", scale="tiny")

    def test_registry_complete(self):
        assert len(EXPERIMENTS) == 18
