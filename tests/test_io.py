"""CSV/JSON round trips for datasets, gold standards, fusion results."""

import pytest

from repro.core.records import DataItem
from repro.errors import ValueParseError
from repro.fusion.base import FusionProblem, FusionResult
from repro.fusion.registry import make_method
from repro.io import (
    read_claims_csv,
    read_gold_csv,
    read_result_json,
    write_claims_csv,
    write_gold_csv,
    write_result_json,
)

from tests.helpers import build_dataset, build_gold


@pytest.fixture()
def dataset():
    return build_dataset(
        {
            ("s1", "o1", "price"): 10.5,
            ("s2", "o1", "price"): 10.5,
            ("s1", "o1", "gate"): "C1",
            ("s2", "o2", "depart"): 615.0,
        },
        granularities={("s1", "o1", "price"): 0.1},
    )


class TestClaimsRoundTrip:
    def test_counts_preserved(self, tmp_path, dataset):
        path = tmp_path / "claims.csv"
        write_claims_csv(dataset, path)
        loaded = read_claims_csv(path)
        assert loaded.num_claims == dataset.num_claims
        assert loaded.num_sources == dataset.num_sources
        assert set(loaded.items) == set(dataset.items)

    def test_values_and_types_preserved(self, tmp_path, dataset):
        path = tmp_path / "claims.csv"
        write_claims_csv(dataset, path)
        loaded = read_claims_csv(path)
        item = DataItem("o1", "price")
        assert loaded.claims_on(item)["s1"].value == pytest.approx(10.5)
        assert isinstance(loaded.claims_on(DataItem("o1", "gate"))["s1"].value, str)

    def test_granularity_preserved(self, tmp_path, dataset):
        path = tmp_path / "claims.csv"
        write_claims_csv(dataset, path)
        loaded = read_claims_csv(path)
        assert loaded.claims_on(DataItem("o1", "price"))["s1"].granularity == 0.1
        assert loaded.claims_on(DataItem("o1", "price"))["s2"].granularity is None

    def test_attribute_specs_preserved(self, tmp_path, dataset):
        path = tmp_path / "claims.csv"
        write_claims_csv(dataset, path)
        loaded = read_claims_csv(path)
        assert loaded.spec("depart").kind.value == "time"
        assert loaded.spec("volume").statistical

    def test_loaded_dataset_is_fusable(self, tmp_path, dataset):
        path = tmp_path / "claims.csv"
        write_claims_csv(dataset, path)
        loaded = read_claims_csv(path)
        result = make_method("Vote").run(FusionProblem(loaded))
        assert result.selected[DataItem("o1", "price")] == pytest.approx(10.5)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "junk.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueParseError):
            read_claims_csv(path)

    def test_string_value_that_looks_numeric(self, tmp_path):
        ds = build_dataset({("s1", "o1", "gate"): "12"})
        path = tmp_path / "claims.csv"
        write_claims_csv(ds, path)
        loaded = read_claims_csv(path)
        assert loaded.claims_on(DataItem("o1", "gate"))["s1"].value == "12"


class TestGoldRoundTrip:
    def test_round_trip(self, tmp_path):
        gold = build_gold({("o1", "price"): 10.0, ("o2", "gate"): "C1"})
        path = tmp_path / "gold.csv"
        write_gold_csv(gold, path)
        loaded = read_gold_csv(path)
        assert loaded.values == gold.values
        assert loaded.domain == gold.domain

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "junk.csv"
        path.write_text("nope\n")
        with pytest.raises(ValueParseError):
            read_gold_csv(path)


class TestResultRoundTrip:
    def test_round_trip(self, tmp_path):
        result = FusionResult(
            method="AccuSim",
            selected={DataItem("o1", "price"): 10.0, DataItem("o1", "gate"): "C1"},
            trust={"s1": 0.9, "s2": 0.4},
            attr_trust={("s1", "price"): 0.95},
            rounds=7,
            converged=True,
            runtime_seconds=0.5,
        )
        path = tmp_path / "result.json"
        write_result_json(result, path)
        loaded = read_result_json(path)
        assert loaded.method == "AccuSim"
        assert loaded.selected == result.selected
        assert loaded.trust == result.trust
        assert loaded.attr_trust == result.attr_trust
        assert loaded.rounds == 7 and loaded.converged

    def test_no_attr_trust(self, tmp_path):
        result = FusionResult(
            method="Vote", selected={DataItem("o1", "price"): 1.0}, trust={}
        )
        path = tmp_path / "result.json"
        write_result_json(result, path)
        assert read_result_json(path).attr_trust is None


class TestGeneratedRoundTrip:
    def test_flight_snapshot_round_trip(self, tmp_path, flight_snapshot):
        path = tmp_path / "flight.csv"
        write_claims_csv(flight_snapshot, path)
        loaded = read_claims_csv(path)
        assert loaded.num_claims == flight_snapshot.num_claims
        # Tolerances (derived from values) must match after the round trip.
        for attr in loaded.attributes.names:
            assert loaded.tolerance(attr) == pytest.approx(
                flight_snapshot.tolerance(attr)
            )
