"""Hand-built miniature datasets for unit tests.

``build_dataset`` turns a compact claim table into a frozen
:class:`~repro.core.dataset.Dataset`, so tests can express fusion scenarios
("three sources say 10, one says 99") in a couple of lines.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.attributes import AttributeSpec, AttributeTable, ValueKind
from repro.core.dataset import Dataset
from repro.core.gold import GoldStandard
from repro.core.records import Claim, DataItem, SourceMeta, Value

DEFAULT_SPECS = (
    AttributeSpec("price", ValueKind.NUMERIC),
    AttributeSpec("volume", ValueKind.NUMERIC, statistical=True),
    AttributeSpec("depart", ValueKind.TIME),
    AttributeSpec("gate", ValueKind.STRING),
)


def build_dataset(
    claims: Dict[Tuple[str, str, str], Value],
    specs: Iterable[AttributeSpec] = DEFAULT_SPECS,
    domain: str = "test",
    day: str = "d0",
    granularities: Optional[Dict[Tuple[str, str, str], float]] = None,
) -> Dataset:
    """Build a frozen dataset from {(source, object, attribute): value}."""
    table = AttributeTable.from_specs(list(specs))
    dataset = Dataset(domain=domain, day=day, attributes=table)
    sources = {source for source, _obj, _attr in claims}
    for source_id in sorted(sources):
        dataset.add_source(SourceMeta(source_id))
    for (source_id, object_id, attribute), value in claims.items():
        granularity = (granularities or {}).get((source_id, object_id, attribute))
        dataset.add_claim(
            source_id,
            DataItem(object_id, attribute),
            Claim(value=value, granularity=granularity),
        )
    return dataset.freeze()


def build_gold(values: Dict[Tuple[str, str], Value], domain: str = "test") -> GoldStandard:
    """Build a gold standard from {(object, attribute): value}."""
    return GoldStandard(
        domain=domain,
        values={DataItem(obj, attr): value for (obj, attr), value in values.items()},
    )
