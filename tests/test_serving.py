"""The truth-serving layer: versioned stores, shard merges, refresh safety."""

import threading

import pytest

from repro.core.delta import ClaimDelta
from repro.core.records import Claim, DataItem
from repro.core.shard import ShardedCorpus, ShardPlan
from repro.errors import FusionError
from repro.fusion.base import FusionResult
from repro.fusion.registry import make_method
from repro.serving import TruthService, TruthStore

from tests.helpers import build_dataset


def _result(method, values, trust, day=None):
    return FusionResult(
        method=method,
        selected={DataItem(obj, attr): v for (obj, attr), v in values.items()},
        trust=dict(trust),
    )


@pytest.fixture()
def dataset():
    return build_dataset({
        ("s1", "o1", "price"): 10.0,
        ("s2", "o1", "price"): 10.0,
        ("s3", "o1", "price"): 12.0,
        ("s1", "o2", "price"): 5.0,
        ("s2", "o2", "price"): 6.0,
        ("s1", "o3", "gate"): "A1",
        ("s2", "o3", "gate"): "A2",
    })


class TestTruthStoreBasics:
    def test_publish_and_point_lookup(self):
        store = TruthStore()
        assert store.version == 0
        assert store.lookup("o1", "price") is None
        version = store.publish("d0", {
            "Vote": _result("Vote", {("o1", "price"): 10.0}, {"s1": 0.9}),
        })
        assert version == 1 and store.version == 1 and store.day == "d0"
        answer = store.lookup("o1", "price")
        assert answer.value == 10.0
        assert answer.method == "Vote"
        assert answer.version == 1
        assert store.lookup("o1", "volume") is None
        assert store.lookup("o9", "price") is None

    def test_method_selection_and_trust_reads(self):
        store = TruthStore()
        store.publish("d0", {
            "Vote": _result("Vote", {("o1", "price"): 10.0}, {"s1": 0.5}),
            "AccuSim": _result("AccuSim", {("o1", "price"): 12.0}, {"s1": 0.7}),
        })
        assert store.lookup("o1", "price").value == 10.0  # default: first
        assert store.lookup("o1", "price", method="AccuSim").value == 12.0
        assert store.lookup("o1", "price", method="Nope") is None
        assert store.trust("s1") == 0.5
        assert store.trust("s1", method="AccuSim") == 0.7
        assert store.trust("ghost") is None

    def test_ensemble_majority_and_tie_break(self):
        store = TruthStore()
        store.publish("d0", {
            "Vote": _result("Vote", {("o1", "price"): 10.0}, {}),
            "AccuSim": _result("AccuSim", {("o1", "price"): 12.0}, {}),
            "AccuPr": _result("AccuPr", {("o1", "price"): 12.0}, {}),
        })
        answer = store.ensemble("o1", "price")
        assert answer.value == 12.0 and answer.method == "Ensemble"
        # 1-1 tie: earliest publish order wins.
        store.publish("d1", {
            "Vote": _result("Vote", {("o1", "price"): 10.0}, {}),
            "AccuSim": _result("AccuSim", {("o1", "price"): 12.0}, {}),
        })
        assert store.ensemble("o1", "price").value == 10.0
        assert store.ensemble("o9", "price") is None

    def test_publish_rejects_empty(self):
        with pytest.raises(FusionError):
            TruthStore().publish("d0", {})
        with pytest.raises(FusionError):
            TruthStore().publish_shards("d0", [])

    def test_save_load_round_trip(self, tmp_path):
        store = TruthStore()
        store.publish("d0", {
            "Vote": _result(
                "Vote", {("o1", "price"): 10.0, ("o3", "gate"): "A1"},
                {"s1": 0.9, "s2": 0.4},
            ),
        })
        path = tmp_path / "store.json"
        store.save(path)
        loaded = TruthStore.load(path)
        assert loaded.version == store.version
        assert loaded.day == "d0"
        assert loaded.methods == ("Vote",)
        assert loaded.lookup("o1", "price").value == 10.0
        assert loaded.lookup("o3", "gate").value == "A1"
        assert loaded.trust("s2") == 0.4


class TestShardedPublish:
    def test_shard_truths_union_and_trust_merges_by_weight(self):
        store = TruthStore()
        shard_results = [
            {"Vote": _result("Vote", {("o1", "price"): 10.0}, {"s1": 1.0, "s2": 0.0})},
            {"Vote": _result("Vote", {("o2", "price"): 5.0}, {"s1": 0.0, "s2": 1.0})},
        ]
        weights = [{"s1": 3.0, "s2": 1.0}, {"s1": 1.0, "s2": 3.0}]
        store.publish_shards("d0", shard_results, source_weights=weights)
        assert store.lookup("o1", "price").value == 10.0
        assert store.lookup("o2", "price").value == 5.0
        assert store.trust("s1") == pytest.approx(0.75)
        assert store.trust("s2") == pytest.approx(0.75)
        # Without weights the merge is a plain mean.
        store.publish_shards("d1", shard_results)
        assert store.trust("s1") == pytest.approx(0.5)

    def test_zero_weight_source_falls_back_to_plain_mean(self):
        store = TruthStore()
        shard_results = [
            {"Vote": _result("Vote", {("o1", "price"): 1.0}, {"s1": 0.2})},
            {"Vote": _result("Vote", {("o2", "price"): 2.0}, {"s1": 0.6})},
        ]
        store.publish_shards(
            "d0", shard_results, source_weights=[{"s1": 0.0}, {"s1": 0.0}]
        )
        assert store.trust("s1") == pytest.approx(0.4)

    def test_plan_round_trip_exact_equals_unsharded_publish(self, dataset):
        from repro.fusion.base import FusionProblem

        exact = TruthStore()
        exact.publish_plan(ShardPlan(ShardedCorpus(dataset, 2), ["Vote"]).run())
        flat = TruthStore()
        flat.publish(
            dataset.day, {"Vote": make_method("Vote").run(FusionProblem(dataset))}
        )
        for key in ("o1", "o2"):
            assert (
                exact.lookup(key, "price").value == flat.lookup(key, "price").value
            )
        assert exact.trust("s1") == flat.trust("s1")

    def test_plan_round_trip_independent(self, dataset):
        corpus = ShardedCorpus(dataset, 2, cross_shard="independent")
        store = TruthStore()
        store.publish_plan(ShardPlan(corpus, ["Vote"]).run())
        # Every item answered, trust merged over the full source universe.
        for obj, attr in (("o1", "price"), ("o2", "price"), ("o3", "gate")):
            assert store.lookup(obj, attr) is not None
        for source in ("s1", "s2", "s3"):
            assert store.trust(source) is not None


class TestRefreshSafety:
    def test_refresh_never_serves_a_torn_version(self):
        """Readers racing publishes must always see one coherent snapshot."""
        items = [(f"o{i}", "price") for i in range(40)]

        def results_for(v):
            return {
                "Vote": _result(
                    "Vote",
                    {key: float(v) for key in items},
                    {"s1": float(v)},
                )
            }

        store = TruthStore()
        store.publish("day0", results_for(0))
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                snap = store.snapshot()
                values = {
                    store.lookup(obj, attr, snapshot=snap).value
                    for obj, attr in items
                }
                if len(values) != 1:
                    errors.append(("torn truths", values))
                    return
                value = values.pop()
                trust = store.trust("s1", snapshot=snap)
                if trust != value:
                    errors.append(("trust from another version", value, trust))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for v in range(1, 150):
            store.publish(f"day{v}", results_for(v))
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]
        assert store.version == 150

    def test_pinned_snapshot_survives_later_publishes(self):
        store = TruthStore()
        store.publish("d0", {"Vote": _result("Vote", {("o1", "price"): 1.0}, {})})
        snap = store.snapshot()
        store.publish("d1", {"Vote": _result("Vote", {("o1", "price"): 2.0}, {})})
        assert store.lookup("o1", "price").value == 2.0
        assert store.lookup("o1", "price", snapshot=snap).value == 1.0
        assert store.lookup("o1", "price", snapshot=snap).version == 1


class TestTruthService:
    def test_stream_days_become_store_versions(self, dataset):
        with TruthService(["Vote", "AccuSim"]) as service:
            assert service.ingest(dataset) == 1
            store = service.store
            assert store.day == "d0"
            before = store.lookup("o1", "price")
            assert before.value == 10.0
            # s3 changes its o1 price to agree with nobody; majority holds.
            version = service.apply(ClaimDelta(
                day="d1",
                added=(("s3", DataItem("o1", "price"), Claim(value=99.0)),),
            ))
            assert version == 2
            assert store.day == "d1"
            assert store.lookup("o1", "price").value == 10.0
            assert store.lookup("o1", "price").version == 2
            # A delta that flips the majority flips the served truth.
            service.apply(ClaimDelta(
                day="d2",
                added=(
                    ("s1", DataItem("o2", "price"), Claim(value=6.0)),
                ),
            ))
            assert store.lookup("o2", "price").value == 6.0
            assert store.version == 3

    def test_service_matches_direct_sessions(self, dataset):
        from repro.fusion.spec import FusionSession

        with TruthService(["AccuSim"]) as service:
            service.ingest(dataset)
            session = FusionSession(make_method("AccuSim"), warm_start=True)
            reference = session.advance(dataset)
            store = service.store
            for item, value in reference.selected.items():
                assert (
                    store.lookup(item.object_id, item.attribute).value == value
                )
            for source, trust in reference.trust.items():
                assert store.trust(source) == pytest.approx(trust, abs=1e-12)
