"""The truth-serving layer: versioned stores, shard merges, refresh safety."""

import json
import threading

import pytest

from repro.core.delta import ClaimDelta
from repro.core.records import Claim, DataItem
from repro.core.shard import ShardedCorpus, ShardPlan
from repro.errors import FusionError, StalePublishError
from repro.fusion.base import FusionResult
from repro.fusion.registry import make_method
from repro.serving import TruthService, TruthStore, merge_shard_trust

from tests.helpers import build_dataset


def _result(method, values, trust, day=None):
    return FusionResult(
        method=method,
        selected={DataItem(obj, attr): v for (obj, attr), v in values.items()},
        trust=dict(trust),
    )


@pytest.fixture()
def dataset():
    return build_dataset({
        ("s1", "o1", "price"): 10.0,
        ("s2", "o1", "price"): 10.0,
        ("s3", "o1", "price"): 12.0,
        ("s1", "o2", "price"): 5.0,
        ("s2", "o2", "price"): 6.0,
        ("s1", "o3", "gate"): "A1",
        ("s2", "o3", "gate"): "A2",
    })


class TestTruthStoreBasics:
    def test_publish_and_point_lookup(self):
        store = TruthStore()
        assert store.version == 0
        assert store.lookup("o1", "price") is None
        version = store.publish("d0", {
            "Vote": _result("Vote", {("o1", "price"): 10.0}, {"s1": 0.9}),
        })
        assert version == 1 and store.version == 1 and store.day == "d0"
        answer = store.lookup("o1", "price")
        assert answer.value == 10.0
        assert answer.method == "Vote"
        assert answer.version == 1
        assert store.lookup("o1", "volume") is None
        assert store.lookup("o9", "price") is None

    def test_method_selection_and_trust_reads(self):
        store = TruthStore()
        store.publish("d0", {
            "Vote": _result("Vote", {("o1", "price"): 10.0}, {"s1": 0.5}),
            "AccuSim": _result("AccuSim", {("o1", "price"): 12.0}, {"s1": 0.7}),
        })
        assert store.lookup("o1", "price").value == 10.0  # default: first
        assert store.lookup("o1", "price", method="AccuSim").value == 12.0
        assert store.lookup("o1", "price", method="Nope") is None
        assert store.trust("s1") == 0.5
        assert store.trust("s1", method="AccuSim") == 0.7
        assert store.trust("ghost") is None

    def test_ensemble_majority_and_tie_break(self):
        store = TruthStore()
        store.publish("d0", {
            "Vote": _result("Vote", {("o1", "price"): 10.0}, {}),
            "AccuSim": _result("AccuSim", {("o1", "price"): 12.0}, {}),
            "AccuPr": _result("AccuPr", {("o1", "price"): 12.0}, {}),
        })
        answer = store.ensemble("o1", "price")
        assert answer.value == 12.0 and answer.method == "Ensemble"
        # 1-1 tie: earliest publish order wins.
        store.publish("d1", {
            "Vote": _result("Vote", {("o1", "price"): 10.0}, {}),
            "AccuSim": _result("AccuSim", {("o1", "price"): 12.0}, {}),
        })
        assert store.ensemble("o1", "price").value == 10.0
        assert store.ensemble("o9", "price") is None

    def test_publish_rejects_empty(self):
        with pytest.raises(FusionError):
            TruthStore().publish("d0", {})
        with pytest.raises(FusionError):
            TruthStore().publish_shards("d0", [])

    def test_save_load_round_trip(self, tmp_path):
        store = TruthStore()
        store.publish("d0", {
            "Vote": _result(
                "Vote", {("o1", "price"): 10.0, ("o3", "gate"): "A1"},
                {"s1": 0.9, "s2": 0.4},
            ),
        })
        path = tmp_path / "store.json"
        store.save(path)
        loaded = TruthStore.load(path)
        assert loaded.version == store.version
        assert loaded.day == "d0"
        assert loaded.methods == ("Vote",)
        assert loaded.lookup("o1", "price").value == 10.0
        assert loaded.lookup("o3", "gate").value == "A1"
        assert loaded.trust("s2") == 0.4

    def test_save_load_round_trip_unicode_and_numeric_values(self, tmp_path):
        """String values (incl. non-ASCII and number-shaped strings) and
        float values must keep their exact type and content through JSON."""
        store = TruthStore()
        store.publish("día-☀", {
            "Vote": _result(
                "Vote",
                {
                    ("café", "城市"): "Zürich ☕",
                    ("o1", "price"): 10.5,
                    ("o2", "code"): "10.5",      # string that looks numeric
                    ("o3", "tiny"): 1.25e-300,   # round-trips via repr
                    ("o4", "neg"): -0.0,
                },
                {"søurce-π": 0.75},
            ),
        })
        path = tmp_path / "störe.json"
        store.save(path)
        loaded = TruthStore.load(path)
        assert loaded.day == "día-☀"
        assert loaded.lookup("café", "城市").value == "Zürich ☕"
        assert loaded.lookup("o1", "price").value == 10.5
        value = loaded.lookup("o2", "code").value
        assert value == "10.5" and isinstance(value, str)
        assert loaded.lookup("o3", "tiny").value == 1.25e-300
        assert str(loaded.lookup("o4", "neg").value) == "-0.0"
        assert loaded.trust("søurce-π") == 0.75

    def test_crash_mid_save_leaves_previous_file_intact(
        self, tmp_path, monkeypatch
    ):
        """A kill mid-save must never tear the store file on disk."""
        path = tmp_path / "store.json"
        store = TruthStore()
        store.publish("d0", {
            "Vote": _result("Vote", {("o1", "price"): 1.0}, {"s1": 0.9}),
        })
        store.save(path)
        good = path.read_text(encoding="utf-8")

        def dying_dump(payload, handle, **kwargs):
            handle.write('{"version": 99, "day": "torn')  # partial write ...
            raise KeyboardInterrupt("killed mid-save")    # ... then the kill

        store.publish("d1", {
            "Vote": _result("Vote", {("o1", "price"): 2.0}, {"s1": 0.1}),
        })
        monkeypatch.setattr("repro.serving.json.dump", dying_dump)
        with pytest.raises(KeyboardInterrupt):
            store.save(path)
        monkeypatch.undo()
        # The previous complete file is still what readers load ...
        assert path.read_text(encoding="utf-8") == good
        assert TruthStore.load(path).lookup("o1", "price").value == 1.0
        # ... no temp debris survived, and a retry succeeds atomically.
        assert [p.name for p in tmp_path.iterdir()] == ["store.json"]
        store.save(path)
        assert TruthStore.load(path).lookup("o1", "price").value == 2.0

    def test_ensemble_tie_break_order_is_publish_order(self):
        """Ties break toward the earliest *published* method, not name
        order — pinned so the serving contract cannot drift silently."""
        store = TruthStore()
        store.publish("d0", {
            "Zebra": _result("Zebra", {("o1", "price"): 7.0}, {}),
            "Alpha": _result("Alpha", {("o1", "price"): 3.0}, {}),
        })
        assert store.ensemble("o1", "price").value == 7.0
        # Three-way tie: still the first of the publish order.
        store.publish("d1", {
            "M2": _result("M2", {("o1", "price"): 2.0}, {}),
            "M1": _result("M1", {("o1", "price"): 1.0}, {}),
            "M3": _result("M3", {("o1", "price"): 3.0}, {}),
        })
        assert store.ensemble("o1", "price").value == 2.0


class TestShardedPublish:
    def test_shard_truths_union_and_trust_merges_by_weight(self):
        store = TruthStore()
        shard_results = [
            {"Vote": _result("Vote", {("o1", "price"): 10.0}, {"s1": 1.0, "s2": 0.0})},
            {"Vote": _result("Vote", {("o2", "price"): 5.0}, {"s1": 0.0, "s2": 1.0})},
        ]
        weights = [{"s1": 3.0, "s2": 1.0}, {"s1": 1.0, "s2": 3.0}]
        store.publish_shards("d0", shard_results, source_weights=weights)
        assert store.lookup("o1", "price").value == 10.0
        assert store.lookup("o2", "price").value == 5.0
        assert store.trust("s1") == pytest.approx(0.75)
        assert store.trust("s2") == pytest.approx(0.75)
        # Without weights the merge is a plain mean.
        store.publish_shards("d1", shard_results)
        assert store.trust("s1") == pytest.approx(0.5)

    def test_partial_shard_publish_fails_cleanly(self):
        """A shard missing a method must raise a clear FusionError naming
        the shard and method — not a bare KeyError mid-publish."""
        store = TruthStore()
        store.publish("d0", {
            "Vote": _result("Vote", {("o1", "price"): 1.0}, {"s1": 0.5}),
        })
        shard_results = [
            {
                "Vote": _result("Vote", {("o1", "price"): 1.0}, {}),
                "AccuSim": _result("AccuSim", {("o1", "price"): 1.0}, {}),
            },
            {"Vote": _result("Vote", {("o2", "price"): 2.0}, {})},  # partial
        ]
        with pytest.raises(FusionError, match=r"shard 1.*'AccuSim'"):
            store.publish_shards("d1", shard_results)
        # The failed publish changed nothing.
        assert store.version == 1 and store.day == "d0"
        # A shard carrying an *extra* method is just as inconsistent.
        with pytest.raises(FusionError, match=r"shard 1.*extra.*'Ghost'"):
            store.publish_shards("d1", [
                {"Vote": _result("Vote", {("o1", "price"): 1.0}, {})},
                {
                    "Vote": _result("Vote", {("o2", "price"): 2.0}, {}),
                    "Ghost": _result("Ghost", {("o2", "price"): 2.0}, {}),
                },
            ])

    def test_merge_shard_trust_rejects_short_weights(self):
        trusts = [{"s1": 0.2}, {"s1": 0.6}]
        with pytest.raises(FusionError, match="2 shard trust maps.*1 weight"):
            merge_shard_trust(trusts, weights=[{"s1": 1.0}])
        # Matching lengths still work.
        merged = merge_shard_trust(trusts, weights=[{"s1": 1.0}, {"s1": 1.0}])
        assert merged["s1"] == pytest.approx(0.4)

    def test_zero_weight_source_falls_back_to_plain_mean(self):
        store = TruthStore()
        shard_results = [
            {"Vote": _result("Vote", {("o1", "price"): 1.0}, {"s1": 0.2})},
            {"Vote": _result("Vote", {("o2", "price"): 2.0}, {"s1": 0.6})},
        ]
        store.publish_shards(
            "d0", shard_results, source_weights=[{"s1": 0.0}, {"s1": 0.0}]
        )
        assert store.trust("s1") == pytest.approx(0.4)

    def test_plan_round_trip_exact_equals_unsharded_publish(self, dataset):
        from repro.fusion.base import FusionProblem

        exact = TruthStore()
        exact.publish_plan(ShardPlan(ShardedCorpus(dataset, 2), ["Vote"]).run())
        flat = TruthStore()
        flat.publish(
            dataset.day, {"Vote": make_method("Vote").run(FusionProblem(dataset))}
        )
        for key in ("o1", "o2"):
            assert (
                exact.lookup(key, "price").value == flat.lookup(key, "price").value
            )
        assert exact.trust("s1") == flat.trust("s1")

    def test_plan_round_trip_independent(self, dataset):
        corpus = ShardedCorpus(dataset, 2, cross_shard="independent")
        store = TruthStore()
        store.publish_plan(ShardPlan(corpus, ["Vote"]).run())
        # Every item answered, trust merged over the full source universe.
        for obj, attr in (("o1", "price"), ("o2", "price"), ("o3", "gate")):
            assert store.lookup(obj, attr) is not None
        for source in ("s1", "s2", "s3"):
            assert store.trust(source) is not None


class TestRefreshSafety:
    def test_refresh_never_serves_a_torn_version(self):
        """Readers racing publishes must always see one coherent snapshot."""
        items = [(f"o{i}", "price") for i in range(40)]

        def results_for(v):
            return {
                "Vote": _result(
                    "Vote",
                    {key: float(v) for key in items},
                    {"s1": float(v)},
                )
            }

        store = TruthStore()
        store.publish("day0", results_for(0))
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                snap = store.snapshot()
                values = {
                    store.lookup(obj, attr, snapshot=snap).value
                    for obj, attr in items
                }
                if len(values) != 1:
                    errors.append(("torn truths", values))
                    return
                value = values.pop()
                trust = store.trust("s1", snapshot=snap)
                if trust != value:
                    errors.append(("trust from another version", value, trust))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for v in range(1, 150):
            store.publish(f"day{v}", results_for(v))
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]
        assert store.version == 150

    def test_pinned_snapshot_survives_later_publishes(self):
        store = TruthStore()
        store.publish("d0", {"Vote": _result("Vote", {("o1", "price"): 1.0}, {})})
        snap = store.snapshot()
        store.publish("d1", {"Vote": _result("Vote", {("o1", "price"): 2.0}, {})})
        assert store.lookup("o1", "price").value == 2.0
        assert store.lookup("o1", "price", snapshot=snap).value == 1.0
        assert store.lookup("o1", "price", snapshot=snap).version == 1


class TestMonotonicPublishes:
    def _publish(self, store, day, value=1.0):
        return store.publish(day, {
            "Vote": _result("Vote", {("o1", "price"): value}, {}),
        })

    def test_default_store_allows_out_of_order_days(self):
        store = TruthStore()
        self._publish(store, "2011-07-05")
        assert self._publish(store, "2011-07-01") == 2  # legacy behaviour

    def test_monotonic_store_rejects_older_day(self):
        store = TruthStore(monotonic_days=True)
        self._publish(store, "2011-07-05", value=5.0)
        with pytest.raises(StalePublishError, match="2011-07-01"):
            self._publish(store, "2011-07-01", value=1.0)
        # The rejected publish changed nothing readers can observe.
        assert store.version == 1
        assert store.day == "2011-07-05"
        assert store.lookup("o1", "price").value == 5.0

    def test_monotonic_store_allows_same_day_republish_and_none_days(self):
        store = TruthStore(monotonic_days=True)
        self._publish(store, "2011-07-05", value=5.0)
        assert self._publish(store, "2011-07-05", value=6.0) == 2
        assert store.lookup("o1", "price").value == 6.0
        # Day-less publishes are never ordered, so never rejected.
        assert self._publish(store, None) == 3
        assert self._publish(store, "2011-07-06") == 4

    def test_stale_publish_error_is_a_fusion_error(self):
        assert issubclass(StalePublishError, FusionError)


class TestTruthService:
    def test_stream_days_become_store_versions(self, dataset):
        with TruthService(["Vote", "AccuSim"]) as service:
            assert service.ingest(dataset) == 1
            store = service.store
            assert store.day == "d0"
            before = store.lookup("o1", "price")
            assert before.value == 10.0
            # s3 changes its o1 price to agree with nobody; majority holds.
            version = service.apply(ClaimDelta(
                day="d1",
                added=(("s3", DataItem("o1", "price"), Claim(value=99.0)),),
            ))
            assert version == 2
            assert store.day == "d1"
            assert store.lookup("o1", "price").value == 10.0
            assert store.lookup("o1", "price").version == 2
            # A delta that flips the majority flips the served truth.
            service.apply(ClaimDelta(
                day="d2",
                added=(
                    ("s1", DataItem("o2", "price"), Claim(value=6.0)),
                ),
            ))
            assert store.lookup("o2", "price").value == 6.0
            assert store.version == 3

    def test_service_matches_direct_sessions(self, dataset):
        from repro.fusion.spec import FusionSession

        with TruthService(["AccuSim"]) as service:
            service.ingest(dataset)
            session = FusionSession(make_method("AccuSim"), warm_start=True)
            reference = session.advance(dataset)
            store = service.store
            for item, value in reference.selected.items():
                assert (
                    store.lookup(item.object_id, item.attribute).value == value
                )
            for source, trust in reference.trust.items():
                assert store.trust(source) == pytest.approx(trust, abs=1e-12)
