"""Bayesian copy detection: true groups found, honest sources spared."""

import numpy as np
import pytest

from repro.copying.detection import (
    CopyDetectionResult,
    detect_copying,
    independence_weights,
    known_groups_matrix,
    selection_accuracy,
)
from repro.fusion.base import FusionProblem

from tests.helpers import build_dataset


def _vote_selection(problem):
    return problem.argmax_per_item(problem.cluster_support.astype(float))


class TestDetectionOnGenerated:
    def test_stock_groups_detected_exactly(self, stock_problem, stock_collection):
        selected = _vote_selection(stock_problem)
        detection = detect_copying(
            stock_problem,
            selected,
            selection_accuracy(stock_problem, selected),
            min_overlap=10,  # tiny scale has fewer shared items
        )
        detected = {tuple(g) for g in detection.groups()}
        truth = {tuple(g) for g in stock_collection.true_copy_groups()}
        assert truth <= detected
        # No honest source joins a detected group.
        copiers_and_originals = {s for g in truth for s in g}
        for group in detected:
            extra = set(group) - copiers_and_originals
            assert not extra, f"honest sources flagged: {extra}"

    def test_flight_large_groups_detected(self, flight_problem, flight_collection):
        selected = _vote_selection(flight_problem)
        detection = detect_copying(
            flight_problem,
            selected,
            selection_accuracy(flight_problem, selected),
            min_overlap=10,
        )
        detected_sources = {s for g in detection.groups() for s in g}
        for group in flight_collection.true_copy_groups():
            if len(group) >= 4:
                assert set(group) <= detected_sources

    def test_probability_matrix_properties(self, stock_problem):
        selected = _vote_selection(stock_problem)
        detection = detect_copying(
            stock_problem, selected, selection_accuracy(stock_problem, selected)
        )
        P = detection.probability
        assert np.allclose(P, P.T)
        assert np.all(np.diag(P) == 0)
        assert np.all((P >= 0) & (P <= 1))

    def test_agreement_gate_zero_floods(self, flight_problem):
        """Disabling the gate reproduces the raw model's false positives."""
        selected = _vote_selection(flight_problem)
        accuracy = selection_accuracy(flight_problem, selected)
        gated = detect_copying(flight_problem, selected, accuracy)
        raw = detect_copying(
            flight_problem, selected, accuracy, agreement_gate=0.0
        )
        assert (raw.probability > 0.5).sum() > (gated.probability > 0.5).sum()


class TestSelectionAccuracy:
    def test_range_and_shape(self, stock_problem):
        selected = _vote_selection(stock_problem)
        accuracy = selection_accuracy(stock_problem, selected)
        assert accuracy.shape == (stock_problem.n_sources,)
        assert np.all((accuracy >= 0) & (accuracy <= 1))

    def test_perfect_agreement(self):
        ds = build_dataset({
            ("a", "o1", "price"): 10.0,
            ("b", "o1", "price"): 10.0,
        })
        problem = FusionProblem(ds)
        accuracy = selection_accuracy(problem, _vote_selection(problem))
        assert np.allclose(accuracy, 1.0)


class TestIndependenceWeights:
    def test_no_dependence_keeps_full_weight(self, stock_problem):
        dependence = np.zeros((stock_problem.n_sources, stock_problem.n_sources))
        weights = independence_weights(stock_problem, dependence)
        assert np.allclose(weights, 1.0)

    def test_clique_members_share_one_vote(self):
        claims = {(f"s{i}", "o1", "price"): 10.0 for i in range(5)}
        claims[("honest", "o1", "price")] = 11.0
        ds = build_dataset(claims)
        problem = FusionProblem(ds)
        groups = [[f"s{i}" for i in range(5)]]
        dependence = known_groups_matrix(problem, groups)
        weights = independence_weights(problem, dependence, copy_probability=1.0)
        clique_total = sum(
            weights[k]
            for k in range(problem.n_claims)
            if problem.sources[problem.claim_source[k]].startswith("s")
        )
        # Five mutually-dependent providers contribute ~one vote in total.
        assert clique_total == pytest.approx(1.0, abs=0.3)
        honest_weight = [
            weights[k]
            for k in range(problem.n_claims)
            if problem.sources[problem.claim_source[k]] == "honest"
        ][0]
        assert honest_weight == pytest.approx(1.0)

    def test_known_groups_matrix(self, stock_problem):
        matrix = known_groups_matrix(stock_problem, [["fincontent", "merged_a"]])
        i = stock_problem.source_index["fincontent"]
        j = stock_problem.source_index["merged_a"]
        assert matrix[i, j] == 1.0 and matrix[j, i] == 1.0
        assert matrix.sum() == 2.0


class TestGroupsHelper:
    def test_pair_and_groups(self):
        result = CopyDetectionResult(
            sources=["a", "b", "c"],
            probability=np.array(
                [[0, 0.9, 0], [0.9, 0, 0], [0, 0, 0]], dtype=float
            ),
        )
        assert result.pair("a", "b") == pytest.approx(0.9)
        assert result.groups() == [["a", "b"]]
