"""Sharded streaming: K per-shard series compilers vs the unsharded runner.

The load-bearing guarantee: ``cross_shard="exact"`` splices the per-shard
day compilations back into solver arrays bit-identical to the unsharded
daily compile, so per-day selections, rounds, and trust **floats** match
the unsharded :class:`~repro.streaming.StreamRunner` exactly — for all
sixteen registered methods, on both the snapshot-ingest and explicit-delta
paths, through store compaction.  ``cross_shard="independent"`` is the
documented approximation: disjoint-item union with claim-weighted mean
trust.
"""

import os

import pytest

from repro.errors import ConfigError, FusionError
from repro.fusion.registry import METHOD_NAMES
from repro.streaming import ShardedStreamCompiler, StreamRunner

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "4"))


@pytest.fixture(scope="module")
def stock():
    from repro.experiments.context import get_context

    return get_context("tiny").collection("stock")


def _assert_steps_equal(reference, step, methods, day):
    for name in methods:
        a, b = reference.results[name], step.results[name]
        assert b.selected == a.selected, (day, name)
        assert b.rounds == a.rounds, (day, name)
        for source, trust in a.trust.items():
            # Bit-identical, not approximately equal: the merged arrays
            # reproduce the unsharded float-summation order exactly.
            assert b.trust[source] == trust, (day, name, source)


class TestExactShardedStreaming:
    def test_all_sixteen_methods_match_unsharded(self, stock):
        methods = list(METHOD_NAMES)
        reference = StreamRunner(methods, warm_start=True)
        sharded = StreamRunner(
            methods, warm_start=True, shards=3, cross_shard="exact"
        )
        for snapshot in list(stock.series)[:2]:
            _assert_steps_equal(
                reference.push(snapshot), sharded.push(snapshot),
                methods, snapshot.day,
            )

    def test_delta_path_matches_unsharded(self, stock):
        from repro.datagen import perturbed_claim_stream

        methods = ["Vote", "AccuSim", "AccuCopy", "AccuSimAttr", "2-Estimates"]
        base = stock.series.snapshots[0]
        stream = perturbed_claim_stream(base, n_days=3, churn=0.03, seed=5)
        reference = StreamRunner(methods, warm_start=True)
        sharded = StreamRunner(
            methods, warm_start=True, shards=3, cross_shard="exact"
        )
        _assert_steps_equal(
            reference.push(stream.base), sharded.push(stream.base),
            methods, stream.base.day,
        )
        for delta in stream.deltas:
            _assert_steps_equal(
                reference.push_delta(delta), sharded.push_delta(delta),
                methods, delta.day,
            )

    def test_equivalence_survives_compaction(self, stock):
        from repro.datagen import perturbed_claim_stream

        methods = ["Vote", "AccuSim"]
        base = stock.series.snapshots[0]
        stream = perturbed_claim_stream(base, n_days=4, churn=0.3, seed=9)
        reference = StreamRunner(methods, warm_start=True)
        sharded = StreamRunner(
            methods, warm_start=True, shards=3, cross_shard="exact"
        )
        for compiler in sharded.sharded.compilers:
            compiler.max_inactive_ratio = 0.05
        reference.push(stream.base)
        sharded.push(stream.base)
        compacted = False
        for delta in stream.deltas:
            a = reference.push_delta(delta)
            b = sharded.push_delta(delta)
            compacted |= b.stats.compacted
            _assert_steps_equal(a, b, methods, delta.day)
        assert compacted  # the low ratio must actually trigger compaction

    def test_merged_stats_aggregate_the_shards(self, stock):
        sharded = StreamRunner(["Vote"], shards=3, cross_shard="exact")
        snapshot = stock.series.snapshots[0]
        step = sharded.push(snapshot)
        assert step.stats.n_active_claims == snapshot.num_claims
        assert step.stats.n_added_claims == snapshot.num_claims


class TestIndependentShardedStreaming:
    def test_selected_items_partition_exactly(self, stock):
        sharded = StreamRunner(
            ["Vote", "AccuSim"], shards=3, cross_shard="independent"
        )
        for snapshot in list(stock.series)[:2]:
            step = sharded.push(snapshot)
            assert step.shard_results is not None
            for name in ("Vote", "AccuSim"):
                per_shard = [
                    set(results[name].selected)
                    for results in step.shard_results.values()
                ]
                union = set().union(*per_shard)
                assert sum(len(s) for s in per_shard) == len(union)
                assert union == set(step.results[name].selected)

    def test_trust_is_claim_weighted_mean(self, stock):
        snapshot = stock.series.snapshots[0]
        sharded = StreamRunner(["Vote"], shards=2, cross_shard="independent")
        step = sharded.push(snapshot)
        merged = step.results["Vote"].trust
        for source, value in merged.items():
            lo = min(
                results["Vote"].trust[source]
                for results in step.shard_results.values()
            )
            hi = max(
                results["Vote"].trust[source]
                for results in step.shard_results.values()
            )
            assert lo - 1e-12 <= value <= hi + 1e-12, source

    def test_warm_sessions_are_per_shard(self, stock):
        sharded = StreamRunner(["AccuPr"], shards=2, cross_shard="independent")
        first = sharded.push(stock.series.snapshots[0])
        second = sharded.push(stock.series.snapshots[1])
        for results in second.shard_results.values():
            assert results["AccuPr"].extras["warm_started"]
        for results in first.shard_results.values():
            assert not results["AccuPr"].extras["warm_started"]

    @pytest.mark.skipif(
        not __import__("repro.parallel", fromlist=["SolveScheduler"])
        .SolveScheduler(workers=2).parallel,
        reason="platform has no usable shared memory",
    )
    def test_workers_match_serial(self, stock):
        methods = ["Vote", "AccuSim"]
        serial = StreamRunner(
            methods, warm_start=True, shards=3, cross_shard="independent"
        )
        with StreamRunner(
            methods, warm_start=True, shards=3,
            cross_shard="independent", workers=WORKERS,
        ) as parallel:
            for snapshot in list(stock.series)[:2]:
                a = serial.push(snapshot)
                b = parallel.push(snapshot)
                for name in methods:
                    assert b.results[name].selected == a.results[name].selected
                    for source, trust in a.results[name].trust.items():
                        assert b.results[name].trust[source] == pytest.approx(
                            trust, abs=1e-12
                        ), (snapshot.day, name, source)


class TestShardedStreamValidation:
    def test_rejects_external_compiler(self):
        from repro.core.delta import SeriesCompiler

        with pytest.raises(ConfigError, match="mutually exclusive"):
            StreamRunner(["Vote"], shards=2, compiler=SeriesCompiler())

    def test_rejects_single_shard_compiler(self):
        with pytest.raises(ConfigError):
            ShardedStreamCompiler(1)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            ShardedStreamCompiler(2, cross_shard="psychic")

    def test_runner_validates_mode_even_unsharded(self):
        with pytest.raises(ConfigError):
            StreamRunner(["Vote"], cross_shard="psychic")

    def test_runner_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigError, match=">= 1"):
            StreamRunner(["Vote"], shards=0)

    def test_delta_before_ingest_raises(self):
        from repro.core.delta import ClaimDelta

        runner = StreamRunner(["Vote"], shards=2)
        with pytest.raises(FusionError, match="prior ingest"):
            runner.push_delta(ClaimDelta(day="d1"))
