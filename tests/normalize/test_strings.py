"""Gate / symbol / name canonicalization."""

from repro.normalize.strings import normalize_gate, normalize_name, normalize_symbol


class TestNormalizeGate:
    def test_equivalent_spellings_collapse(self):
        spellings = ["C102", "C-102", "Gate C102", "gate c-102", " C 102 "]
        assert {normalize_gate(s) for s in spellings} == {"C102"}

    def test_terminal_prefix_stripped(self):
        assert normalize_gate("Terminal C, Gate 102") == "C102"

    def test_distinct_gates_stay_distinct(self):
        assert normalize_gate("C102") != normalize_gate("B102")

    def test_none_is_empty(self):
        assert normalize_gate(None) == ""


class TestNormalizeSymbol:
    def test_upper_and_stripped(self):
        assert normalize_symbol(" aapl ") == "AAPL"

    def test_inner_whitespace_removed(self):
        assert normalize_symbol("BRK B") == "BRKB"


class TestNormalizeName:
    def test_case_and_spacing(self):
        assert normalize_name("Last  Price") == normalize_name("last price")

    def test_punctuation_folds(self):
        assert normalize_name("P/E") == normalize_name("p/e")
        assert normalize_name("Chg.") == normalize_name("chg")
