"""Number parsing/formatting and granularity handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValueParseError
from repro.normalize.numbers import (
    format_number,
    parse_number,
    round_to_granularity,
    rounds_to,
)


class TestParseNumber:
    def test_the_papers_example_all_equal(self):
        # "6.7M", "6,700,000" and "6700000" are the same value (Section 2.2)
        assert parse_number("6.7M").value == pytest.approx(6_700_000)
        assert parse_number("6,700,000").value == pytest.approx(6_700_000)
        assert parse_number("6700000").value == pytest.approx(6_700_000)

    def test_suffixes(self):
        assert parse_number("2K").value == 2_000
        assert parse_number("76B").value == 76e9
        assert parse_number("1.5T").value == 1.5e12

    def test_currency_and_percent(self):
        assert parse_number("$12.10").value == pytest.approx(12.10)
        parsed = parse_number("1.2%")
        assert parsed.value == pytest.approx(1.2)
        assert parsed.is_percent

    def test_negatives(self):
        assert parse_number("-3.5").value == pytest.approx(-3.5)
        assert parse_number("(3.5)").value == pytest.approx(-3.5)

    def test_granularity_of_suffixed_value(self):
        assert parse_number("6.7M").granularity == pytest.approx(1e5)
        assert parse_number("8M").granularity == pytest.approx(1e6)
        assert parse_number("8").granularity is None

    def test_unparseable(self):
        for bad in ("", "n/a", "12..3", "abc", None):
            with pytest.raises(ValueParseError):
                parse_number(bad)

    def test_case_insensitive_suffix(self):
        assert parse_number("3m").value == pytest.approx(3e6)


class TestFormatNumber:
    def test_round_trip_plain_integer(self):
        assert parse_number(format_number(1234.0)).value == pytest.approx(1234.0)

    def test_millions_rendering(self):
        assert format_number(7.5e6, granularity=1e5) == "7.5M"
        assert format_number(8e6, granularity=1e6) == "8M"


class TestGranularity:
    def test_round_to_granularity(self):
        assert round_to_granularity(7_528_396, 1e6) == pytest.approx(8e6)

    def test_round_to_granularity_rejects_nonpositive(self):
        with pytest.raises(ValueParseError):
            round_to_granularity(1.0, 0.0)

    def test_rounds_to_subsumption(self):
        # the paper's "8M" subsumes 7,528,396 example (Section 4.1)
        assert rounds_to(7_528_396, 8e6, 1e6)
        assert not rounds_to(7_400_000, 8e6, 1e6)

    def test_rounds_to_zero_granularity(self):
        assert not rounds_to(1.0, 1.0, 0.0)


@given(st.floats(min_value=0.01, max_value=1e12, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_parse_format_roundtrip(value):
    """Formatting then parsing returns the same value (to float precision)."""
    text = format_number(value)
    assert parse_number(text).value == pytest.approx(value, rel=1e-6)


@given(
    value=st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
    exponent=st.integers(min_value=0, max_value=6),
)
@settings(max_examples=200, deadline=None)
def test_rounding_is_idempotent_and_subsumes(value, exponent):
    granularity = 10.0 ** exponent
    rounded = round_to_granularity(value, granularity)
    assert round_to_granularity(rounded, granularity) == pytest.approx(rounded)
    assert rounds_to(value, rounded, granularity)
