"""Local-to-global schema matching."""

import pytest

from repro.errors import SchemaError
from repro.normalize.schema import SchemaMatcher, match_statistics


def _matcher():
    matcher = SchemaMatcher()
    matcher.register_global("Last price")
    matcher.register_global("Volume")
    matcher.register_synonym("Last trade", "Last price")
    matcher.register_synonym("Vol", "Volume")
    return matcher


class TestSchemaMatcher:
    def test_global_resolves_to_itself(self):
        assert _matcher().resolve("Last price") == "Last price"

    def test_synonym_resolves(self):
        assert _matcher().resolve("Last trade") == "Last price"

    def test_resolution_is_case_insensitive(self):
        assert _matcher().resolve("last TRADE") == "Last price"

    def test_unknown_resolves_to_none(self):
        assert _matcher().resolve("Beta") is None

    def test_resolve_required_raises(self):
        with pytest.raises(SchemaError):
            _matcher().resolve_required("Beta")

    def test_synonym_for_unknown_global_rejected(self):
        matcher = SchemaMatcher()
        with pytest.raises(SchemaError):
            matcher.register_synonym("x", "nope")

    def test_conflicting_synonym_rejected(self):
        matcher = _matcher()
        with pytest.raises(SchemaError):
            matcher.register_synonym("Last trade", "Volume")

    def test_match_schema_bulk(self):
        resolved = _matcher().match_schema(["Vol", "Beta"])
        assert resolved == {"Vol": "Volume", "Beta": None}


class TestMatchStatistics:
    def test_local_exceeds_global(self):
        matcher = _matcher()
        local_schemas = {
            "s1": ["Last price", "Vol"],
            "s2": ["Last trade", "Volume"],
        }
        n_local, n_global = match_statistics(matcher, local_schemas)
        assert n_local == 4
        assert n_global == 2
