"""Time parsing and minute arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValueParseError
from repro.normalize.times import (
    clamp_to_day,
    format_time,
    minutes_between,
    parse_time,
    try_parse_time,
)


class TestParseTime:
    def test_24_hour(self):
        assert parse_time("18:15") == 18 * 60 + 15

    def test_12_hour(self):
        assert parse_time("6:15 PM") == 18 * 60 + 15
        assert parse_time("6:15p") == 18 * 60 + 15
        assert parse_time("6:15 AM") == 6 * 60 + 15

    def test_midnight_and_noon(self):
        assert parse_time("12:00 AM") == 0
        assert parse_time("12:00 PM") == 12 * 60

    def test_leading_date_fragment_ignored(self):
        assert parse_time("Dec 8 6:15 PM") == 18 * 60 + 15

    def test_with_seconds(self):
        assert parse_time("06:15:30") == 6 * 60 + 15

    def test_invalid(self):
        for bad in ("", "25:00", "12:61", "13:00 PM", "noon", None):
            with pytest.raises(ValueParseError):
                parse_time(bad)

    def test_try_parse_returns_none(self):
        assert try_parse_time("garbage") is None
        assert try_parse_time("9:30") == 570


class TestFormatTime:
    def test_24h(self):
        assert format_time(18 * 60 + 15) == "18:15"

    def test_12h(self):
        assert format_time(18 * 60 + 15, twelve_hour=True) == "6:15 PM"
        assert format_time(0, twelve_hour=True) == "12:00 AM"


class TestMinutes:
    def test_minutes_between(self):
        assert minutes_between(600, 615) == 15

    def test_wrap_midnight(self):
        late, early = 23 * 60 + 55, 5
        assert minutes_between(late, early) == 1430
        assert minutes_between(late, early, wrap_midnight=True) == 10

    def test_clamp_to_day(self):
        assert clamp_to_day(1445) == 5
        assert clamp_to_day(-10) == 1430


@given(st.integers(min_value=0, max_value=1439))
@settings(max_examples=200, deadline=None)
def test_format_parse_roundtrip(minutes):
    assert parse_time(format_time(minutes)) == minutes


@given(st.integers(min_value=0, max_value=1439))
@settings(max_examples=100, deadline=None)
def test_twelve_hour_roundtrip(minutes):
    assert parse_time(format_time(minutes, twelve_hour=True)) == minutes
