"""Method-pair comparison (Table 8)."""

import pytest

from repro.core.records import DataItem
from repro.evaluation.compare import TABLE8_PAIRS, compare_methods
from repro.fusion.base import FusionResult

from tests.helpers import build_dataset, build_gold


class TestCompareMethods:
    def test_fixed_and_new_errors(self):
        ds = build_dataset({("s1", "o1", "price"): 10.0,
                            ("s1", "o2", "price"): 20.0})
        gold = build_gold({("o1", "price"): 10.0, ("o2", "price"): 20.0})
        basic = FusionResult(
            method="basic",
            selected={DataItem("o1", "price"): 99.0,
                      DataItem("o2", "price"): 20.0},
            trust={},
        )
        advanced = FusionResult(
            method="advanced",
            selected={DataItem("o1", "price"): 10.0,
                      DataItem("o2", "price"): 555.0},
            trust={},
        )
        row = compare_methods(ds, gold, basic, advanced)
        assert row.fixed_errors == 1
        assert row.new_errors == 1
        assert row.precision_delta == pytest.approx(0.0)

    def test_identical_results(self):
        ds = build_dataset({("s1", "o1", "price"): 10.0})
        gold = build_gold({("o1", "price"): 10.0})
        result = FusionResult(
            method="m", selected={DataItem("o1", "price"): 10.0}, trust={}
        )
        row = compare_methods(ds, gold, result, result)
        assert row.fixed_errors == row.new_errors == 0
        assert row.precision_delta == 0.0

    def test_table8_pairs_reference_known_methods(self):
        from repro.fusion.registry import METHOD_NAMES
        for basic, advanced in TABLE8_PAIRS:
            assert basic in METHOD_NAMES
            assert advanced in METHOD_NAMES
