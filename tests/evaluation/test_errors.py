"""Fusion-error diagnosis (Figure 11)."""

import pytest

from repro.core.records import DataItem
from repro.evaluation.errors import (
    ERROR_CATEGORIES,
    analyze_errors,
    classify_error,
    _is_finer_granularity,
)
from repro.fusion.base import FusionResult

from tests.helpers import build_dataset, build_gold


class TestFinerGranularity:
    def test_rounds_onto_truth(self):
        assert _is_finer_granularity(7_528_396.0, 8e6)
        assert _is_finer_granularity(10.04, 10.0)

    def test_not_related(self):
        assert not _is_finer_granularity(7_000_000.0, 8e6)

    def test_strings(self):
        assert not _is_finer_granularity("A1", "B2")


class TestClassifyError:
    def _scenario(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 55.0,
            ("s2", "o1", "price"): 55.0,
            ("s3", "o1", "price"): 55.0,
            ("s4", "o1", "price"): 10.0,
        })
        gold = build_gold({("o1", "price"): 10.0})
        item = DataItem("o1", "price")
        result = FusionResult(method="m", selected={item: 55.0}, trust={})
        return ds, gold, item, result

    def test_fixed_by_trust(self):
        ds, gold, item, result = self._scenario()
        label = classify_error(
            ds, gold, item, result,
            fixed_by_trust=True, fixed_by_copying=False, sampled_accuracy={},
        )
        assert label == "Imprecise trustworthiness"

    def test_fixed_by_copying(self):
        ds, gold, item, result = self._scenario()
        label = classify_error(
            ds, gold, item, result,
            fixed_by_trust=False, fixed_by_copying=True, sampled_accuracy={},
        )
        assert label == "Not considering correct copying"

    def test_dominant_false_value(self):
        ds, gold, item, result = self._scenario()
        label = classify_error(
            ds, gold, item, result,
            fixed_by_trust=False, fixed_by_copying=False, sampled_accuracy={},
        )
        assert label == '"False" value dominant'

    def test_high_accuracy_sources(self):
        ds = build_dataset({
            ("good1", "o1", "price"): 55.0,
            ("good2", "o1", "price"): 55.0,
            ("meh1", "o1", "price"): 10.0,
            ("meh2", "o1", "price"): 10.0,
        })
        gold = build_gold({("o1", "price"): 10.0})
        item = DataItem("o1", "price")
        result = FusionResult(method="m", selected={item: 55.0}, trust={})
        label = classify_error(
            ds, gold, item, result,
            fixed_by_trust=False, fixed_by_copying=False,
            sampled_accuracy={"good1": 0.99, "good2": 0.98,
                              "meh1": 0.6, "meh2": 0.6},
        )
        assert label == '"False" value provided by high-accuracy sources'


class TestAnalyzeErrors:
    def test_full_pipeline_on_generated(self, stock_snapshot, stock_gold,
                                        stock_problem, stock_collection):
        from repro.fusion.registry import make_method
        from repro.fusion.copy_aware import AccuCopy
        from repro.fusion.trust import sample_trust, sampled_accuracy

        name = "AccuFormatAttr"
        result = make_method(name).run(stock_problem)
        sample = sample_trust(name, stock_snapshot, stock_gold)
        with_trust = make_method(name).run(
            stock_problem, trust_seed=sample, freeze_trust=True
        )
        with_copying = AccuCopy(
            known_groups=stock_collection.true_copy_groups()
        ).run(stock_problem, trust_seed=sample, freeze_trust=True)
        analysis = analyze_errors(
            stock_snapshot, stock_gold, result, with_trust, with_copying,
            sampled_accuracy(stock_snapshot, stock_gold),
        )
        assert analysis.method == name
        assert set(analysis.counts) <= set(ERROR_CATEGORIES)
        assert sum(analysis.counts.values()) <= 20
