"""Source ordering and incremental-recall curves (Figure 9)."""

import pytest

from repro.evaluation.ordering import (
    RecallCurve,
    recall_as_sources_added,
    sources_by_recall,
)

from tests.helpers import build_dataset, build_gold


@pytest.fixture()
def scenario():
    ds = build_dataset({
        ("full", "o1", "price"): 10.0,
        ("full", "o2", "price"): 20.0,
        ("half", "o1", "price"): 10.0,
        ("wrong", "o1", "price"): 99.0,
        ("wrong", "o2", "price"): 88.0,
    })
    gold = build_gold({("o1", "price"): 10.0, ("o2", "price"): 20.0})
    return ds, gold


class TestSourcesByRecall:
    def test_ordering(self, scenario):
        ds, gold = scenario
        order = sources_by_recall(ds, gold)
        assert order[0] == "full"   # recall 1.0
        assert order[1] == "half"   # recall 0.5
        assert order[2] == "wrong"  # recall 0.0

    def test_deterministic_tiebreak(self):
        ds = build_dataset({
            ("a", "o1", "price"): 10.0,
            ("b", "o1", "price"): 10.0,
        })
        gold = build_gold({("o1", "price"): 10.0})
        assert sources_by_recall(ds, gold) == ["a", "b"]


class TestRecallCurves:
    def test_recall_grows_with_good_sources(self, scenario):
        ds, gold = scenario
        curves = recall_as_sources_added(ds, gold, ["Vote"])
        recalls = curves["Vote"].recalls
        assert recalls[0] == pytest.approx(1.0)  # 'full' alone: both right
        assert len(recalls) == 3

    def test_prefix_sizes(self, scenario):
        ds, gold = scenario
        curves = recall_as_sources_added(
            ds, gold, ["Vote"], prefix_sizes=[1, 3]
        )
        assert len(curves["Vote"].recalls) == 2

    def test_curve_summaries(self):
        curve = RecallCurve(method="m", recalls=[0.5, 0.9, 0.7])
        assert curve.peak == 2
        assert curve.peak_recall == pytest.approx(0.9)
        assert curve.final == pytest.approx(0.7)


class TestOnGenerated:
    def test_single_best_source_has_high_recall(self, flight_snapshot,
                                                flight_gold):
        order = sources_by_recall(flight_snapshot, flight_gold)
        curves = recall_as_sources_added(
            flight_snapshot, flight_gold, ["Vote"], ordering=order,
            prefix_sizes=[1, len(order)],
        )
        first, final = curves["Vote"].recalls
        assert 0.0 < first <= 1.0
        assert 0.0 < final <= 1.0
