"""Per-day precision series (Table 9)."""

import pytest

from repro.evaluation.timeseries import PrecisionSeries, precision_over_time


class TestPrecisionSeries:
    def test_summary_statistics(self):
        series = PrecisionSeries(
            method="m", days=["d0", "d1"], precisions=[0.8, 1.0]
        )
        assert series.average == pytest.approx(0.9)
        assert series.minimum == pytest.approx(0.8)
        assert series.deviation == pytest.approx(0.1)

    def test_empty_series(self):
        series = PrecisionSeries(method="m", days=[], precisions=[])
        assert series.average == 0.0
        assert series.deviation == 0.0


class TestPrecisionOverTime:
    def test_runs_on_generated_series(self, flight_collection):
        result = precision_over_time(
            flight_collection.series,
            flight_collection.gold_by_day,
            ["Vote", "AccuPr"],
        )
        assert set(result) == {"Vote", "AccuPr"}
        for series in result.values():
            assert len(series.precisions) == len(flight_collection.series)
            assert all(0.0 <= p <= 1.0 for p in series.precisions)

    def test_day_filter(self, flight_collection):
        wanted = flight_collection.series.days[:1]
        result = precision_over_time(
            flight_collection.series,
            flight_collection.gold_by_day,
            ["Vote"],
            days=wanted,
        )
        assert result["Vote"].days == wanted
