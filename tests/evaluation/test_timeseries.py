"""Per-day precision series (Table 9)."""

import pytest

from repro.evaluation.timeseries import PrecisionSeries, precision_over_time


class TestPrecisionSeries:
    def test_summary_statistics(self):
        series = PrecisionSeries(
            method="m", days=["d0", "d1"], precisions=[0.8, 1.0]
        )
        assert series.average == pytest.approx(0.9)
        assert series.minimum == pytest.approx(0.8)
        assert series.deviation == pytest.approx(0.1)

    def test_empty_series(self):
        series = PrecisionSeries(method="m", days=[], precisions=[])
        assert series.average == 0.0
        assert series.deviation == 0.0

    def test_empty_series_minimum(self):
        assert PrecisionSeries(method="m", days=[], precisions=[]).minimum == 0.0

    def test_single_day_deviation_is_zero(self):
        series = PrecisionSeries(method="m", days=["d0"], precisions=[0.7])
        assert series.average == pytest.approx(0.7)
        assert series.minimum == pytest.approx(0.7)
        assert series.deviation == 0.0


class TestPrecisionOverTime:
    def test_runs_on_generated_series(self, flight_collection):
        result = precision_over_time(
            flight_collection.series,
            flight_collection.gold_by_day,
            ["Vote", "AccuPr"],
        )
        assert set(result) == {"Vote", "AccuPr"}
        for series in result.values():
            assert len(series.precisions) == len(flight_collection.series)
            assert all(0.0 <= p <= 1.0 for p in series.precisions)

    def test_day_filter(self, flight_collection):
        wanted = flight_collection.series.days[:1]
        result = precision_over_time(
            flight_collection.series,
            flight_collection.gold_by_day,
            ["Vote"],
            days=wanted,
        )
        assert result["Vote"].days == wanted

    def test_day_filter_unknown_day_yields_empty(self, flight_collection):
        result = precision_over_time(
            flight_collection.series,
            flight_collection.gold_by_day,
            ["Vote"],
            days=["not-a-day"],
        )
        assert result["Vote"].days == []
        assert result["Vote"].precisions == []

    def test_session_engine_equals_cold_engine(self, flight_collection):
        """The streamed Table 9 reproduces the from-scratch numbers exactly."""
        names = ["Vote", "AccuPr", "AccuSimAttr", "AccuCopy"]
        streamed = precision_over_time(
            flight_collection.series, flight_collection.gold_by_day, names,
        )
        cold = precision_over_time(
            flight_collection.series, flight_collection.gold_by_day, names,
            engine="cold",
        )
        for name in names:
            assert streamed[name].days == cold[name].days
            assert streamed[name].precisions == cold[name].precisions

    def test_warm_start_produces_sane_series(self, flight_collection):
        result = precision_over_time(
            flight_collection.series,
            flight_collection.gold_by_day,
            ["AccuPr"],
            warm_start=True,
        )
        series = result["AccuPr"]
        assert len(series.precisions) == len(flight_collection.series)
        assert all(0.0 <= p <= 1.0 for p in series.precisions)

    def test_rejects_unknown_engine(self, flight_collection):
        from repro.errors import FusionError

        with pytest.raises(FusionError):
            precision_over_time(
                flight_collection.series,
                flight_collection.gold_by_day,
                ["Vote"],
                engine="quantum",
            )
