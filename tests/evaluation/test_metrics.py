"""Precision/recall scoring and dominance-bucketed precision."""

import pytest

from repro.core.records import DataItem
from repro.evaluation.metrics import (
    error_items,
    evaluate,
    precision_by_dominance,
)
from repro.fusion.base import FusionResult

from tests.helpers import build_dataset, build_gold


@pytest.fixture()
def scenario():
    ds = build_dataset({
        ("s1", "o1", "price"): 10.0,
        ("s2", "o1", "price"): 10.0,
        ("s1", "o2", "price"): 20.0,
        ("s1", "o3", "price"): 30.0,
    })
    gold = build_gold({
        ("o1", "price"): 10.0,
        ("o2", "price"): 20.0,
        ("o3", "price"): 99.0,  # result will be wrong here
        ("o4", "price"): 40.0,  # not output at all
    })
    result = FusionResult(
        method="t",
        selected={
            DataItem("o1", "price"): 10.0,
            DataItem("o2", "price"): 20.0,
            DataItem("o3", "price"): 30.0,
        },
        trust={},
    )
    return ds, gold, result


class TestEvaluate:
    def test_precision_over_output(self, scenario):
        ds, gold, result = scenario
        score = evaluate(ds, gold, result)
        assert score.precision == pytest.approx(2 / 3)

    def test_recall_over_gold(self, scenario):
        ds, gold, result = scenario
        score = evaluate(ds, gold, result)
        assert score.recall == pytest.approx(2 / 4)

    def test_errors_listed(self, scenario):
        ds, gold, result = scenario
        score = evaluate(ds, gold, result)
        assert score.errors == [DataItem("o3", "price")]

    def test_tolerance_aware_match(self, scenario):
        ds, gold, _ = scenario
        near = FusionResult(
            method="t", selected={DataItem("o1", "price"): 10.05}, trust={}
        )
        assert evaluate(ds, gold, near).precision == 1.0

    def test_recall_equals_precision_when_all_output(self):
        ds = build_dataset({("s1", "o1", "price"): 10.0})
        gold = build_gold({("o1", "price"): 10.0})
        result = FusionResult(
            method="t", selected={DataItem("o1", "price"): 10.0}, trust={}
        )
        score = evaluate(ds, gold, result)
        assert score.precision == score.recall == 1.0


class TestErrorItems:
    def test_missing_items_count_as_errors(self, scenario):
        ds, gold, result = scenario
        wrong = error_items(ds, gold, result)
        assert DataItem("o3", "price") in wrong
        assert DataItem("o4", "price") in wrong
        assert DataItem("o1", "price") not in wrong


class TestPrecisionByDominance:
    def test_buckets(self, scenario):
        ds, gold, result = scenario
        curve = precision_by_dominance(ds, gold, result)
        assert set(curve) == {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
        # items o1..o3 all have dominance 1.0 -> bucket 0.9
        assert curve[0.9] == pytest.approx(2 / 3)
        assert curve[0.1] is None
