"""Source selection (Section 5 / 'Less is More')."""

import pytest

from repro.errors import FusionError
from repro.evaluation.selection import (
    greedy_source_selection,
    recall_prefix_selection,
)

from tests.helpers import build_dataset, build_gold


@pytest.fixture()
def scenario():
    """Two clean sources cover everything; a noisy mob outvotes them on o2."""
    claims = {
        ("clean1", "o1", "price"): 10.0,
        ("clean1", "o2", "price"): 20.0,
        ("clean2", "o1", "price"): 10.0,
        ("clean2", "o2", "price"): 20.0,
    }
    for k in range(3):
        claims[(f"noisy{k}", "o2", "price")] = 99.0
    ds = build_dataset(claims)
    gold = build_gold({("o1", "price"): 10.0, ("o2", "price"): 20.0})
    return ds, gold


class TestGreedySelection:
    def test_selects_clean_sources_and_beats_all(self, scenario):
        ds, gold = scenario
        result = greedy_source_selection(ds, gold)
        assert set(result.selected) <= {"clean1", "clean2"}
        assert result.recall == pytest.approx(1.0)
        # Fusing everything lets the noisy mob win o2.
        assert result.all_sources_recall < 1.0
        assert result.gain_over_all_sources > 0

    def test_max_sources_respected(self, scenario):
        ds, gold = scenario
        result = greedy_source_selection(ds, gold, max_sources=1)
        assert len(result.selected) == 1

    def test_history_monotone(self, scenario):
        ds, gold = scenario
        result = greedy_source_selection(ds, gold)
        assert result.history == sorted(result.history)

    def test_empty_pool_rejected(self, scenario):
        ds, gold = scenario
        with pytest.raises(FusionError):
            greedy_source_selection(ds, gold, candidate_pool=[])


class TestPrefixSelection:
    def test_peak_found(self, scenario):
        ds, gold = scenario
        result = recall_prefix_selection(ds, gold)
        assert result.recall >= result.all_sources_recall
        assert len(result.history) == ds.num_sources

    def test_on_generated_flight(self, flight_snapshot, flight_gold):
        result = recall_prefix_selection(
            flight_snapshot, flight_gold, max_prefix=12
        )
        # The paper's finding: a small prefix beats fusing all sources.
        assert len(result.selected) <= 12
        assert result.recall >= result.all_sources_recall - 0.02
