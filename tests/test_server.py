"""The asyncio HTTP front-end: routes, middleware, streams, live publishes."""

import http.client
import io
import json
import socket
import threading
import time

import pytest

from repro.core.records import DataItem
from repro.errors import FusionError
from repro.fusion.base import FusionResult
from repro.middleware import Request, compose, json_response
from repro.serving import TruthStore
from repro.server import resolve_backend, run_in_thread

N_ITEMS = 24


def _result(version, n_items=N_ITEMS):
    """Every item's value and s1's trust encode the version — any mix of
    versions inside one response is therefore detectable as a torn read."""
    return {
        "Vote": FusionResult(
            method="Vote",
            selected={
                DataItem(f"o{i}", "price"): float(version)
                for i in range(n_items)
            },
            trust={"s1": float(version)},
        ),
        "AccuSim": FusionResult(
            method="AccuSim",
            selected={
                DataItem(f"o{i}", "price"): float(version)
                for i in range(n_items)
            },
            trust={"s1": float(version)},
        ),
    }


def _get(port, path, headers=None, timeout=5):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        body = response.read()
        try:
            decoded = json.loads(body) if body else None
        except json.JSONDecodeError:
            decoded = body  # NDJSON streams and the like
        return response.status, decoded, dict(response.getheaders())
    finally:
        conn.close()


@pytest.fixture()
def store():
    store = TruthStore(monotonic_days=True)
    store.publish("day0000", _result(1))
    return store


@pytest.fixture()
def server(store):
    with run_in_thread(store) as handle:
        yield handle


class TestEndpoints:
    def test_health(self, server, store):
        status, body, headers = _get(server.port, "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["version"] == store.version
        assert body["day"] == "day0000"
        assert body["n_items"] == N_ITEMS
        assert body["methods"] == ["Vote", "AccuSim"]
        assert headers["X-Store-Version"] == str(store.version)

    def test_lookup_trust_ensemble(self, server):
        status, body, headers = _get(
            server.port, "/lookup?object=o3&attribute=price"
        )
        assert status == 200
        assert body["value"] == 1.0 and body["method"] == "Vote"
        assert headers["X-Store-Version"] == "1"
        status, body, _ = _get(
            server.port, "/lookup?object=o3&attribute=price&method=AccuSim"
        )
        assert status == 200 and body["method"] == "AccuSim"
        status, body, _ = _get(server.port, "/trust?source=s1")
        assert status == 200 and body["trust"] == 1.0
        status, body, _ = _get(
            server.port, "/ensemble?object=o3&attribute=price"
        )
        assert status == 200 and body["method"] == "Ensemble"

    def test_misses_are_404_with_version(self, server):
        status, body, headers = _get(
            server.port, "/lookup?object=o999&attribute=price"
        )
        assert status == 404 and body["error"] == "no truth"
        assert headers["X-Store-Version"] == "1"
        status, body, _ = _get(server.port, "/trust?source=ghost")
        assert status == 404
        status, body, _ = _get(
            server.port, "/lookup?object=o3&attribute=price&method=Nope"
        )
        assert status == 404

    def test_bad_requests(self, server):
        status, body, _ = _get(server.port, "/lookup?object=o3")
        assert status == 400 and "attribute" in body["error"]
        status, body, _ = _get(server.port, "/nope")
        assert status == 404 and "/lookup" in body["paths"]
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        try:
            conn.request("POST", "/lookup", body=b"{}")
            response = conn.getresponse()
            assert response.status == 405
            assert response.getheader("Allow") == "GET"
            response.read()
        finally:
            conn.close()

    def test_keep_alive_reuses_one_connection(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        try:
            for _ in range(3):
                conn.request("GET", "/health")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(FusionError):
            resolve_backend("twisted")

    def test_starlette_backend_degrades_with_one_warning(self):
        import warnings

        import repro.server as server_module

        if server_module.HAVE_STARLETTE:
            pytest.skip("starlette installed: no fallback to observe")
        server_module._WARNED_BACKEND = False
        with pytest.warns(RuntimeWarning, match="starlette"):
            assert resolve_backend("starlette") == "stdlib"
        # Second resolve stays silent (warn-once contract).
        with warnings.catch_warnings(record=True) as records:
            warnings.simplefilter("always")
            assert resolve_backend("starlette") == "stdlib"
        assert not records, [str(r.message) for r in records]


class TestMiddleware:
    def test_token_auth_guards_everything_but_health(self, store):
        with run_in_thread(store, auth_token="sekret") as handle:
            status, _, _ = _get(handle.port, "/health")
            assert status == 200
            status, body, _ = _get(
                handle.port, "/lookup?object=o1&attribute=price"
            )
            assert status == 401 and body["error"] == "unauthorized"
            status, _, _ = _get(
                handle.port,
                "/lookup?object=o1&attribute=price",
                headers={"Authorization": "Bearer wrong"},
            )
            assert status == 401
            status, body, _ = _get(
                handle.port,
                "/lookup?object=o1&attribute=price",
                headers={"Authorization": "Bearer sekret"},
            )
            assert status == 200 and body["value"] == 1.0
            # The alternate header form works too.
            status, _, _ = _get(
                handle.port,
                "/dump",
                headers={"X-API-Token": "sekret"},
            )
            assert status == 200

    def test_request_logging_emits_json_lines(self, store):
        log = io.StringIO()
        with run_in_thread(store, log_stream=log) as handle:
            _get(handle.port, "/lookup?object=o1&attribute=price")
            _get(handle.port, "/lookup?object=o999&attribute=price")
        lines = [json.loads(line) for line in log.getvalue().splitlines()]
        assert len(lines) == 2
        assert lines[0]["path"] == "/lookup" and lines[0]["status"] == 200
        assert lines[0]["version"] == 1 and lines[0]["bytes"] > 0
        assert lines[0]["duration_ms"] >= 0
        assert lines[1]["status"] == 404

    def test_custom_middleware_composes_outermost_first(self, store):
        seen = []

        def tag(label):
            def middleware(handler):
                async def wrapped(request):
                    seen.append(label)
                    response = await handler(request)
                    response.headers[f"X-{label}"] = "1"
                    return response

                return wrapped

            return middleware

        with run_in_thread(
            store, middleware=[tag("outer"), tag("inner")]
        ) as handle:
            status, _, headers = _get(handle.port, "/health")
        assert status == 200
        assert seen == ["outer", "inner"]
        assert headers["X-outer"] == "1" and headers["X-inner"] == "1"

    def test_compose_unit(self):
        async def handler(request):
            return json_response({"ok": True})

        def add_header(handler):
            async def wrapped(request):
                response = await handler(request)
                response.headers["X-Tagged"] = "1"
                return response

            return wrapped

        import asyncio

        response = asyncio.run(
            compose([add_header], handler)(Request(method="GET", path="/x"))
        )
        assert response.headers["X-Tagged"] == "1"


class TestStreaming:
    def test_dump_is_pinned_to_one_version(self, server, store):
        """A publish landing mid-dump must not leak into the stream."""
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        try:
            conn.request("GET", "/dump")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "application/x-ndjson"
            )
            pinned = int(response.getheader("X-Store-Version"))
            first = response.read(64)  # start consuming ...
            store.publish("day0001", _result(2))  # ... then swap live
            rest = response.read()
        finally:
            conn.close()
        lines = [
            json.loads(line)
            for line in (first + rest).decode().strip().splitlines()
        ]
        assert len(lines) == N_ITEMS
        assert {line["version"] for line in lines} == {pinned}
        assert {line["values"]["Vote"] for line in lines} == {1.0}
        # A fresh dump sees the new version.
        status, _, headers = _get(server.port, "/health")
        assert headers["X-Store-Version"] == "2"

    def test_dump_can_filter_one_method(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        try:
            conn.request("GET", "/dump?method=AccuSim")
            response = conn.getresponse()
            lines = [
                json.loads(line)
                for line in response.read().decode().strip().splitlines()
            ]
        finally:
            conn.close()
        assert all(set(line["values"]) == {"AccuSim"} for line in lines)

    def test_sse_events_follow_publishes(self, server, store):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=5)
        try:
            sock.sendall(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
            buffer = b""
            deadline = time.time() + 5
            while b"event: hello" not in buffer and time.time() < deadline:
                buffer += sock.recv(4096)
            assert b"event: hello" in buffer
            store.publish("day0001", _result(2))
            store.publish("day0002", _result(3))
            server.broadcast("day", {"day": "day0002", "rounds": 7})
            wanted = (b'"version": 2', b'"version": 3', b'"rounds": 7')
            while (
                not all(marker in buffer for marker in wanted)
                and time.time() < deadline
            ):
                buffer += sock.recv(4096)
        finally:
            sock.close()
        text = buffer.decode()
        assert '"version": 2' in text and '"version": 3' in text
        assert "event: day" in text and '"rounds": 7' in text
        # Publish events arrive in version order.
        assert text.index('"version": 2') < text.index('"version": 3')


class TestLivePublishRaces:
    def test_readers_never_see_torn_or_stale_answers(self, store):
        """8 keep-alive clients racing 120 live publishes: every response
        coherent (value == trust == version) and versions never rewind."""
        publishes = 120
        clients = 8
        errors = []
        stop = threading.Event()

        def reader():
            conn = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=5
            )
            last_version = 0
            try:
                while not stop.is_set():
                    conn.request(
                        "GET", "/lookup?object=o5&attribute=price"
                    )
                    response = conn.getresponse()
                    body = json.loads(response.read())
                    if response.status != 200:
                        errors.append(("status", response.status, body))
                        return
                    if body["value"] != float(body["version"]):
                        errors.append(("torn", body))
                        return
                    if body["version"] < last_version:
                        errors.append(
                            ("rewind", last_version, body["version"])
                        )
                        return
                    last_version = body["version"]
                    conn.request("GET", "/trust?source=s1")
                    response = conn.getresponse()
                    trust = json.loads(response.read())
                    if trust["trust"] != float(trust["version"]):
                        errors.append(("torn trust", trust))
                        return
            except OSError as error:
                if not stop.is_set():
                    errors.append(("connection", repr(error)))
            finally:
                conn.close()

        with run_in_thread(store) as handle:
            port = handle.port
            threads = [
                threading.Thread(target=reader) for _ in range(clients)
            ]
            for thread in threads:
                thread.start()
            for version in range(2, publishes + 2):
                store.publish(f"day{version:04d}", _result(version))
                time.sleep(0.001)
            stop.set()
            for thread in threads:
                thread.join(10)
        assert not errors, errors[:3]
        assert store.version == publishes + 1

    def test_monotonic_store_rejects_stale_republish_under_server(self, store):
        from repro.errors import StalePublishError

        with run_in_thread(store):
            store.publish("day0005", _result(5))
            with pytest.raises(StalePublishError):
                store.publish("day0001", _result(9))
            assert store.day == "day0005"
