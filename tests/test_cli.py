"""The repro.cli command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import write_claims_csv, write_gold_csv

from tests.helpers import build_dataset, build_gold


@pytest.fixture()
def claims_csv(tmp_path):
    ds = build_dataset({
        ("s1", "o1", "price"): 10.0,
        ("s2", "o1", "price"): 10.0,
        ("s3", "o1", "price"): 77.0,
    })
    path = tmp_path / "claims.csv"
    write_claims_csv(ds, path)
    return path


class TestMethodsCommand:
    def test_lists_all_sixteen(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 16
        assert "AccuCopy" in out


class TestFuseCommand:
    def test_fuse_prints_selection(self, claims_csv, capsys):
        assert main(["fuse", str(claims_csv), "--method", "Vote"]) == 0
        out = capsys.readouterr().out
        assert "o1" in out and "10.0" in out

    def test_fuse_writes_json(self, claims_csv, tmp_path, capsys):
        output = tmp_path / "result.json"
        assert main([
            "fuse", str(claims_csv), "--method", "AccuPr", "-o", str(output)
        ]) == 0
        payload = json.loads(output.read_text())
        assert payload["method"] == "AccuPr"
        assert payload["selected"]

    def test_fuse_scores_against_gold(self, claims_csv, tmp_path, capsys):
        gold_path = tmp_path / "gold.csv"
        write_gold_csv(build_gold({("o1", "price"): 10.0}), gold_path)
        assert main([
            "fuse", str(claims_csv), "--method", "Vote", "--gold", str(gold_path)
        ]) == 0
        out = capsys.readouterr().out
        assert "precision=1.0000" in out


class TestFuseSolverFlags:
    def test_max_rounds_caps_iteration(self, claims_csv, tmp_path):
        output = tmp_path / "result.json"
        assert main([
            "fuse", str(claims_csv), "--method", "AccuPr",
            "--max-rounds", "1", "-o", str(output),
        ]) == 0
        payload = json.loads(output.read_text())
        assert payload["rounds"] == 1
        assert payload["converged"] is False

    def test_tolerance_is_wired_through(self, claims_csv, tmp_path):
        strict = tmp_path / "strict.json"
        loose = tmp_path / "loose.json"
        for path, tolerance in ((strict, "1e-12"), (loose, "0.5")):
            assert main([
                "fuse", str(claims_csv), "--method", "AccuPr",
                "--tolerance", tolerance, "-o", str(path),
            ]) == 0
        assert (
            json.loads(loose.read_text())["rounds"]
            <= json.loads(strict.read_text())["rounds"]
        )


class TestStreamCommand:
    @pytest.fixture()
    def stream_dir(self, tmp_path):
        directory = tmp_path / "days"
        directory.mkdir()
        for day, third in (("d1", 77.0), ("d2", 10.0)):
            ds = build_dataset({
                ("s1", "o1", "price"): 10.0,
                ("s2", "o1", "price"): 10.0,
                ("s3", "o1", "price"): third,
            }, day=day)
            write_claims_csv(ds, directory / f"{day}.csv")
        return directory

    def test_streams_days_in_order(self, stream_dir, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main([
            "stream", str(stream_dir), "--method", "Vote",
            "--output-dir", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "d1 Vote:" in out and "d2 Vote:" in out
        payload = json.loads((out_dir / "d2.Vote.json").read_text())
        assert payload["method"] == "Vote"
        assert payload["trust"]

    def test_multiple_methods_and_cold_mode(self, stream_dir, capsys):
        assert main([
            "stream", str(stream_dir), "--method", "Vote",
            "--method", "AccuPr", "--cold", "--max-rounds", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "AccuPr" in out and "Vote" in out

    def test_empty_directory_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["stream", str(empty)]) == 1

    def test_missing_directory_fails(self, tmp_path):
        assert main(["stream", str(tmp_path / "nope")]) == 2


class TestExportDemo:
    def test_round_trip_through_cli(self, tmp_path, capsys):
        claims = tmp_path / "demo.csv"
        gold = tmp_path / "demo_gold.csv"
        assert main(["export-demo", "flight", str(claims), "--gold", str(gold)]) == 0
        assert claims.exists() and gold.exists()
        assert main([
            "fuse", str(claims), "--method", "Vote", "--gold", str(gold)
        ]) == 0
        out = capsys.readouterr().out
        assert "precision=" in out
