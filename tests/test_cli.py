"""The repro.cli command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import write_claims_csv, write_gold_csv

from tests.helpers import build_dataset, build_gold


@pytest.fixture()
def claims_csv(tmp_path):
    ds = build_dataset({
        ("s1", "o1", "price"): 10.0,
        ("s2", "o1", "price"): 10.0,
        ("s3", "o1", "price"): 77.0,
    })
    path = tmp_path / "claims.csv"
    write_claims_csv(ds, path)
    return path


class TestMethodsCommand:
    def test_lists_all_sixteen(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 16
        assert "AccuCopy" in out


class TestFuseCommand:
    def test_fuse_prints_selection(self, claims_csv, capsys):
        assert main(["fuse", str(claims_csv), "--method", "Vote"]) == 0
        out = capsys.readouterr().out
        assert "o1" in out and "10.0" in out

    def test_fuse_writes_json(self, claims_csv, tmp_path, capsys):
        output = tmp_path / "result.json"
        assert main([
            "fuse", str(claims_csv), "--method", "AccuPr", "-o", str(output)
        ]) == 0
        payload = json.loads(output.read_text())
        assert payload["method"] == "AccuPr"
        assert payload["selected"]

    def test_fuse_scores_against_gold(self, claims_csv, tmp_path, capsys):
        gold_path = tmp_path / "gold.csv"
        write_gold_csv(build_gold({("o1", "price"): 10.0}), gold_path)
        assert main([
            "fuse", str(claims_csv), "--method", "Vote", "--gold", str(gold_path)
        ]) == 0
        out = capsys.readouterr().out
        assert "precision=1.0000" in out


class TestExportDemo:
    def test_round_trip_through_cli(self, tmp_path, capsys):
        claims = tmp_path / "demo.csv"
        gold = tmp_path / "demo_gold.csv"
        assert main(["export-demo", "flight", str(claims), "--gold", str(gold)]) == 0
        assert claims.exists() and gold.exists()
        assert main([
            "fuse", str(claims), "--method", "Vote", "--gold", str(gold)
        ]) == 0
        out = capsys.readouterr().out
        assert "precision=" in out
