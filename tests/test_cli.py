"""The repro.cli command-line interface."""

import http.client
import json
import socket
import threading
import time
import warnings

import pytest

from repro.cli import main
from repro.fusion import native
from repro.io import write_claims_csv, write_gold_csv

from tests.helpers import build_dataset, build_gold


@pytest.fixture()
def claims_csv(tmp_path):
    ds = build_dataset({
        ("s1", "o1", "price"): 10.0,
        ("s2", "o1", "price"): 10.0,
        ("s3", "o1", "price"): 77.0,
    })
    path = tmp_path / "claims.csv"
    write_claims_csv(ds, path)
    return path


class TestMethodsCommand:
    def test_lists_all_sixteen(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 16
        assert "AccuCopy" in out


class TestFuseCommand:
    def test_fuse_prints_selection(self, claims_csv, capsys):
        assert main(["fuse", str(claims_csv), "--method", "Vote"]) == 0
        out = capsys.readouterr().out
        assert "o1" in out and "10.0" in out

    def test_fuse_writes_json(self, claims_csv, tmp_path, capsys):
        output = tmp_path / "result.json"
        assert main([
            "fuse", str(claims_csv), "--method", "AccuPr", "-o", str(output)
        ]) == 0
        payload = json.loads(output.read_text())
        assert payload["method"] == "AccuPr"
        assert payload["selected"]

    def test_fuse_scores_against_gold(self, claims_csv, tmp_path, capsys):
        gold_path = tmp_path / "gold.csv"
        write_gold_csv(build_gold({("o1", "price"): 10.0}), gold_path)
        assert main([
            "fuse", str(claims_csv), "--method", "Vote", "--gold", str(gold_path)
        ]) == 0
        out = capsys.readouterr().out
        assert "precision=1.0000" in out


class TestFuseSolverFlags:
    def test_max_rounds_caps_iteration(self, claims_csv, tmp_path):
        output = tmp_path / "result.json"
        assert main([
            "fuse", str(claims_csv), "--method", "AccuPr",
            "--max-rounds", "1", "-o", str(output),
        ]) == 0
        payload = json.loads(output.read_text())
        assert payload["rounds"] == 1
        assert payload["converged"] is False

    def test_tolerance_is_wired_through(self, claims_csv, tmp_path):
        strict = tmp_path / "strict.json"
        loose = tmp_path / "loose.json"
        for path, tolerance in ((strict, "1e-12"), (loose, "0.5")):
            assert main([
                "fuse", str(claims_csv), "--method", "AccuPr",
                "--tolerance", tolerance, "-o", str(path),
            ]) == 0
        assert (
            json.loads(loose.read_text())["rounds"]
            <= json.loads(strict.read_text())["rounds"]
        )


class TestEngineFlag:
    """`--engine` / `REPRO_ENGINE` precedence and the no-numba fallback."""

    def _fuse(self, claims_csv, tmp_path, extra, name):
        output = tmp_path / name
        assert main([
            "fuse", str(claims_csv), "--method", "AccuPr",
            "-o", str(output),
        ] + extra) == 0
        return json.loads(output.read_text())

    def test_native_engine_matches_numpy(
        self, claims_csv, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(native, "FORCE", True)
        ref = self._fuse(claims_csv, tmp_path, ["--engine", "numpy"], "a.json")
        nat = self._fuse(claims_csv, tmp_path, ["--engine", "native"], "b.json")
        assert nat["selected"] == ref["selected"]
        assert nat["rounds"] == ref["rounds"]
        assert nat["converged"] == ref["converged"]

    def test_native_without_numba_warns_once_and_falls_back(
        self, claims_csv, tmp_path, monkeypatch
    ):
        if native.HAVE_NUMBA:
            pytest.skip("numba installed: the fallback path is unreachable")
        monkeypatch.setattr(native, "FORCE", False)
        monkeypatch.setattr(native, "_WARNED", False)
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            nat = self._fuse(
                claims_csv, tmp_path, ["--engine", "native"], "nat.json"
            )
        ref = self._fuse(claims_csv, tmp_path, ["--engine", "numpy"], "np.json")
        assert nat["selected"] == ref["selected"]
        assert nat["trust"] == ref["trust"]
        # One warning per process: a second native request stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            self._fuse(claims_csv, tmp_path, ["--engine", "native"], "c.json")

    def test_env_var_engages_native_when_flag_absent(
        self, claims_csv, tmp_path, monkeypatch
    ):
        if native.HAVE_NUMBA:
            pytest.skip("numba installed: no fallback warning to observe")
        monkeypatch.setenv("REPRO_ENGINE", "native")
        monkeypatch.setattr(native, "FORCE", False)
        monkeypatch.setattr(native, "_WARNED", False)
        # The warning is the proof the env var reached engine resolution.
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            self._fuse(claims_csv, tmp_path, [], "env.json")

    def test_engine_flag_overrides_env_var(
        self, claims_csv, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ENGINE", "native")
        monkeypatch.setattr(native, "FORCE", False)
        monkeypatch.setattr(native, "_WARNED", False)
        # --engine numpy never touches native resolution, so no fallback
        # warning can fire even though the env var asks for native.
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            self._fuse(claims_csv, tmp_path, ["--engine", "numpy"], "f.json")


class TestStreamCommand:
    @pytest.fixture()
    def stream_dir(self, tmp_path):
        directory = tmp_path / "days"
        directory.mkdir()
        for day, third in (("d1", 77.0), ("d2", 10.0)):
            ds = build_dataset({
                ("s1", "o1", "price"): 10.0,
                ("s2", "o1", "price"): 10.0,
                ("s3", "o1", "price"): third,
            }, day=day)
            write_claims_csv(ds, directory / f"{day}.csv")
        return directory

    def test_streams_days_in_order(self, stream_dir, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main([
            "stream", str(stream_dir), "--method", "Vote",
            "--output-dir", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "d1 Vote:" in out and "d2 Vote:" in out
        payload = json.loads((out_dir / "d2.Vote.json").read_text())
        assert payload["method"] == "Vote"
        assert payload["trust"]

    def test_sharded_stream_matches_unsharded(self, stream_dir, tmp_path, capsys):
        flat_dir, shard_dir = tmp_path / "flat", tmp_path / "shard"
        assert main([
            "stream", str(stream_dir), "--method", "Vote",
            "--output-dir", str(flat_dir),
        ]) == 0
        assert main([
            "stream", str(stream_dir), "--method", "Vote", "--shards", "2",
            "--output-dir", str(shard_dir),
        ]) == 0
        for day in ("d1", "d2"):
            a = json.loads((flat_dir / f"{day}.Vote.json").read_text())
            b = json.loads((shard_dir / f"{day}.Vote.json").read_text())
            assert a["selected"] == b["selected"], day
            assert a["trust"] == b["trust"], day

    def test_multiple_methods_and_cold_mode(self, stream_dir, capsys):
        assert main([
            "stream", str(stream_dir), "--method", "Vote",
            "--method", "AccuPr", "--cold", "--max-rounds", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "AccuPr" in out and "Vote" in out

    def test_empty_directory_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["stream", str(empty)]) == 1

    def test_missing_directory_fails(self, tmp_path):
        assert main(["stream", str(tmp_path / "nope")]) == 2


class TestServeAndQuery:
    @pytest.fixture()
    def richer_csv(self, tmp_path):
        ds = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 10.0,
            ("s3", "o1", "price"): 77.0,
            ("s1", "o2", "price"): 5.0,
            ("s2", "o2", "price"): 5.0,
            ("s1", "o3", "gate"): "A1",
            ("s3", "o3", "gate"): "A1",
        })
        path = tmp_path / "claims.csv"
        write_claims_csv(ds, path)
        return path

    def test_serve_then_query_without_resolving(self, richer_csv, tmp_path, capsys):
        store = tmp_path / "store.json"
        assert main([
            "serve", str(richer_csv), "--method", "Vote",
            "--method", "AccuSim", "--store", str(store),
        ]) == 0
        assert store.exists()
        assert main([
            "query", str(store), "--object", "o1", "--attribute", "price",
        ]) == 0
        out = capsys.readouterr().out
        assert "10.0" in out and "Vote" in out
        assert main([
            "query", str(store), "--object", "o1", "--attribute", "price",
            "--method", "AccuSim",
        ]) == 0
        assert main([
            "query", str(store), "--object", "o3", "--attribute", "gate",
            "--ensemble",
        ]) == 0
        assert "Ensemble" in capsys.readouterr().out

    def test_query_trust_and_stats(self, richer_csv, tmp_path, capsys):
        store = tmp_path / "store.json"
        assert main(["serve", str(richer_csv), "--store", str(store)]) == 0
        assert main(["query", str(store), "--trust", "s1"]) == 0
        assert "s1" in capsys.readouterr().out
        assert main(["query", str(store)]) == 0
        out = capsys.readouterr().out
        assert "version 1" in out and "AccuSim" in out

    def test_query_misses_exit_nonzero(self, richer_csv, tmp_path, capsys):
        store = tmp_path / "store.json"
        assert main(["serve", str(richer_csv), "--store", str(store)]) == 0
        assert main([
            "query", str(store), "--object", "o9", "--attribute", "price",
        ]) == 1
        assert main(["query", str(store), "--trust", "ghost"]) == 1

    def test_query_rejects_partial_lookup_args(self, richer_csv, tmp_path, capsys):
        store = tmp_path / "store.json"
        assert main(["serve", str(richer_csv), "--store", str(store)]) == 0
        assert main(["query", str(store), "--object", "o1"]) == 2
        assert main(["query", str(store), "--attribute", "price"]) == 2
        assert main(["query", str(store), "--ensemble"]) == 2

    def test_query_reports_unreadable_store_cleanly(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "nope.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["query", str(bad)]) == 2
        assert "cannot read store" in capsys.readouterr().err

    def test_query_trust_distinguishes_unknown_method(
        self, richer_csv, tmp_path, capsys
    ):
        store = tmp_path / "store.json"
        assert main(["serve", str(richer_csv), "--store", str(store)]) == 0
        assert main([
            "query", str(store), "--trust", "s1", "--method", "Nope",
        ]) == 1
        assert "not published" in capsys.readouterr().err

    def test_sharded_serve_matches_unsharded(self, richer_csv, tmp_path, capsys):
        flat, sharded = tmp_path / "flat.json", tmp_path / "sharded.json"
        assert main(["serve", str(richer_csv), "--store", str(flat)]) == 0
        assert main([
            "serve", str(richer_csv), "--store", str(sharded), "--shards", "2",
        ]) == 0
        a = json.loads(flat.read_text())
        b = json.loads(sharded.read_text())
        assert a["truths"] == b["truths"]
        assert a["trust"] == b["trust"]

    def test_approximate_sharded_serve_covers_all_items(
        self, richer_csv, tmp_path, capsys
    ):
        store = tmp_path / "store.json"
        assert main([
            "serve", str(richer_csv), "--store", str(store),
            "--shards", "2", "--approximate",
        ]) == 0
        payload = json.loads(store.read_text())
        assert len(payload["truths"]) == 3

    def test_serve_directory_versions_per_day(self, tmp_path, capsys):
        days = tmp_path / "days"
        days.mkdir()
        for index, value in enumerate((10.0, 11.0)):
            ds = build_dataset(
                {
                    ("s1", "o1", "price"): value,
                    ("s2", "o1", "price"): value,
                },
                day=f"d{index}",
            )
            write_claims_csv(ds, days / f"0{index}.csv")
        store = tmp_path / "store.json"
        assert main(["serve", str(days), "--store", str(store)]) == 0
        payload = json.loads(store.read_text())
        assert payload["version"] == 2
        assert payload["day"] == "d1"
        assert main([
            "query", str(store), "--object", "o1", "--attribute", "price",
        ]) == 0
        assert "11.0" in capsys.readouterr().out

    def test_sharded_stream_serve_round_trip(self, tmp_path, capsys):
        """`serve --shards K --stream` on a day directory == unsharded serve."""
        days = tmp_path / "days"
        days.mkdir()
        for index, (first, third) in enumerate(((10.0, 77.0), (10.0, 10.0))):
            ds = build_dataset(
                {
                    ("s1", "o1", "price"): first,
                    ("s2", "o1", "price"): first,
                    ("s3", "o1", "price"): third,
                    ("s1", "o2", "price"): 5.0,
                    ("s2", "o2", "price"): 5.0,
                    ("s1", "o3", "gate"): "A1",
                    ("s3", "o3", "gate"): "A1",
                },
                day=f"d{index}",
            )
            write_claims_csv(ds, days / f"0{index}.csv")
        flat, sharded = tmp_path / "flat.json", tmp_path / "sharded.json"
        assert main([
            "serve", str(days), "--method", "Vote", "--method", "AccuSim",
            "--store", str(flat),
        ]) == 0
        assert main([
            "serve", str(days), "--method", "Vote", "--method", "AccuSim",
            "--store", str(sharded), "--shards", "2", "--stream",
        ]) == 0
        a = json.loads(flat.read_text())
        b = json.loads(sharded.read_text())
        assert b["version"] == 2 and b["day"] == "d1"
        assert a["truths"] == b["truths"]
        assert a["trust"] == b["trust"]
        assert main([
            "query", str(sharded), "--object", "o1", "--attribute", "price",
        ]) == 0
        assert "10.0" in capsys.readouterr().out

    def test_stream_flag_requires_a_directory(self, richer_csv, tmp_path, capsys):
        assert main([
            "serve", str(richer_csv), "--stream",
            "--store", str(tmp_path / "s.json"),
        ]) == 2
        assert "--stream" in capsys.readouterr().err

    def test_approximate_requires_shards(self, richer_csv, tmp_path, capsys):
        assert main([
            "serve", str(richer_csv), "--approximate",
            "--store", str(tmp_path / "s.json"),
        ]) == 2
        assert "--shards" in capsys.readouterr().err
        days = tmp_path / "d"
        days.mkdir()
        assert main(["stream", str(days), "--approximate"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_serve_rejects_missing_source(self, tmp_path):
        assert main([
            "serve", str(tmp_path / "nope.csv"), "--store",
            str(tmp_path / "s.json"),
        ]) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([
            "serve", str(empty), "--store", str(tmp_path / "s.json"),
        ]) == 1


class TestServeListen:
    """`serve --listen`: the CLI front door to the asyncio server."""

    def _free_port(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def _get(self, port, path, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
        try:
            conn.request("GET", path, headers=headers or {})
            response = conn.getresponse()
            body = response.read()
            return response.status, json.loads(body) if body else None
        finally:
            conn.close()

    def _wait_for_version(self, port, version, headers=None, timeout=10):
        deadline = time.time() + timeout
        while time.time() < deadline:
            try:
                status, body = self._get(port, "/health", headers=headers)
                if status == 200 and body["version"] >= version:
                    return body
            except OSError:
                pass
            time.sleep(0.02)
        raise AssertionError(f"server never reached version {version}")

    def _serve_in_thread(self, argv):
        result = {}

        def run():
            result["code"] = main(argv)

        thread = threading.Thread(target=run)
        thread.start()
        return thread, result

    def test_listen_serves_days_live_then_exits(self, tmp_path):
        days = tmp_path / "days"
        days.mkdir()
        for index, value in enumerate((10.0, 11.0)):
            ds = build_dataset(
                {
                    ("s1", "o1", "price"): value,
                    ("s2", "o1", "price"): value,
                },
                day=f"d{index}",
            )
            write_claims_csv(ds, days / f"0{index}.csv")
        port = self._free_port()
        store = tmp_path / "store.json"
        thread, result = self._serve_in_thread([
            "serve", str(days), "--method", "Vote",
            "--store", str(store),
            "--listen", f"127.0.0.1:{port}",
            "--listen-for", "1.5", "--no-request-log",
        ])
        try:
            health = self._wait_for_version(port, 2)
            assert health["day"] == "d1"
            status, body = self._get(
                port, "/lookup?object=o1&attribute=price"
            )
            assert status == 200
            assert body["value"] == 11.0 and body["version"] == 2
        finally:
            thread.join(15)
        assert result["code"] == 0
        assert json.loads(store.read_text())["version"] == 2

    def test_listen_serves_prebuilt_store_json(self, claims_csv, tmp_path):
        store = tmp_path / "store.json"
        assert main([
            "serve", str(claims_csv), "--method", "Vote",
            "--store", str(store),
        ]) == 0
        port = self._free_port()
        thread, result = self._serve_in_thread([
            "serve", str(store),
            "--listen", f"127.0.0.1:{port}",
            "--listen-for", "1.5", "--no-request-log",
            "--auth-token", "sekret",
        ])
        try:
            headers = {"Authorization": "Bearer sekret"}
            self._wait_for_version(port, 1, headers=headers)
            status, _ = self._get(port, "/lookup?object=o1&attribute=price")
            assert status == 401  # token required off the /health path
            status, body = self._get(
                port, "/lookup?object=o1&attribute=price", headers=headers
            )
            assert status == 200 and body["value"] == 10.0
        finally:
            thread.join(15)
        assert result["code"] == 0

    def test_store_json_without_listen_is_an_error(self, claims_csv, tmp_path, capsys):
        store = tmp_path / "store.json"
        assert main([
            "serve", str(claims_csv), "--store", str(store),
        ]) == 0
        assert main(["serve", str(store)]) == 2
        assert "--listen" in capsys.readouterr().err

    def test_listen_rejects_malformed_addresses(self, claims_csv, tmp_path, capsys):
        store = tmp_path / "s.json"
        for bad in ("notaport", "127.0.0.1:notaport", "127.0.0.1:99999"):
            assert main([
                "serve", str(claims_csv), "--store", str(store),
                "--listen", bad,
            ]) == 2
            assert "--listen expects" in capsys.readouterr().err


class TestExportDemo:
    def test_round_trip_through_cli(self, tmp_path, capsys):
        claims = tmp_path / "demo.csv"
        gold = tmp_path / "demo_gold.csv"
        assert main(["export-demo", "flight", str(claims), "--gold", str(gold)]) == 0
        assert claims.exists() and gold.exists()
        assert main([
            "fuse", str(claims), "--method", "Vote", "--gold", str(gold)
        ]) == 0
        out = capsys.readouterr().out
        assert "precision=" in out
