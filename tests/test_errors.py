"""Exception hierarchy: everything library-raised derives from ReproError."""

import pytest

from repro.errors import (
    ConfigError,
    ConvergenceError,
    FusionError,
    GoldStandardError,
    ReproError,
    SchemaError,
    ValueParseError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (SchemaError, ValueParseError, ConfigError, FusionError,
                    ConvergenceError, GoldStandardError):
            assert issubclass(exc, ReproError)

    def test_convergence_is_fusion_error(self):
        assert issubclass(ConvergenceError, FusionError)

    def test_single_catch_all(self):
        with pytest.raises(ReproError):
            raise ValueParseError("x")


class TestRaisedTypes:
    def test_schema_errors_from_core(self):
        from repro.core.attributes import AttributeSpec
        with pytest.raises(SchemaError):
            AttributeSpec("")

    def test_parse_errors_from_normalize(self):
        from repro.normalize.numbers import parse_number
        with pytest.raises(ValueParseError):
            parse_number("not a number")

    def test_config_errors_from_datagen(self):
        from repro.datagen.stock import StockWorld
        with pytest.raises(ConfigError):
            StockWorld(n_objects=1)

    def test_fusion_errors_from_registry(self):
        from repro.fusion.registry import make_method
        with pytest.raises(FusionError):
            make_method("NotAMethod")

    def test_gold_errors_from_core(self):
        from repro.core.gold import GoldStandard
        from repro.core.records import DataItem
        from tests.helpers import build_dataset
        gold = GoldStandard(domain="t")
        ds = build_dataset({("s", "o", "price"): 1.0})
        with pytest.raises(GoldStandardError):
            gold.is_correct(ds, DataItem("o", "price"), 1.0)
