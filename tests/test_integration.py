"""End-to-end shape tests: the paper's headline findings hold on the
generated collections (small scale, calibrated seeds)."""

import pytest

from repro.datagen import (
    FlightConfig,
    StockConfig,
    generate_flight_collection,
    generate_stock_collection,
)
from repro.evaluation.metrics import evaluate
from repro.fusion.base import FusionProblem
from repro.fusion.registry import make_method


@pytest.fixture(scope="module")
def stock():
    collection = generate_stock_collection(
        StockConfig(n_objects=200, num_days=5, n_gold_objects=100)
    )
    return collection, FusionProblem(collection.snapshot)


@pytest.fixture(scope="module")
def flight():
    collection = generate_flight_collection(
        FlightConfig(n_objects=300, num_days=8, n_gold_objects=100)
    )
    return collection, FusionProblem(collection.snapshot)


def _precision(collection, problem, name):
    result = make_method(name).run(problem)
    return evaluate(collection.snapshot, collection.gold, result).precision


class TestPaperHeadlines:
    def test_vote_precision_bands(self, stock, flight):
        """Dominant values are ~.9 right on Stock, lower on Flight (Sec 3.2)."""
        stock_vote = _precision(*stock, "Vote")
        flight_vote = _precision(*flight, "Vote")
        assert 0.85 <= stock_vote <= 0.97
        assert 0.75 <= flight_vote <= 0.92

    def test_removing_copiers_helps_vote(self, stock, flight):
        """Section 3.4: dropping copier sources raises dominant precision."""
        for collection, _problem in (stock, flight):
            snapshot, gold = collection.snapshot, collection.gold
            reduced = snapshot.without_sources(collection.copier_ids())
            before = evaluate(
                snapshot, gold, make_method("Vote").run(FusionProblem(snapshot))
            ).precision
            after = evaluate(
                reduced, gold, make_method("Vote").run(FusionProblem(reduced))
            ).precision
            assert after >= before

    def test_accucopy_best_on_flight(self, flight):
        """Section 4.2: copy-aware fusion wins the Flight domain."""
        accucopy = _precision(*flight, "AccuCopy")
        vote = _precision(*flight, "Vote")
        accupr = _precision(*flight, "AccuPr")
        assert accucopy > vote
        assert accucopy >= accupr

    def test_popaccu_beats_accupr_on_flight(self, flight):
        """Popular (copied) false values are discounted by POPACCU."""
        assert _precision(*flight, "PopAccu") >= _precision(*flight, "AccuPr")

    def test_attr_trust_helps_stock(self, stock):
        """Section 4.2: per-attribute trust is the Stock winner."""
        attr = _precision(*stock, "AccuFormatAttr")
        vote = _precision(*stock, "Vote")
        assert attr >= vote

    def test_fusion_finds_most_truths_everywhere(self, stock, flight):
        """'Finding correct values for 96% data items on average' (Sec 1)."""
        best_stock = max(
            _precision(*stock, n) for n in ("AccuFormatAttr", "AccuCopy")
        )
        best_flight = max(
            _precision(*flight, n) for n in ("PopAccu", "AccuCopy")
        )
        assert (best_stock + best_flight) / 2 > 0.9


class TestDeterminism:
    def test_collections_reproducible(self):
        a = generate_stock_collection(StockConfig.tiny())
        b = generate_stock_collection(StockConfig.tiny())
        assert a.snapshot.num_claims == b.snapshot.num_claims
        items = list(a.snapshot.items)[:50]
        for item in items:
            assert {
                s: c.value for s, c in a.snapshot.claims_on(item).items()
            } == {s: c.value for s, c in b.snapshot.claims_on(item).items()}
