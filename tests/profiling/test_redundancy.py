"""Redundancy measures (Figures 2-3)."""

import pytest

from repro.profiling.redundancy import (
    redundancy_profile,
    source_item_coverage,
    source_object_coverage,
)

from tests.helpers import build_dataset


@pytest.fixture()
def dataset():
    return build_dataset({
        ("s1", "o1", "price"): 1.0,
        ("s2", "o1", "price"): 1.0,
        ("s1", "o2", "price"): 2.0,
    })


class TestRedundancyProfile:
    def test_object_redundancy(self, dataset):
        profile = redundancy_profile(dataset)
        assert profile.object_redundancy["o1"] == pytest.approx(1.0)
        assert profile.object_redundancy["o2"] == pytest.approx(0.5)

    def test_item_redundancy_values(self, dataset):
        profile = redundancy_profile(dataset)
        assert sorted(profile.item_redundancy_values) == [0.5, 1.0]

    def test_means(self, dataset):
        profile = redundancy_profile(dataset)
        assert profile.mean_object_redundancy == pytest.approx(0.75)
        assert profile.mean_item_redundancy == pytest.approx(0.75)

    def test_ccdf_monotone_nonincreasing(self, dataset):
        profile = redundancy_profile(dataset)
        for ccdf in (profile.object_ccdf(), profile.item_ccdf()):
            assert all(a >= b for a, b in zip(ccdf, ccdf[1:]))

    def test_ccdf_strict_threshold(self, dataset):
        profile = redundancy_profile(dataset)
        ccdf = profile.item_ccdf([0.0, 0.5, 1.0])
        # redundancies are {1.0, 0.5}: above 0 -> both; above .5 -> one
        assert ccdf == [1.0, 0.5, 0.0]


class TestSourceCoverage:
    def test_object_coverage(self, dataset):
        coverage = source_object_coverage(dataset)
        assert coverage["s1"] == pytest.approx(1.0)
        assert coverage["s2"] == pytest.approx(0.5)

    def test_item_coverage(self, dataset):
        coverage = source_item_coverage(dataset)
        assert coverage["s1"] == pytest.approx(1.0)
        assert coverage["s2"] == pytest.approx(0.5)


class TestOnGenerated:
    def test_stock_redundancy_higher_than_flight(
        self, stock_snapshot, flight_snapshot
    ):
        stock = redundancy_profile(stock_snapshot).mean_item_redundancy
        flight = redundancy_profile(flight_snapshot).mean_item_redundancy
        assert stock > flight  # the paper's headline comparison
