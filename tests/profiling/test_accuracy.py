"""Source accuracy over time (Figure 8, Table 4)."""

import pytest

from repro.core.dataset import DatasetSeries
from repro.profiling.accuracy import (
    accuracy_over_time,
    accuracy_profile,
    dominant_precision_over_time,
)

from tests.helpers import build_dataset, build_gold


@pytest.fixture()
def snapshot_and_gold():
    ds = build_dataset({
        ("good", "o1", "price"): 10.0,
        ("good", "o2", "price"): 20.0,
        ("bad", "o1", "price"): 99.0,
        ("bad", "o2", "price"): 20.0,
    })
    gold = build_gold({("o1", "price"): 10.0, ("o2", "price"): 20.0})
    return ds, gold


class TestAccuracyProfile:
    def test_rows(self, snapshot_and_gold):
        ds, gold = snapshot_and_gold
        profile = accuracy_profile(ds, gold)
        assert profile.rows["good"].accuracy == pytest.approx(1.0)
        assert profile.rows["bad"].accuracy == pytest.approx(0.5)
        assert profile.rows["good"].coverage == pytest.approx(1.0)

    def test_mean_and_fractions(self, snapshot_and_gold):
        ds, gold = snapshot_and_gold
        profile = accuracy_profile(ds, gold)
        assert profile.mean_accuracy == pytest.approx(0.75)
        assert profile.fraction_above(0.9) == pytest.approx(0.5)
        assert profile.fraction_below(0.7) == pytest.approx(0.5)

    def test_histogram_sums_to_one(self, snapshot_and_gold):
        ds, gold = snapshot_and_gold
        histogram = accuracy_profile(ds, gold).histogram()
        assert sum(histogram.values()) == pytest.approx(1.0)

    def test_source_filter(self, snapshot_and_gold):
        ds, gold = snapshot_and_gold
        profile = accuracy_profile(ds, gold, ["good"])
        assert list(profile.rows) == ["good"]


class TestOverTime:
    def _series(self):
        series = DatasetSeries(domain="test")
        gold_by_day = {}
        for day, bad_value in (("d0", 99.0), ("d1", 10.0), ("d2", 99.0)):
            ds = build_dataset(
                {
                    ("good", "o1", "price"): 10.0,
                    ("bad", "o1", "price"): bad_value,
                },
                day=day,
            )
            series.add(ds)
            gold_by_day[day] = build_gold({("o1", "price"): 10.0})
        return series, gold_by_day

    def test_deviation_zero_for_steady_source(self):
        series, gold = self._series()
        over_time = accuracy_over_time(series, gold)
        assert over_time.deviation_of("good") == pytest.approx(0.0)
        assert over_time.deviation_of("bad") > 0.2

    def test_fraction_steady(self):
        series, gold = self._series()
        over_time = accuracy_over_time(series, gold)
        assert over_time.fraction_steady(0.05) == pytest.approx(0.5)

    def test_dominant_precision_over_time(self):
        series, gold = self._series()
        by_day = dominant_precision_over_time(series, gold)
        assert set(by_day) == {"d0", "d1", "d2"}
        assert all(0 <= v <= 1 for v in by_day.values())


class TestOnGenerated:
    def test_volatile_sources_exist(self, stock_collection):
        over_time = accuracy_over_time(
            stock_collection.series, stock_collection.gold_by_day
        )
        deviations = over_time.deviations()
        assert deviations
        assert max(deviations.values()) > min(deviations.values())
