"""Inconsistency-reason attribution (Figure 6)."""

import pytest

from repro.core.records import Claim, DataItem, ErrorReason, SourceMeta
from repro.core.attributes import AttributeSpec, AttributeTable
from repro.core.dataset import Dataset
from repro.profiling.reasons import (
    classify_item_reason,
    reason_breakdown,
    sampled_reason_breakdown,
)


def _tagged_dataset():
    table = AttributeTable.from_specs([AttributeSpec("price")])
    ds = Dataset(domain="t", day="d", attributes=table)
    for sid in ("a", "b", "c", "d"):
        ds.add_source(SourceMeta(sid))
    item = DataItem("o1", "price")
    ds.add_claim("a", item, Claim(10.0))
    ds.add_claim("b", item, Claim(10.0))
    ds.add_claim("c", item, Claim(99.0, reason=ErrorReason.OUT_OF_DATE))
    ds.add_claim("d", item, Claim(55.0, reason=ErrorReason.PURE_ERROR))
    # consistent item: no reason
    item2 = DataItem("o2", "price")
    ds.add_claim("a", item2, Claim(20.0))
    ds.add_claim("b", item2, Claim(20.0))
    return ds.freeze()


class TestClassifyItem:
    def test_minority_reason_wins(self):
        ds = _tagged_dataset()
        # two minority claims with different reasons: tie broken by count
        reason = classify_item_reason(ds, DataItem("o1", "price"))
        assert reason in (ErrorReason.OUT_OF_DATE, ErrorReason.PURE_ERROR)

    def test_consistent_item_is_none(self):
        ds = _tagged_dataset()
        assert classify_item_reason(ds, DataItem("o2", "price")) is None

    def test_copied_folds_into_underlying_reason(self):
        table = AttributeTable.from_specs([AttributeSpec("price")])
        ds = Dataset(domain="t", day="d", attributes=table)
        for sid in ("a", "b", "w1", "w2", "w3"):
            ds.add_source(SourceMeta(sid))
        item = DataItem("o1", "price")
        ds.add_claim("a", item, Claim(10.0))
        ds.add_claim("b", item, Claim(10.0))
        ds.add_claim("w1", item, Claim(99.0, reason=ErrorReason.OUT_OF_DATE))
        ds.add_claim("w2", item, Claim(99.0, reason=ErrorReason.COPIED))
        ds.add_claim("w3", item, Claim(99.0, reason=ErrorReason.COPIED))
        ds.freeze()
        assert classify_item_reason(ds, item) is ErrorReason.OUT_OF_DATE


class TestBreakdown:
    def test_shares_sum_to_one(self):
        ds = _tagged_dataset()
        breakdown = reason_breakdown(ds)
        assert breakdown.num_inconsistent_items == 1
        assert sum(breakdown.shares().values()) == pytest.approx(1.0)

    def test_sampling_scheme_runs(self, stock_snapshot):
        breakdown = sampled_reason_breakdown(stock_snapshot)
        assert breakdown.num_inconsistent_items > 0


class TestOnGenerated:
    def test_stock_semantics_dominates(self, stock_snapshot):
        """The paper's Figure 6: semantics ambiguity is the top Stock cause."""
        shares = reason_breakdown(stock_snapshot).shares()
        assert shares.get(ErrorReason.SEMANTICS_AMBIGUITY, 0) == max(shares.values())

    def test_flight_has_no_unit_errors(self, flight_snapshot):
        shares = reason_breakdown(flight_snapshot).shares()
        assert ErrorReason.UNIT_ERROR not in shares
