"""Value-consistency measures (Table 3, Figure 4)."""

import pytest

from repro.profiling.consistency import (
    consistency_profile,
    rank_attributes,
)

from tests.helpers import build_dataset


@pytest.fixture()
def dataset():
    return build_dataset({
        # price: full agreement on o1; split on o2
        ("s1", "o1", "price"): 10.0,
        ("s2", "o1", "price"): 10.0,
        ("s1", "o2", "price"): 20.0,
        ("s2", "o2", "price"): 30.0,
        # gate: always split three ways
        ("s1", "o1", "gate"): "A1",
        ("s2", "o1", "gate"): "B2",
        ("s3", "o1", "gate"): "C3",
    })


class TestConsistencyProfile:
    def test_per_item_counts(self, dataset):
        profile = consistency_profile(dataset)
        by_item = {r.item: r for r in profile.per_item}
        from repro.core.records import DataItem
        assert by_item[DataItem("o1", "price")].num_values == 1
        assert by_item[DataItem("o2", "price")].num_values == 2
        assert by_item[DataItem("o1", "gate")].num_values == 3

    def test_fraction_single_value(self, dataset):
        assert consistency_profile(dataset).fraction_single_value() == pytest.approx(1 / 3)

    def test_histograms_sum_to_one(self, dataset):
        profile = consistency_profile(dataset)
        assert sum(profile.num_values_histogram().values()) == pytest.approx(1.0)
        assert sum(profile.entropy_histogram().values()) == pytest.approx(1.0)

    def test_exclude_sources(self, dataset):
        profile = consistency_profile(dataset, exclude_sources=["s2"])
        # without s2, o2/price has a single value
        assert profile.fraction_single_value() > 1 / 3

    def test_string_items_have_no_deviation(self, dataset):
        profile = consistency_profile(dataset)
        gates = [r for r in profile.per_item if r.item.attribute == "gate"]
        assert all(r.deviation is None for r in gates)


class TestRanking:
    def test_gate_is_most_inconsistent(self, dataset):
        profile = consistency_profile(dataset)
        ranking = rank_attributes(profile, "num_values", top=1)
        assert ranking.highest[0].attribute == "gate"
        assert ranking.lowest[0].attribute == "price"

    def test_unknown_measure_rejected(self, dataset):
        with pytest.raises(ValueError):
            rank_attributes(consistency_profile(dataset), "bogus")


class TestOnGenerated:
    def test_statistical_attrs_more_inconsistent(self, stock_snapshot):
        profile = consistency_profile(stock_snapshot)
        per_attr = profile.by_attribute()
        # The paper's signature: real-time attributes (Previous close) are
        # far more consistent than statistical ones (P/E).
        assert (
            per_attr["Previous close"].mean_entropy
            < per_attr["P/E"].mean_entropy
        )

    def test_excluding_stale_source_reduces_inconsistency(self, stock_snapshot):
        full = consistency_profile(stock_snapshot)
        reduced = consistency_profile(stock_snapshot, exclude_sources=["stocksmart"])
        assert reduced.mean_num_values <= full.mean_num_values
