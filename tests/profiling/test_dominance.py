"""Dominance-factor analysis (Figure 7)."""

import pytest

from repro.profiling.dominance import (
    DOMINANCE_BUCKETS,
    dominance_bucket,
    dominance_profile,
    top_k_value_precision,
)

from tests.helpers import build_dataset, build_gold


class TestDominanceBucket:
    def test_bucket_centers(self):
        assert dominance_bucket(0.08) == 0.1
        assert dominance_bucket(0.5) == 0.5
        assert dominance_bucket(0.54) == 0.5
        assert dominance_bucket(0.56) == 0.6
        assert dominance_bucket(1.0) == 0.9

    def test_all_buckets_reachable(self):
        seen = {dominance_bucket(x / 100) for x in range(5, 101)}
        assert seen == set(DOMINANCE_BUCKETS)


@pytest.fixture()
def scenario():
    ds = build_dataset({
        # o1: 3/4 dominance, dominant value correct
        ("s1", "o1", "price"): 10.0,
        ("s2", "o1", "price"): 10.0,
        ("s3", "o1", "price"): 10.0,
        ("s4", "o1", "price"): 99.0,
        # o2: 1/2 dominance (tie), dominant (smaller) value wrong
        ("s1", "o2", "price"): 555.0,
        ("s2", "o2", "price"): 20.0,
    })
    gold = build_gold({("o1", "price"): 10.0, ("o2", "price"): 20.0})
    return ds, gold


class TestDominanceProfile:
    def test_factors(self, scenario):
        ds, gold = scenario
        profile = dominance_profile(ds, gold)
        values = sorted(profile.factors.values())
        assert values == [pytest.approx(0.5), pytest.approx(0.75)]

    def test_distribution_sums_to_one(self, scenario):
        ds, gold = scenario
        dist = dominance_profile(ds, gold).distribution()
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_overall_precision(self, scenario):
        ds, gold = scenario
        profile = dominance_profile(ds, gold)
        # o1 right (10.0), o2's dominant (tie -> 20.0 smaller? 20.0 < 555.0)
        # 20.0 is the representative with smaller value -> correct
        assert 0.0 <= profile.overall_precision() <= 1.0

    def test_fraction_with_factor(self, scenario):
        ds, gold = scenario
        profile = dominance_profile(ds, gold)
        assert profile.fraction_with_factor_at_least(0.7) == pytest.approx(0.5)

    def test_without_gold_no_precision(self, scenario):
        ds, _gold = scenario
        profile = dominance_profile(ds, gold=None)
        assert profile.precision_by_bucket == {}
        assert len(profile.factors) == 2


class TestTopK:
    def test_second_value_precision(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 99.0,
            ("s2", "o1", "price"): 99.0,
            ("s3", "o1", "price"): 10.0,
        })
        gold = build_gold({("o1", "price"): 10.0})
        first, n1 = top_k_value_precision(ds, gold, 1)
        second, n2 = top_k_value_precision(ds, gold, 2)
        assert (first, n1) == (0.0, 1)
        assert (second, n2) == (1.0, 1)

    def test_max_factor_filter(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 10.0,
        })
        gold = build_gold({("o1", "price"): 10.0})
        _, n = top_k_value_precision(ds, gold, 1, max_factor=0.5)
        assert n == 0  # fully dominant item filtered out


class TestOnGenerated:
    def test_precision_rises_with_dominance(self, stock_snapshot, stock_gold):
        profile = dominance_profile(stock_snapshot, stock_gold)
        curve = profile.precision_curve()
        high = curve.get(0.9)
        assert high is not None and high > 0.9  # the paper's Figure 7 shape
