"""Copy-group commonality measures (Table 5)."""

import pytest

from repro.profiling.copying_stats import all_copy_group_stats, copy_group_stats

from tests.helpers import build_dataset, build_gold


@pytest.fixture()
def mirrored():
    return build_dataset({
        ("orig", "o1", "price"): 10.0,
        ("orig", "o2", "price"): 20.0,
        ("mirror", "o1", "price"): 10.0,
        ("mirror", "o2", "price"): 20.0,
        ("other", "o1", "gate"): "A1",
    })


class TestCopyGroupStats:
    def test_perfect_mirror(self, mirrored):
        stats = copy_group_stats(mirrored, ["orig", "mirror"])
        assert stats.schema_similarity == pytest.approx(1.0)
        assert stats.object_similarity == pytest.approx(1.0)
        assert stats.value_similarity == pytest.approx(1.0)

    def test_disjoint_schemas(self, mirrored):
        stats = copy_group_stats(mirrored, ["orig", "other"])
        assert stats.schema_similarity == pytest.approx(0.0)
        assert stats.object_similarity == pytest.approx(0.5)

    def test_average_accuracy_with_gold(self, mirrored):
        gold = build_gold({("o1", "price"): 10.0, ("o2", "price"): 99.0})
        stats = copy_group_stats(mirrored, ["orig", "mirror"], gold)
        assert stats.average_accuracy == pytest.approx(0.5)

    def test_all_groups_sorted_by_size(self, mirrored):
        rows = all_copy_group_stats(
            mirrored, [["orig", "mirror"], ["orig", "mirror", "other"]]
        )
        assert [r.size for r in rows] == [3, 2]


class TestOnGenerated:
    def test_generated_groups_are_near_identical(self, stock_snapshot,
                                                 stock_collection):
        rows = all_copy_group_stats(
            stock_snapshot,
            stock_collection.true_copy_groups(),
            stock_collection.gold,
        )
        assert rows, "stock collection must have copy groups"
        for row in rows:
            assert row.value_similarity > 0.95  # Table 5: .99-1.0
            assert row.object_similarity > 0.9
