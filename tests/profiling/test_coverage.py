"""Attribute-coverage statistics (Figure 1, Table 1 schema counts)."""

import pytest

from repro.profiling.coverage import (
    attribute_coverage,
    build_schema_matcher,
    schema_match_statistics,
)


class TestAttributeCoverage:
    def test_provider_counts(self, stock_collection):
        profile = attribute_coverage(stock_collection.profiles)
        # Every considered Stock attribute has at least one provider.
        assert profile.providers_per_attribute["Last price"] > 40
        assert profile.num_sources == 55

    def test_series_monotone(self, stock_collection):
        profile = attribute_coverage(stock_collection.profiles)
        series = profile.series()
        assert all(a >= b for a, b in zip(series, series[1:]))

    def test_zipf_tail(self, stock_collection):
        """Figure 1's headline: most attributes are sparsely provided."""
        profile = attribute_coverage(stock_collection.profiles)
        assert profile.fraction_below_quarter() > 0.5

    def test_flight_popular_attrs(self, flight_collection):
        profile = attribute_coverage(flight_collection.profiles)
        over_half = profile.fraction_above(19)  # > half of 38 sources
        assert 0.0 < over_half < 1.0


class TestSchemaStatistics:
    def test_local_exceeds_global(self, stock_collection):
        stats = schema_match_statistics(stock_collection.profiles)
        assert stats["local"] > stats["global"]

    def test_matcher_resolves_all_locals(self, flight_collection):
        matcher = build_schema_matcher(flight_collection.profiles)
        for profile in flight_collection.profiles:
            for attribute in profile.effective_schema():
                local = profile.local_label(attribute)
                assert matcher.resolve(local) == attribute
