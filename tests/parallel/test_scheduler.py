"""Determinism and hygiene of the shared-memory solve scheduler.

The hard guarantees of the parallel engine: every registered method
produces bit-identical selections and trust (within 1e-12) under
``workers=4`` versus serial — on the full problem, on a
``restrict_sources`` sweep, and on a streaming day — and no shared-memory
segments survive pool shutdown, even after a worker crash.
"""

import os
import signal
import threading

import pytest

from repro.evaluation.ordering import recall_as_sources_added, sources_by_recall
from repro.fusion.registry import METHOD_NAMES, make_method
from repro.parallel import MethodCall, SolveJob, SolveScheduler, solve_methods

#: Worker-pool width of the determinism tests.  CI overrides this to match
#: the runner's cores (``REPRO_TEST_WORKERS=2`` on the hosted 2-core VMs),
#: validating the scaling configuration on real multi-core hardware.
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "4"))

pytestmark = pytest.mark.skipif(
    not SolveScheduler(workers=2).parallel,
    reason="platform has no usable shared memory",
)


@pytest.fixture(scope="module")
def stock():
    from repro.experiments.context import get_context

    return get_context("tiny").collection("stock")


@pytest.fixture(scope="module")
def problem(stock):
    from repro.experiments.context import get_context

    return get_context("tiny").problem("stock")


@pytest.fixture(scope="module")
def scheduler():
    with SolveScheduler(workers=WORKERS) as sched:
        yield sched


def _attachable(segment: str) -> bool:
    from multiprocessing import shared_memory

    try:
        handle = shared_memory.SharedMemory(name=segment)
    except FileNotFoundError:
        return False
    handle.close()
    return True


class TestParallelDeterminism:
    def test_all_sixteen_methods_match_serial(self, problem, scheduler):
        serial = {name: make_method(name).run(problem) for name in METHOD_NAMES}
        outcomes = solve_methods(
            problem, list(METHOD_NAMES), scheduler=scheduler, key="full"
        )
        for name, outcome in zip(METHOD_NAMES, outcomes):
            reference = serial[name]
            assert outcome.result.selected == reference.selected, name
            assert outcome.result.rounds == reference.rounds, name
            assert outcome.result.converged == reference.converged, name
            for source, trust in reference.trust.items():
                assert outcome.result.trust[source] == pytest.approx(
                    trust, abs=1e-12
                ), (name, source)
            if reference.attr_trust is not None:
                for cell, trust in reference.attr_trust.items():
                    assert outcome.result.attr_trust[cell] == pytest.approx(
                        trust, abs=1e-12
                    ), (name, cell)

    def test_restricted_jobs_match_serial(self, problem, scheduler, stock):
        order = sources_by_recall(stock.snapshot, stock.gold)
        subset = order[: len(order) // 2]
        outcomes = scheduler.run([
            SolveJob(
                problem=scheduler.register("full", problem),
                calls=[MethodCall("AccuSim"), MethodCall("AccuCopy")],
                sources=list(subset),
            )
        ])[0].calls
        sub = problem.restrict_sources(subset)
        for outcome in outcomes:
            reference = make_method(outcome.method).run(sub)
            assert outcome.result.selected == reference.selected
            for source, trust in reference.trust.items():
                assert outcome.result.trust[source] == pytest.approx(trust, abs=1e-12)

    def test_sweep_matches_serial_loop(self, problem, scheduler, stock):
        snapshot, gold = stock.snapshot, stock.gold
        order = sources_by_recall(snapshot, gold)
        sizes = sorted(set(list(range(1, 8)) + [15, len(order)]))
        methods = ("Vote", "AccuSim", "Hub")
        serial = recall_as_sources_added(
            snapshot, gold, methods, ordering=order, prefix_sizes=sizes,
            problem=problem, batched=False,
        )
        parallel = recall_as_sources_added(
            snapshot, gold, methods, ordering=order, prefix_sizes=sizes,
            problem=problem, scheduler=scheduler,
        )
        for name in methods:
            assert parallel[name].recalls == serial[name].recalls, name

    def test_streaming_day_matches_serial(self, stock):
        from repro.streaming import StreamRunner

        methods = ["Vote", "AccuSim", "AccuCopy", "AccuSimAttr"]
        serial = StreamRunner(methods, warm_start=True)
        with StreamRunner(methods, warm_start=True, workers=WORKERS) as parallel:
            for snapshot in list(stock.series)[:2]:
                reference = serial.push(snapshot)
                step = parallel.push(snapshot)
                for name in methods:
                    a, b = reference.results[name], step.results[name]
                    assert b.selected == a.selected, (snapshot.day, name)
                    assert b.rounds == a.rounds, (snapshot.day, name)
                    assert b.extras["warm_started"] == a.extras["warm_started"]
                    for source, trust in a.trust.items():
                        assert b.trust[source] == pytest.approx(
                            trust, abs=1e-12
                        ), (snapshot.day, name, source)

    def test_serial_fallback_is_the_same_code_path(self, problem):
        outcomes = solve_methods(problem, ["AccuPr"], workers=0)
        reference = make_method("AccuPr").run(problem)
        assert outcomes[0].result.selected == reference.selected
        assert outcomes[0].result.trust == reference.trust

    def test_shard_jobs_match_parent_side_compiles(self, stock, problem, scheduler):
        """Workers carving shards from the shared view == parent compiles."""
        from repro.core.shard import ShardedCorpus

        corpus = ShardedCorpus(stock.snapshot, 3, cross_shard="independent")
        key = scheduler.register("full", problem)
        jobs = [
            SolveJob(
                problem=key,
                calls=[MethodCall("Vote"), MethodCall("AccuSim")],
                shard=corpus.spec(index),
            )
            for index in corpus.shards
        ]
        outcomes = scheduler.run(jobs)
        for index, outcome in zip(corpus.shards, outcomes):
            shard = corpus.problem(index)
            for call in outcome.calls:
                reference = make_method(call.method).run(shard)
                assert call.result.selected == reference.selected, (index, call.method)
                for source, trust in reference.trust.items():
                    assert call.result.trust[source] == pytest.approx(
                        trust, abs=1e-12
                    ), (index, call.method, source)

    def test_shard_jobs_compose_with_subset_sweeps(self, stock, problem, scheduler):
        """A job carrying both a shard and subsets sweeps *within* the shard."""
        from repro.core.shard import ShardedCorpus
        from repro.fusion.batch import solve_restrictions

        corpus = ShardedCorpus(stock.snapshot, 2, cross_shard="independent")
        index = corpus.shards[0]
        shard = corpus.problem(index)
        subsets = [shard.sources[: len(shard.sources) // 2], list(shard.sources)]
        key = scheduler.register("full", problem)
        outcome = scheduler.run([
            SolveJob(
                problem=key,
                calls=[MethodCall("Vote")],
                shard=corpus.spec(index),
                subsets=[list(s) for s in subsets],
            )
        ])[0]
        reference = solve_restrictions(shard, make_method("Vote"), subsets)
        for row, expected in zip(outcome.sweep, reference):
            assert row[0].result.selected == expected.result.selected

    def test_shard_plan_parallel_matches_serial(self, stock, scheduler):
        from repro.core.shard import ShardedCorpus, ShardPlan

        methods = ["Vote", "AccuSim"]
        serial = ShardPlan(
            ShardedCorpus(stock.snapshot, 3, cross_shard="independent"), methods
        ).run()
        parallel = ShardPlan(
            ShardedCorpus(stock.snapshot, 3, cross_shard="independent"), methods
        ).run(scheduler=scheduler)
        assert parallel.shard_ids == serial.shard_ids
        for ours, reference in zip(parallel.shard_results, serial.shard_results):
            for name in methods:
                assert ours[name].selected == reference[name].selected, name
                for source, trust in reference[name].trust.items():
                    assert ours[name].trust[source] == pytest.approx(
                        trust, abs=1e-12
                    ), (name, source)


class TestViewOnlyExport:
    """The compile-free shard path: view exports instead of problem exports."""

    def test_independent_plan_compiles_nothing_in_the_parent(self, stock, scheduler):
        from repro.core.shard import ShardedCorpus, ShardPlan
        from repro.fusion import base

        methods = ["Vote", "AccuSim"]
        serial = ShardPlan(
            ShardedCorpus(stock.snapshot, 3, cross_shard="independent"), methods
        ).run()
        corpus = ShardedCorpus(stock.snapshot, 3, cross_shard="independent")
        corpus.view  # the parent-side cost: the view build, not a compile
        before = base.PROBLEM_COMPILES
        parallel = ShardPlan(corpus, methods).run(scheduler=scheduler)
        assert base.PROBLEM_COMPILES == before  # zero parent-side compiles
        assert parallel.shard_ids == serial.shard_ids
        for ours, reference in zip(parallel.shard_results, serial.shard_results):
            for name in methods:
                assert ours[name].selected == reference[name].selected, name
                for source, trust in reference[name].trust.items():
                    assert ours[name].trust[source] == pytest.approx(
                        trust, abs=1e-12
                    ), (name, source)

    def test_serial_fallback_never_compiles_the_monolith(self, stock):
        from repro.core.shard import ShardedCorpus, ShardPlan
        from repro.fusion import base

        corpus = ShardedCorpus(stock.snapshot, 3, cross_shard="independent")
        corpus.view
        before = base.PROBLEM_COMPILES
        result = ShardPlan(corpus, ["Vote"]).run()
        # One compile per live shard, none for the whole snapshot.
        assert base.PROBLEM_COMPILES - before == len(result.shard_ids)

    def test_view_shard_jobs_match_parent_side_compiles(self, stock, scheduler):
        """Worker-carved view shards == the corpus's own shard compiles."""
        from repro.core.shard import ShardedCorpus

        corpus = ShardedCorpus(stock.snapshot, 3, cross_shard="independent")
        key = scheduler.register_view(
            "view", corpus.view,
            shard_codes=corpus.item_codes,
            n_shards=corpus.n_shards,
            assign=corpus.assign,
        )
        jobs = [
            SolveJob(
                problem=key,
                calls=[MethodCall("Vote"), MethodCall("AccuSim")],
                shard=corpus.spec(index),
            )
            for index in corpus.shards
        ]
        outcomes = scheduler.run(jobs)
        for index, outcome in zip(corpus.shards, outcomes):
            shard = corpus.problem(index)
            for call in outcome.calls:
                reference = make_method(call.method).run(shard)
                assert call.result.selected == reference.selected, (index, call.method)
                for source, trust in reference.trust.items():
                    assert call.result.trust[source] == pytest.approx(
                        trust, abs=1e-12
                    ), (index, call.method, source)

    def test_view_jobs_require_a_shard(self, stock, scheduler):
        from repro.errors import FusionError

        key = scheduler.register_view("bare-view", stock.snapshot.columnar)
        with pytest.raises(FusionError, match="shard jobs"):
            scheduler.run([SolveJob(problem=key, calls=[MethodCall("Vote")])])

    def test_view_segments_do_not_survive_close(self, stock):
        from repro.core.shard import ShardedCorpus

        corpus = ShardedCorpus(stock.snapshot, 2, cross_shard="independent")
        scheduler = SolveScheduler(workers=2)
        scheduler.register_view(
            "view", corpus.view,
            shard_codes=corpus.item_codes, n_shards=2, assign="hash",
        )
        segments = [
            registration.descriptor.bundle.segment
            for registration in scheduler._registrations.values()
            if registration.descriptor is not None
        ]
        assert segments and all(_attachable(s) for s in segments)
        scheduler.close()
        assert not any(_attachable(s) for s in segments)

    def test_view_export_is_read_only_when_attached(self, stock):
        import numpy as np

        from repro.core.shm import AttachedBundle, ViewBundle

        view = stock.snapshot.columnar
        bundle = ViewBundle.create_from_view(view)
        try:
            attached = AttachedBundle(bundle.descriptor)
            try:
                for name, array in attached.arrays.items():
                    assert not array.flags.writeable, name
                with pytest.raises(ValueError):
                    attached["v_claim_source"][0] = 99
                assert np.array_equal(
                    attached["v_claim_source"], view.claim_source
                )
            finally:
                attached.close()
        finally:
            bundle.close()
            bundle.unlink()

    def test_global_scope_view_jobs_use_exported_tolerances(self, stock, scheduler):
        """Precomputed Equation-3 medians ride the export; workers reuse them.

        A global-tolerance-scope spec against a view registered with
        ``attr_tol`` must equal the exact corpus's own shard problems (which
        share the snapshot-global medians) without any worker median pass.
        """
        from repro.core.shard import ShardedCorpus

        corpus = ShardedCorpus(stock.snapshot, 2, cross_shard="exact")
        key = scheduler.register_view(
            "view-tol", corpus.view,
            shard_codes=corpus.item_codes,
            n_shards=corpus.n_shards,
            assign=corpus.assign,
            attr_tol=corpus.global_tolerances(),
        )
        jobs = [
            SolveJob(
                problem=key,
                calls=[MethodCall("AccuSim")],
                shard=corpus.spec(index),  # tolerance_scope == "global"
            )
            for index in corpus.shards
        ]
        assert corpus.spec(corpus.shards[0]).tolerance_scope == "global"
        outcomes = scheduler.run(jobs)
        for index, outcome in zip(corpus.shards, outcomes):
            reference = make_method("AccuSim").run(corpus.problem(index))
            call = outcome.calls[0]
            assert call.result.selected == reference.selected, index
            for source, trust in reference.trust.items():
                assert call.result.trust[source] == pytest.approx(
                    trust, abs=1e-12
                ), (index, source)

    def test_reregistering_a_view_with_gold_upgrades_the_export(self, stock, problem):
        """A gold standard supplied later must reach the workers (re-export)."""
        from repro.core.gold import GoldStandard
        from repro.core.shard import ShardedCorpus

        corpus = ShardedCorpus(stock.snapshot, 2, cross_shard="independent")
        scheduler = SolveScheduler(workers=2)
        try:
            key = scheduler.register_view(
                "upg", corpus.view,
                shard_codes=corpus.item_codes, n_shards=2, assign="hash",
            )
            first = [
                r.descriptor.bundle.segment
                for r in scheduler._registrations.values()
                if r.descriptor is not None
            ]
            scheduler.register_view("upg", corpus.view, gold=stock.gold)
            second = [
                r.descriptor.bundle.segment
                for r in scheduler._registrations.values()
                if r.descriptor is not None
            ]
            assert first != second  # upgraded in place, old segment gone
            assert not any(_attachable(s) for s in first)
            jobs = [
                SolveJob(
                    problem=key, calls=[MethodCall("Vote")],
                    shard=corpus.spec(index), evaluate=True,
                )
                for index in corpus.shards
            ]
            outcomes = scheduler.run(jobs)
            for outcome in outcomes:
                assert outcome.calls[0].precision is not None
            # Same view, nothing new: free, no re-export.
            scheduler.register_view("upg", corpus.view, gold=stock.gold)
            third = [
                r.descriptor.bundle.segment
                for r in scheduler._registrations.values()
                if r.descriptor is not None
            ]
            assert third == second
        finally:
            scheduler.close()

    def test_shipped_codes_match_worker_rehash(self, stock, scheduler):
        """A spec whose (K, assign) differs from the shipped codes still works."""
        from repro.core.shard import ShardedCorpus, ShardSpec

        corpus = ShardedCorpus(stock.snapshot, 2, cross_shard="independent")
        key = scheduler.register_view(
            "view2", corpus.view,
            shard_codes=corpus.item_codes, n_shards=2, assign="hash",
        )
        other = ShardedCorpus(stock.snapshot, 3, cross_shard="independent")
        jobs = [
            SolveJob(
                problem=key,
                calls=[MethodCall("Vote")],
                shard=ShardSpec(3, index, "hash", "shard"),
            )
            for index in other.shards
        ]
        outcomes = scheduler.run(jobs)
        for index, outcome in zip(other.shards, outcomes):
            reference = make_method("Vote").run(other.problem(index))
            assert outcome.calls[0].result.selected == reference.selected, index


class TestSchedulerHygiene:
    def _segments(self, scheduler):
        return [
            registration.descriptor.bundle.segment
            for registration in scheduler._registrations.values()
            if registration.descriptor is not None
        ]

    def test_no_segments_survive_close(self, problem):
        scheduler = SolveScheduler(workers=2)
        solve_methods(problem, ["Vote"], scheduler=scheduler, key="p")
        segments = self._segments(scheduler)
        assert segments and all(_attachable(s) for s in segments)
        scheduler.close()
        assert not any(_attachable(s) for s in segments)

    def test_no_segments_survive_worker_crash(self, problem):
        scheduler = SolveScheduler(workers=2)
        try:
            solve_methods(problem, ["Vote"], scheduler=scheduler, key="p")
            segments = self._segments(scheduler)
            assert segments
            victim = next(iter(scheduler._pool._processes))
            os.kill(victim, signal.SIGKILL)
            with pytest.raises(Exception):
                solve_methods(problem, ["Vote"], scheduler=scheduler, key="p")
        finally:
            scheduler.close()
        assert not any(_attachable(s) for s in segments)

    def test_close_is_idempotent(self, problem):
        scheduler = SolveScheduler(workers=2)
        solve_methods(problem, ["Vote"], scheduler=scheduler, key="p")
        segments = self._segments(scheduler)
        scheduler.close()
        scheduler.close()  # double close must be a safe no-op
        assert not any(_attachable(s) for s in segments)
        assert scheduler._registrations == {}

    def test_worker_death_mid_plan_leaves_no_segments(self, problem):
        """A worker SIGKILLed while a plan is in flight must not leak shm."""
        scheduler = SolveScheduler(workers=2)
        try:
            key = scheduler.register("p", problem)
            solve_methods(problem, ["Vote"], scheduler=scheduler, key="p")
            segments = self._segments(scheduler)
            assert segments
            victim = next(iter(scheduler._pool._processes))
            # Convergence at tolerance 0 is impossible, so every job spins
            # until the kill lands mid-plan.
            jobs = [
                SolveJob(problem=key, calls=[
                    MethodCall("Vote", kwargs={
                        "max_rounds": 1_000_000, "tolerance": 0.0,
                    })
                ])
                for _ in range(4)
            ]
            killer = threading.Timer(0.3, os.kill, (victim, signal.SIGKILL))
            killer.start()
            try:
                with pytest.raises(Exception):
                    scheduler.run(jobs)
            finally:
                killer.cancel()
        finally:
            scheduler.close()
        assert not any(_attachable(s) for s in segments)

    def test_reregistering_a_key_replaces_the_export(self, problem, stock):
        from repro.fusion.base import FusionProblem

        scheduler = SolveScheduler(workers=2)
        try:
            scheduler.register("day", problem)
            first = self._segments(scheduler)
            other = FusionProblem(stock.series.snapshots[0])
            scheduler.register("day", other)
            second = self._segments(scheduler)
            assert first != second
            assert not any(_attachable(s) for s in first)
            assert all(_attachable(s) for s in second)
            # Same object re-registered: free, nothing re-exported.
            scheduler.register("day", other)
            assert self._segments(scheduler) == second
        finally:
            scheduler.close()
