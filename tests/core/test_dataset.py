"""Dataset construction, views, tolerance caching, and source filtering."""

import pytest

from repro.core.attributes import AttributeSpec, AttributeTable, ValueKind
from repro.core.dataset import Dataset, DatasetSeries
from repro.core.records import Claim, DataItem, SourceMeta
from repro.errors import SchemaError

from tests.helpers import build_dataset


class TestDatasetBuild:
    def test_counts(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 10.0,
            ("s1", "o2", "price"): 20.0,
        })
        assert ds.num_sources == 2
        assert ds.num_objects == 2
        assert ds.num_items == 2
        assert ds.num_claims == 3

    def test_unknown_source_rejected(self):
        table = AttributeTable.from_specs([AttributeSpec("price")])
        ds = Dataset(domain="t", day="d", attributes=table)
        with pytest.raises(SchemaError):
            ds.add_claim("ghost", DataItem("o", "price"), Claim(1.0))

    def test_unknown_attribute_rejected(self):
        table = AttributeTable.from_specs([AttributeSpec("price")])
        ds = Dataset(domain="t", day="d", attributes=table)
        ds.add_source(SourceMeta("s"))
        with pytest.raises(SchemaError):
            ds.add_claim("s", DataItem("o", "volume"), Claim(1.0))

    def test_duplicate_source_rejected(self):
        table = AttributeTable.from_specs([AttributeSpec("price")])
        ds = Dataset(domain="t", day="d", attributes=table)
        ds.add_source(SourceMeta("s"))
        with pytest.raises(SchemaError):
            ds.add_source(SourceMeta("s"))

    def test_frozen_rejects_mutation(self):
        ds = build_dataset({("s1", "o1", "price"): 10.0})
        with pytest.raises(SchemaError):
            ds.add_source(SourceMeta("late"))


class TestDatasetViews:
    def test_claims_on_item(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 11.0,
        })
        claims = ds.claims_on(DataItem("o1", "price"))
        assert {s: c.value for s, c in claims.items()} == {"s1": 10.0, "s2": 11.0}

    def test_value_of_missing_is_none(self):
        ds = build_dataset({("s1", "o1", "price"): 10.0})
        assert ds.value_of("s1", DataItem("o2", "price")) is None

    def test_iter_claims_total(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 11.0,
        })
        assert len(list(ds.iter_claims())) == 2


class TestTolerance:
    def test_tolerance_uses_all_attribute_values(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 20.0,
            ("s1", "o2", "price"): 30.0,
        })
        assert ds.tolerance("price") == pytest.approx(0.01 * 20.0)

    def test_values_match_uses_tolerance(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 100.0,
            ("s2", "o1", "price"): 100.5,
        })
        # tolerance = 1% of median(100, 100.5)
        assert ds.values_match("price", 100.0, 100.5)
        assert not ds.values_match("price", 100.0, 103.0)

    def test_clustering_cached_when_frozen(self):
        ds = build_dataset({("s1", "o1", "price"): 10.0})
        item = DataItem("o1", "price")
        assert ds.clustering(item) is ds.clustering(item)


class TestWithoutSources:
    def test_removes_claims_and_sources(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 11.0,
        })
        reduced = ds.without_sources(["s2"])
        assert reduced.num_sources == 1
        assert reduced.num_claims == 1
        # original untouched
        assert ds.num_claims == 2

    def test_restricted_to_sources(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 11.0,
            ("s3", "o1", "price"): 12.0,
        })
        kept = ds.restricted_to_sources(["s1", "s3"])
        assert sorted(kept.source_ids) == ["s1", "s3"]


class TestDatasetSeries:
    def test_series_rejects_other_domain(self):
        series = DatasetSeries(domain="stock")
        other = build_dataset({("s1", "o1", "price"): 1.0}, domain="flight")
        with pytest.raises(SchemaError):
            series.add(other)

    def test_snapshot_lookup(self):
        series = DatasetSeries(domain="test")
        ds = build_dataset({("s1", "o1", "price"): 1.0}, day="2011-07-07")
        series.add(ds)
        assert series.snapshot("2011-07-07") is ds
        with pytest.raises(SchemaError):
            series.snapshot("2011-07-08")

    def test_snapshot_error_lists_available_days(self):
        series = DatasetSeries(domain="test")
        for day in ("d1", "d2"):
            series.add(build_dataset({("s1", "o1", "price"): 1.0}, day=day))
        with pytest.raises(SchemaError, match="available days: d1, d2"):
            series.snapshot("d9")

    def test_snapshot_index_survives_later_adds(self):
        series = DatasetSeries(domain="test")
        first = build_dataset({("s1", "o1", "price"): 1.0}, day="d1")
        series.add(first)
        assert series.snapshot("d1") is first  # index built here
        second = build_dataset({("s1", "o1", "price"): 2.0}, day="d2")
        series.add(second)
        assert series.snapshot("d2") is second
        assert series.snapshot("d1") is first

    def test_duplicate_day_returns_first_match(self):
        series = DatasetSeries(domain="test")
        first = build_dataset({("s1", "o1", "price"): 1.0}, day="dup")
        second = build_dataset({("s1", "o1", "price"): 2.0}, day="dup")
        series.add(first)
        series.add(second)
        assert series.snapshot("dup") is first  # legacy linear-scan behaviour

    def test_empty_series_error(self):
        with pytest.raises(SchemaError, match="series is empty"):
            DatasetSeries(domain="test").snapshot("d1")
