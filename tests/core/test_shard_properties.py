"""Property-based invariants of the sharding layer (and its exact merge).

Random small worlds drive the two hard guarantees:

* the per-shard compilations of a :class:`ShardedCorpus` in exact mode
  merge back **bit for bit** into the monolithic compile, for any shard
  count and either assignment mode;
* a K=1 shard — and the exact K-shard plan — solves every one of the
  sixteen registered methods identically to the unsharded path.

The strategies here (``claim_tables``, ``value_for``) are shared with the
delta-compiler properties in ``tests/core/test_delta.py``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.shard import ShardedCorpus, ShardPlan, shard_problem
from repro.errors import ConfigError, FusionError
from repro.fusion.base import FusionProblem
from repro.fusion.registry import METHOD_NAMES, make_method

from tests.helpers import build_dataset

SOURCES = ("s1", "s2", "s3", "s4")
OBJECTS = ("o1", "o2", "o3", "o4", "o5")
ATTRS = ("price", "volume", "gate")
NUMERIC_VALUES = (1.0, 2.0, 5.0, 9.5, 10.0, 10.25, 11.0, 77.0, 100.0)
STRING_VALUES = ("A1", "A2", "B7", "C3")

#: The arrays whose bitwise equality pins two problems as interchangeable.
PROBLEM_ARRAYS = (
    "item_start", "cluster_item", "cluster_support", "claim_source",
    "claim_cluster", "_cluster_value_code", "_claim_value_code",
    "_item_index", "_attr_tol", "_claim_granularity",
)


def value_for(attribute: str, pick: int):
    """Map a hypothesis integer onto a type-correct value for an attribute."""
    if attribute == "gate":
        return STRING_VALUES[pick % len(STRING_VALUES)]
    return NUMERIC_VALUES[pick % len(NUMERIC_VALUES)]


def claim_tables(min_size: int = 2, max_size: int = 30):
    """Random ``{(source, object, attribute): value}`` claim tables."""
    cell = st.tuples(
        st.sampled_from(SOURCES),
        st.sampled_from(OBJECTS),
        st.sampled_from(ATTRS),
    )
    return st.dictionaries(
        cell, st.integers(0, 100), min_size=min_size, max_size=max_size
    ).map(
        lambda picks: {
            cell: value_for(cell[2], pick) for cell, pick in picks.items()
        }
    )


def assert_problems_bitwise_equal(a: FusionProblem, b: FusionProblem) -> None:
    for name in PROBLEM_ARRAYS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    assert a.items == b.items
    assert a.sources == b.sources


class TestShardMergeProperties:
    @given(
        table=claim_tables(),
        n_shards=st.integers(1, 4),
        assign=st.sampled_from(("hash", "contiguous")),
    )
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_merged_problem_is_bitwise_the_unsharded_compile(
        self, table, n_shards, assign
    ):
        dataset = build_dataset(table)
        base = FusionProblem(dataset)
        corpus = ShardedCorpus(dataset, n_shards, assign=assign)
        assert_problems_bitwise_equal(corpus.merged_problem(), base)

    @given(table=claim_tables(), n_shards=st.integers(2, 4))
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_shards_partition_the_items(self, table, n_shards):
        dataset = build_dataset(table)
        corpus = ShardedCorpus(dataset, n_shards, cross_shard="independent")
        seen = []
        for index in corpus.shards:
            seen.extend(corpus.problem(index).items)
        base = FusionProblem(dataset)
        assert sorted(seen, key=repr) == sorted(base.items, key=repr)
        assert len(seen) == len(set(seen))

    @given(table=claim_tables())
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_k1_shard_runs_all_sixteen_methods_identically(self, table):
        dataset = build_dataset(table)
        base = FusionProblem(dataset)
        shard = ShardedCorpus(dataset, 1).problem(0)
        assert_problems_bitwise_equal(shard, base)
        for name in METHOD_NAMES:
            ours = make_method(name).run(shard)
            reference = make_method(name).run(base)
            assert ours.selected == reference.selected, name
            assert ours.trust == reference.trust, name


class TestShardDeterministic:
    """The K=4 exact plan against the unsharded path on a real collection."""

    @pytest.fixture(scope="class")
    def corpus(self, stock_snapshot):
        return ShardedCorpus(stock_snapshot, 4)

    def test_merged_k4_is_bitwise_unsharded(self, corpus, stock_problem):
        assert len(corpus.shards) == 4
        assert_problems_bitwise_equal(corpus.merged_problem(), stock_problem)

    def test_exact_plan_matches_unsharded_for_all_sixteen(
        self, corpus, stock_problem
    ):
        result = ShardPlan(corpus, METHOD_NAMES).run()
        assert result.mode == "exact"
        for name in METHOD_NAMES:
            reference = make_method(name).run(stock_problem)
            assert result.results[name].selected == reference.selected, name
            assert result.results[name].trust == reference.trust, name
            assert result.results[name].rounds == reference.rounds, name

    def test_spec_carve_matches_parent_compile(self, corpus, stock_problem):
        for index in corpus.shards:
            carved = shard_problem(stock_problem, corpus.spec(index))
            assert_problems_bitwise_equal(carved, corpus.problem(index))

    def test_copy_counts_sum_to_the_monolithic_counts(
        self, corpus, stock_problem
    ):
        merged = corpus.merged_problem(with_copy=True)
        seeded = merged.copy_structures
        fresh = stock_problem.copy_structures
        assert np.array_equal(seeded.same, fresh.same)
        assert np.array_equal(seeded.shared, fresh.shared)

    def test_independent_mode_covers_every_item(self, stock_snapshot):
        corpus = ShardedCorpus(stock_snapshot, 4, cross_shard="independent")
        result = ShardPlan(corpus, ["Vote"]).run()
        assert result.mode == "independent"
        covered = set()
        for results in result.shard_results:
            covered.update(results["Vote"].selected)
        assert covered == set(FusionProblem(stock_snapshot).items)

    def test_independent_mode_has_no_merged_problem(self, stock_snapshot):
        corpus = ShardedCorpus(stock_snapshot, 2, cross_shard="independent")
        with pytest.raises(FusionError, match="exact"):
            corpus.merged_problem()

    def test_oversharding_skips_empty_shards(self):
        dataset = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 10.0,
        })
        corpus = ShardedCorpus(dataset, 8)
        assert len(corpus.shards) == 1
        assert_problems_bitwise_equal(
            corpus.merged_problem(), FusionProblem(dataset)
        )

    def test_rejects_bad_configuration(self, stock_snapshot):
        with pytest.raises(ConfigError):
            ShardedCorpus(stock_snapshot, 0)
        with pytest.raises(ConfigError):
            ShardedCorpus(stock_snapshot, 2, assign="roundrobin")
        with pytest.raises(ConfigError):
            ShardedCorpus(stock_snapshot, 2, cross_shard="sometimes")
