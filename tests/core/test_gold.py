"""Gold-standard construction by authority voting (Section 2.2)."""

import pytest

from repro.core.attributes import AttributeSpec, AttributeTable
from repro.core.dataset import Dataset
from repro.core.gold import (
    accuracy_of_source,
    build_gold_standard,
    coverage_of_source,
    recall_of_source,
)
from repro.core.records import Claim, DataItem, SourceMeta
from repro.errors import GoldStandardError

from tests.helpers import build_dataset, build_gold


def _authority_dataset():
    table = AttributeTable.from_specs([AttributeSpec("price")])
    ds = Dataset(domain="t", day="d", attributes=table)
    for sid, authority in (("a1", True), ("a2", True), ("a3", True), ("web", False)):
        ds.add_source(SourceMeta(sid, is_authority=authority))
    item = DataItem("o1", "price")
    ds.add_claim("a1", item, Claim(10.0))
    ds.add_claim("a2", item, Claim(10.0))
    ds.add_claim("a3", item, Claim(99.0))
    ds.add_claim("web", item, Claim(50.0))
    # o2 covered by too few authorities
    ds.add_claim("a1", DataItem("o2", "price"), Claim(20.0))
    return ds.freeze()


class TestBuildGoldStandard:
    def test_majority_vote_among_authorities(self):
        ds = _authority_dataset()
        gold = build_gold_standard(ds, ["o1", "o2"], min_providers=3)
        assert gold[DataItem("o1", "price")] == 10.0

    def test_min_providers_filters_items(self):
        ds = _authority_dataset()
        gold = build_gold_standard(ds, ["o1", "o2"], min_providers=3)
        assert DataItem("o2", "price") not in gold

    def test_gold_objects_filter(self):
        ds = _authority_dataset()
        with pytest.raises(GoldStandardError):
            build_gold_standard(ds, ["o3"], min_providers=1)

    def test_explicit_authorities(self):
        ds = _authority_dataset()
        gold = build_gold_standard(
            ds, ["o1"], min_providers=1, authority_ids=["a3"]
        )
        assert gold[DataItem("o1", "price")] == 99.0

    def test_no_authorities_raises(self):
        ds = build_dataset({("s1", "o1", "price"): 1.0})
        with pytest.raises(GoldStandardError):
            build_gold_standard(ds, ["o1"])


class TestSourceScores:
    def test_accuracy(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s1", "o2", "price"): 99.0,
            ("s2", "o1", "price"): 10.0,
        })
        gold = build_gold({("o1", "price"): 10.0, ("o2", "price"): 20.0})
        assert accuracy_of_source(ds, gold, "s1") == pytest.approx(0.5)
        assert accuracy_of_source(ds, gold, "s2") == pytest.approx(1.0)

    def test_accuracy_none_when_no_gold_items(self):
        ds = build_dataset({("s1", "o9", "price"): 10.0})
        gold = build_gold({("o1", "price"): 10.0})
        assert accuracy_of_source(ds, gold, "s1") is None

    def test_coverage(self):
        ds = build_dataset({("s1", "o1", "price"): 10.0})
        gold = build_gold({("o1", "price"): 10.0, ("o2", "price"): 20.0})
        assert coverage_of_source(ds, gold, "s1") == pytest.approx(0.5)

    def test_recall_is_coverage_times_accuracy(self):
        ds = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s1", "o2", "price"): 999.0,
        })
        gold = build_gold({
            ("o1", "price"): 10.0,
            ("o2", "price"): 20.0,
            ("o3", "price"): 30.0,
        })
        # covers 2/3 of gold, right on 1 of them
        assert recall_of_source(ds, gold, "s1") == pytest.approx(1 / 3)


class TestGoldOnGenerated:
    def test_gold_items_cover_only_gold_objects(self, stock_collection):
        gold = stock_collection.gold
        assert gold.objects <= set(stock_collection.gold_objects)

    def test_authority_accuracy_is_high(self, stock_collection):
        ds, gold = stock_collection.snapshot, stock_collection.gold
        acc = accuracy_of_source(ds, gold, "google_finance")
        assert acc is not None and acc > 0.8
