"""Test package (regular package so duplicate basenames collect cleanly)."""
