"""Tolerance, bucketing, and clustering (Section 3.2 mechanics)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import AttributeSpec, ValueKind
from repro.core.records import Claim
from repro.core.tolerance import (
    ItemClustering,
    attribute_tolerance,
    cluster_claims,
)

NUMERIC = AttributeSpec("price", ValueKind.NUMERIC)
TIME = AttributeSpec("depart", ValueKind.TIME)
STRING = AttributeSpec("gate", ValueKind.STRING)


def _claims(values):
    return {f"s{i}": Claim(value=v) for i, v in enumerate(values)}


class TestAttributeTolerance:
    def test_numeric_is_alpha_times_median(self):
        tol = attribute_tolerance(NUMERIC, [10.0, 20.0, 30.0])
        assert tol == pytest.approx(0.01 * 20.0)

    def test_even_count_uses_middle_average(self):
        tol = attribute_tolerance(NUMERIC, [10.0, 20.0, 30.0, 40.0])
        assert tol == pytest.approx(0.01 * 25.0)

    def test_time_tolerance_is_ten_minutes(self):
        assert attribute_tolerance(TIME, [100.0, 5000.0]) == 10.0

    def test_string_tolerance_is_zero(self):
        assert attribute_tolerance(STRING, []) == 0.0

    def test_empty_numeric_values(self):
        assert attribute_tolerance(NUMERIC, []) == 0.0

    def test_negative_values_use_absolute_median(self):
        tol = attribute_tolerance(NUMERIC, [-10.0, -20.0, -30.0])
        assert tol == pytest.approx(0.2)


class TestClusterClaims:
    def test_exact_duplicates_merge(self):
        clustering = cluster_claims(_claims([10.0, 10.0, 10.0]), NUMERIC, 0.1)
        assert clustering.num_values == 1
        assert clustering.dominant.support == 3

    def test_within_tolerance_merge(self):
        clustering = cluster_claims(_claims([10.0, 10.0, 10.04]), NUMERIC, 0.1)
        assert clustering.num_values == 1

    def test_beyond_tolerance_split(self):
        clustering = cluster_claims(_claims([10.0, 10.0, 11.0]), NUMERIC, 0.1)
        assert clustering.num_values == 2
        assert clustering.dominant.representative == 10.0

    def test_buckets_are_centered_on_dominant_value(self):
        # v0 = 10.0 (2 providers); 10.06 falls in the next bucket
        # ((10.05, 10.15]) even though it is within 0.1 of one provider.
        clustering = cluster_claims(_claims([10.0, 10.0, 10.06]), NUMERIC, 0.1)
        assert clustering.num_values == 2

    def test_strings_cluster_exactly(self):
        clustering = cluster_claims(_claims(["C1", "C1", "B2"]), STRING, 0.0)
        assert clustering.num_values == 2
        assert clustering.dominant.representative == "C1"

    def test_dominant_tie_breaks_deterministically(self):
        clustering = cluster_claims(_claims([10.0, 20.0]), NUMERIC, 0.01)
        assert clustering.dominant.representative == 10.0

    def test_empty_claims(self):
        clustering = cluster_claims({}, NUMERIC, 0.1)
        assert clustering.clusters == []

    def test_providers_recorded_per_cluster(self):
        clustering = cluster_claims(
            {"a": Claim(10.0), "b": Claim(10.0), "c": Claim(99.0)}, NUMERIC, 0.1
        )
        assert set(clustering.dominant.providers) == {"a", "b"}


class TestClusteringMeasures:
    def test_single_value_entropy_zero(self):
        clustering = cluster_claims(_claims([5.0, 5.0]), NUMERIC, 0.1)
        assert clustering.entropy() == 0.0

    def test_uniform_two_values_entropy_one(self):
        clustering = cluster_claims(_claims([5.0, 50.0]), NUMERIC, 0.1)
        assert clustering.entropy() == pytest.approx(1.0)

    def test_dominance_factor(self):
        clustering = cluster_claims(_claims([5.0, 5.0, 5.0, 50.0]), NUMERIC, 0.1)
        assert clustering.dominance_factor == pytest.approx(0.75)

    def test_relative_deviation(self):
        clustering = cluster_claims(_claims([10.0, 10.0, 12.0]), NUMERIC, 0.1)
        # values 10 (dominant) and 12: D = sqrt(mean([0, (2/10)^2]))
        assert clustering.deviation(ValueKind.NUMERIC) == pytest.approx(
            math.sqrt(0.04 / 2)
        )

    def test_time_deviation_in_minutes(self):
        clustering = cluster_claims(_claims([600.0, 600.0, 630.0]), TIME, 10.0)
        assert clustering.deviation(ValueKind.TIME) == pytest.approx(
            math.sqrt(900.0 / 2)
        )

    def test_string_deviation_is_none(self):
        clustering = cluster_claims(_claims(["A", "B"]), STRING, 0.0)
        assert clustering.deviation(ValueKind.STRING) is None

    def test_zero_dominant_relative_deviation_is_none(self):
        clustering = cluster_claims(_claims([0.0, 0.0, 5.0]), NUMERIC, 0.1)
        assert clustering.deviation(ValueKind.NUMERIC) is None


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    tolerance=st.floats(min_value=1e-3, max_value=1e3),
)
@settings(max_examples=200, deadline=None)
def test_clustering_invariants(values, tolerance):
    """Bucketing partitions the providers; measures stay in range."""
    clustering = cluster_claims(_claims(values), NUMERIC, tolerance)
    # Partition: every provider in exactly one cluster.
    providers = [s for c in clustering.clusters for s in c.providers]
    assert len(providers) == len(values)
    assert len(set(providers)) == len(values)
    # Ordering: supports are non-increasing.
    supports = [c.support for c in clustering.clusters]
    assert supports == sorted(supports, reverse=True)
    # Entropy bounds: 0 <= E <= log2(#clusters).
    entropy = clustering.entropy()
    assert entropy >= 0.0
    assert entropy <= math.log2(max(clustering.num_values, 1)) + 1e-9
    # Dominance factor in (0, 1].
    assert 0.0 < clustering.dominance_factor <= 1.0


@given(
    values=st.lists(
        st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
        min_size=2,
        max_size=20,
    )
)
@settings(max_examples=100, deadline=None)
def test_members_within_bucket_width_of_each_other(values):
    """Any two members of a cluster differ by at most the bucket width."""
    tolerance = 1.0
    clustering = cluster_claims(_claims(values), NUMERIC, tolerance)
    for cluster in clustering.clusters:
        members = [float(v) for v in cluster.providers.values()]
        assert max(members) - min(members) <= tolerance + 1e-9
