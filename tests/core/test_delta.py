"""Delta compilation: the SeriesCompiler against from-scratch compiles."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dataset import Dataset
from repro.core.delta import ClaimDelta, SeriesCompiler, splice_compiled
from repro.core.records import Claim, DataItem, SourceMeta
from repro.errors import SchemaError
from repro.fusion.base import FusionProblem
from repro.fusion.registry import make_method

from tests.core.test_shard_properties import claim_tables, value_for
from tests.helpers import build_dataset

METHODS = ("Vote", "AccuSim", "2-Estimates", "TruthFinder")


def assert_problems_equivalent(day, snapshot, methods=METHODS):
    """Delta-compiled problem == cold FusionProblem on every observable."""
    p_new = day.problem()
    p_old = FusionProblem(snapshot)
    assert p_new.n_claims == p_old.n_claims
    assert p_new.n_clusters == p_old.n_clusters
    assert p_new.n_items == p_old.n_items
    assert sorted(p_new.sources) == sorted(p_old.sources)
    tol_new = dict(zip(p_new.attributes, p_new._attr_tol.tolist()))
    tol_old = dict(zip(p_old.attributes, p_old._attr_tol.tolist()))
    assert tol_new == tol_old
    for name in methods:
        r_new = make_method(name).run(p_new)
        r_old = make_method(name).run(p_old)
        assert r_new.selected == r_old.selected, (day.day, name)
        for source_id, trust in r_old.trust.items():
            assert r_new.trust[source_id] == pytest.approx(trust, abs=1e-12)


def materialize(base, sources, claims, day):
    dataset = Dataset(domain=base.domain, day=day, attributes=base.attributes)
    for meta in sources:
        dataset.add_source(meta)
    for (source_id, item), claim in claims.items():
        dataset.add_claim(source_id, item, claim)
    return dataset.freeze()


class TestIngestEquivalence:
    @pytest.mark.parametrize("threshold", [0.5, 2.0])
    def test_generated_series_all_days(self, flight_collection, threshold):
        """Every day of a generated series fuses identically to cold compiles.

        ``threshold=2.0`` forces the splice path even on the high-churn
        generated data; ``0.5`` exercises the full-compile fallback.
        """
        compiler = SeriesCompiler(full_compile_threshold=threshold)
        saw_splice = False
        for snapshot in flight_collection.series:
            day = compiler.ingest(snapshot)
            saw_splice |= not day.stats.full_compile
            assert_problems_equivalent(day, snapshot)
        if threshold > 1.0:
            assert saw_splice

    def test_compaction_preserves_equivalence(self, flight_collection):
        compiler = SeriesCompiler(max_inactive_ratio=0.1)
        compacted = False
        for snapshot in flight_collection.series:
            day = compiler.ingest(snapshot)
            compacted |= day.stats.compacted
            assert_problems_equivalent(day, snapshot, methods=("Vote",))
        assert compacted

    def test_rejects_mismatched_schema(self, flight_collection, stock_collection):
        compiler = SeriesCompiler()
        compiler.ingest(flight_collection.series[0])
        with pytest.raises(SchemaError):
            compiler.ingest(stock_collection.series[0])

    def test_stats_track_churn(self, flight_collection):
        compiler = SeriesCompiler()
        first = compiler.ingest(flight_collection.series[0])
        assert first.stats.full_compile
        assert first.stats.n_added_claims == first.stats.n_active_claims
        assert first.stats.n_removed_claims == 0
        second = compiler.ingest(flight_collection.series[1])
        assert second.stats.n_added_claims > 0
        assert second.stats.n_removed_claims > 0


class TestApplyDelta:
    def _seeded(self):
        base = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 10.0,
            ("s3", "o1", "price"): 12.0,
            ("s1", "o2", "price"): 5.0,
            ("s2", "o2", "price"): 6.0,
            ("s1", "o1", "gate"): "A1",
            ("s2", "o1", "gate"): "A2",
        })
        compiler = SeriesCompiler()
        compiler.ingest(base)
        claims = {}
        for item, source_id, claim in base.iter_claims():
            claims[(source_id, item)] = claim
        return base, compiler, claims, list(base.sources.values())

    def test_value_change_retraction_and_new_source(self):
        base, compiler, claims, metas = self._seeded()
        new_meta = SourceMeta("s9")
        changes = [
            ("s3", DataItem("o1", "price"), Claim(value=10.5)),
            ("s9", DataItem("o2", "price"), Claim(value=5.0)),
            ("s9", DataItem("o3", "price"), Claim(value=7.0)),  # new item
        ]
        delta = ClaimDelta(
            day="d1",
            added=tuple(changes),
            retracted=(("s2", DataItem("o1", "gate")),),
            new_sources=(new_meta,),
        )
        day = compiler.apply_delta(delta)
        for source_id, item, claim in changes:
            claims[(source_id, item)] = claim
        del claims[("s2", DataItem("o1", "gate"))]
        reference = materialize(base, metas + [new_meta], claims, "d1")
        assert_problems_equivalent(day, reference)
        assert day.stats.n_removed_claims >= 2  # replaced value + retraction

    def test_incremental_days_match_full_rebuilds(self, flight_collection):
        """A multi-day random delta stream stays equivalent throughout."""
        from repro.datagen import perturbed_claim_stream

        base = flight_collection.series[0]
        stream = perturbed_claim_stream(base, n_days=3, churn=0.02, seed=3)
        compiler = SeriesCompiler()
        compiler.ingest(base)
        saw_splice = False
        for delta, snapshot in zip(stream.deltas, stream.snapshots):
            day = compiler.apply_delta(delta)
            saw_splice |= not day.stats.full_compile
            assert_problems_equivalent(day, snapshot)
        assert saw_splice  # low churn must take the splice path

    def test_requires_prior_ingest(self):
        from repro.errors import FusionError

        with pytest.raises(FusionError):
            SeriesCompiler().apply_delta(ClaimDelta(day="d1"))

    def test_rejects_two_adds_in_one_cell(self):
        _base, compiler, _claims, _metas = self._seeded()
        delta = ClaimDelta(
            day="d1",
            added=(
                ("s1", DataItem("o1", "price"), Claim(value=1.0)),
                ("s1", DataItem("o1", "price"), Claim(value=2.0)),
            ),
        )
        with pytest.raises(SchemaError, match="one .source, item. cell"):
            compiler.apply_delta(delta)

    def test_rejects_undeclared_source(self):
        _base, compiler, _claims, _metas = self._seeded()
        delta = ClaimDelta(
            day="d1",
            added=(("ghost", DataItem("o1", "price"), Claim(value=1.0)),),
        )
        with pytest.raises(SchemaError):
            compiler.apply_delta(delta)


def _delta_days():
    """Random day-over-day change sets: adds (≥1/day) and retractions."""
    cell = st.tuples(
        st.sampled_from(("s1", "s2", "s3", "s4", "s9")),
        st.sampled_from(("o1", "o2", "o3", "o4", "o5", "o6")),
        st.sampled_from(("price", "volume", "gate")),
    )
    day = st.tuples(
        st.dictionaries(cell, st.integers(0, 100), min_size=1, max_size=8),
        st.lists(cell, max_size=5),
    )
    return st.lists(day, min_size=1, max_size=4)


class TestDeltaProperties:
    """Random worlds + random ``ClaimDelta`` sequences == cold recompiles."""

    @given(table=claim_tables(min_size=3), days=_delta_days())
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_delta_sequences_match_cold_recompiles(self, table, days):
        base = build_dataset(table)
        compiler = SeriesCompiler()
        compiler.ingest(base)
        claims = {}
        for item, source_id, claim in base.iter_claims():
            claims[(source_id, item)] = claim
        metas = {source_id: meta for source_id, meta in base.sources.items()}

        for index, (adds, retracts) in enumerate(days):
            new_sources = []
            for source_id, _obj, _attr in adds:
                if source_id not in metas:
                    meta = SourceMeta(source_id)
                    metas[source_id] = meta
                    new_sources.append(meta)
            added = []
            for (source_id, obj, attr), pick in adds.items():
                claim = Claim(value=value_for(attr, pick))
                added.append((source_id, DataItem(obj, attr), claim))
            retracted = [
                (source_id, DataItem(obj, attr))
                for source_id, obj, attr in retracts
                if source_id in metas
            ]
            delta = ClaimDelta(
                day=f"d{index + 1}",
                added=tuple(added),
                retracted=tuple(retracted),
                new_sources=tuple(new_sources),
            )
            # Reference semantics: retractions empty their cells, then adds
            # (re)fill theirs — exactly apply_delta's masking order.
            for source_id, item in retracted:
                claims.pop((source_id, item), None)
            for source_id, item, claim in added:
                claims[(source_id, item)] = claim

            day = compiler.apply_delta(delta)
            reference = materialize(
                base, list(metas.values()), claims, delta.day
            )
            assert_problems_equivalent(day, reference, methods=("Vote", "AccuSim"))


class TestCopyCountTracking:
    def test_pair_counts_match_from_scratch(self, flight_collection):
        """Incrementally patched same/shared == freshly computed products."""
        compiler = SeriesCompiler(
            track_copy_structures=True, full_compile_threshold=2.0
        )
        for snapshot in flight_collection.series:
            day = compiler.ingest(snapshot)
            problem = day.problem()
            seeded = problem.copy_structures
            scratch = FusionProblem.from_compiled(
                view=day.view,
                compiled=day.compiled,
                sources=day.sources,
                source_codes=day.source_codes,
                attr_tol=day.attr_tol,
                claim_mask=day.claim_mask,
            )
            fresh = scratch.copy_structures
            assert np.array_equal(seeded.same, fresh.same)
            assert np.array_equal(seeded.shared, fresh.shared)


class TestInsertScatter:
    """The batched allocation+scatter insert == the np.insert reference."""

    @staticmethod
    def _np_insert_claims(compiler, item, src, val, granc, keys):
        """The pre-batching reference: one np.insert per store column."""
        if len(compiler._item_counts) < len(compiler._items):
            compiler._item_counts = np.concatenate((
                compiler._item_counts,
                np.zeros(
                    len(compiler._items) - len(compiler._item_counts),
                    dtype=np.int64,
                ),
            ))
        item_start = compiler._item_start()
        ins = item_start[item + 1]
        order = np.lexsort((item, ins))
        ins = ins[order]
        item, src = item[order], src[order]
        val, granc, keys = val[order], granc[order], keys[order]
        compiler._s_item = np.insert(compiler._s_item, ins, item)
        compiler._s_src = np.insert(compiler._s_src, ins, src)
        compiler._s_val = np.insert(compiler._s_val, ins, val)
        compiler._s_granc = np.insert(compiler._s_granc, ins, granc)
        compiler._s_key = np.insert(compiler._s_key, ins, keys)
        np.add.at(compiler._item_counts, item, 1)
        final = ins + np.arange(len(ins), dtype=np.int64)
        if len(compiler._key_pos):
            compiler._key_pos = compiler._key_pos + np.searchsorted(
                ins, compiler._key_pos, side="right"
            )
        korder = np.argsort(keys, kind="stable")
        kpos = np.searchsorted(compiler._key_sorted, keys[korder])
        compiler._key_sorted = np.insert(
            compiler._key_sorted, kpos, keys[korder]
        )
        compiler._key_pos = np.insert(compiler._key_pos, kpos, final[korder])
        old_dest = np.delete(
            np.arange(len(compiler._s_item), dtype=np.int64), final
        )
        return ins, final, old_dest

    def _stream(self, seed):
        from repro.datagen import perturbed_claim_stream

        base = build_dataset({
            ("s1", "o1", "price"): 10.0,
            ("s2", "o1", "price"): 11.0,
            ("s1", "o2", "price"): 5.0,
            ("s2", "o2", "volume"): 6.0,
            ("s3", "o3", "gate"): "A1",
            ("s1", "o3", "gate"): "A2",
            ("s3", "o4", "price"): 50.0,
        })
        return base, perturbed_claim_stream(base, n_days=4, churn=0.4, seed=seed)

    @pytest.mark.parametrize("seed", [1, 7])
    def test_store_bit_identical_to_np_insert(self, seed, monkeypatch):
        base, stream = self._stream(seed)

        fast = SeriesCompiler()
        fast.ingest(base)
        reference = SeriesCompiler()
        monkeypatch.setattr(
            SeriesCompiler,
            "_insert_claims",
            self._np_insert_claims,
            raising=True,
        )
        reference.ingest(base)
        monkeypatch.undo()

        for delta in stream.deltas:
            fast.apply_delta(delta)
            monkeypatch.setattr(
                SeriesCompiler, "_insert_claims", self._np_insert_claims
            )
            reference.apply_delta(delta)
            monkeypatch.undo()
            for field in (
                "_s_item", "_s_src", "_s_val", "_s_granc", "_s_key",
                "_item_counts", "_active", "_key_sorted", "_key_pos",
            ):
                assert np.array_equal(
                    getattr(fast, field), getattr(reference, field)
                ), (delta.day, field)


class TestSpliceKernel:
    def test_splice_with_no_dirty_items_is_identity(self, flight_snapshot):
        from repro.core.columnar import CompiledClusters

        compiler = SeriesCompiler()
        day = compiler.ingest(flight_snapshot)
        empty = CompiledClusters(
            item_index=np.zeros(0, dtype=np.int64),
            item_attr=np.zeros(0, dtype=np.int64),
            item_start=np.zeros(1, dtype=np.int64),
            cluster_item=np.zeros(0, dtype=np.int64),
            cluster_value=np.zeros(0, dtype=np.int64),
            cluster_support=np.zeros(0, dtype=np.int64),
            claim_source=np.zeros(0, dtype=np.int64),
            claim_cluster=np.zeros(0, dtype=np.int64),
            claim_value=np.zeros(0, dtype=np.int64),
            claim_granularity=np.zeros(0, dtype=np.float64),
        )
        dirty = np.zeros(len(day.view.items), dtype=bool)
        spliced = splice_compiled(day.compiled, empty, dirty)
        assert np.array_equal(spliced.item_index, day.compiled.item_index)
        assert np.array_equal(spliced.claim_cluster, day.compiled.claim_cluster)
        assert np.array_equal(spliced.cluster_value, day.compiled.cluster_value)
