"""Record types: data items, claims, source metadata."""

import pytest

from repro.core.records import (
    Claim,
    DataItem,
    ErrorReason,
    SourceMeta,
)


class TestDataItem:
    def test_is_hashable_pair(self):
        a = DataItem("AAPL", "price")
        b = DataItem("AAPL", "price")
        assert a == b
        assert hash(a) == hash(b)
        assert {a: 1}[b] == 1

    def test_fields(self):
        item = DataItem("AAPL", "price")
        assert item.object_id == "AAPL"
        assert item.attribute == "price"


class TestClaim:
    def test_defaults(self):
        claim = Claim(10.0)
        assert claim.granularity is None
        assert claim.reason is None
        assert not claim.is_rounded

    def test_rounded(self):
        claim = Claim(8e6, granularity=1e6)
        assert claim.is_rounded

    def test_with_reason(self):
        claim = Claim(10.0).with_reason(ErrorReason.OUT_OF_DATE)
        assert claim.reason is ErrorReason.OUT_OF_DATE
        assert claim.value == 10.0


class TestSourceMeta:
    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            SourceMeta("")

    def test_display_name_falls_back_to_id(self):
        assert SourceMeta("abc").display_name == "abc"
        assert SourceMeta("abc", name="ABC Inc").display_name == "ABC Inc"

    def test_copier_metadata(self):
        meta = SourceMeta("mirror", copies_from="orig", copy_rate=0.99)
        assert meta.copies_from == "orig"
        assert meta.copy_rate == pytest.approx(0.99)
