"""Attribute specs, value kinds, and the attribute table."""

import pytest

from repro.core.attributes import (
    AttributeSpec,
    AttributeTable,
    ValueKind,
)
from repro.errors import SchemaError


class TestValueKind:
    def test_numeric_kinds(self):
        assert ValueKind.NUMERIC.is_numeric
        assert ValueKind.PERCENT.is_numeric

    def test_non_numeric_kinds(self):
        assert not ValueKind.TIME.is_numeric
        assert not ValueKind.STRING.is_numeric


class TestAttributeSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            AttributeSpec("")

    def test_bad_tolerance_rejected(self):
        with pytest.raises(SchemaError):
            AttributeSpec("x", tolerance_factor=0.0)

    def test_numeric_matches_within_tolerance(self):
        spec = AttributeSpec("price", ValueKind.NUMERIC)
        assert spec.matches(10.0, 10.05, tolerance=0.1)
        assert not spec.matches(10.0, 10.2, tolerance=0.1)

    def test_time_matches_within_ten_minutes(self):
        spec = AttributeSpec("depart", ValueKind.TIME)
        assert spec.matches(600.0, 609.0, tolerance=0.0)
        assert not spec.matches(600.0, 611.0, tolerance=0.0)

    def test_string_matches_exactly(self):
        spec = AttributeSpec("gate", ValueKind.STRING)
        assert spec.matches("C1", "C1", tolerance=5.0)
        assert not spec.matches("C1", "C2", tolerance=5.0)

    def test_unparseable_values_fall_back_to_equality(self):
        spec = AttributeSpec("price", ValueKind.NUMERIC)
        assert spec.matches("n/a", "n/a", tolerance=1.0)
        assert not spec.matches("n/a", 10.0, tolerance=1.0)


class TestAttributeTable:
    def test_from_specs_preserves_order(self):
        table = AttributeTable.from_specs(
            [AttributeSpec("b"), AttributeSpec("a")]
        )
        assert table.names == ["b", "a"]

    def test_duplicate_rejected(self):
        table = AttributeTable.from_specs([AttributeSpec("a")])
        with pytest.raises(SchemaError):
            table.add(AttributeSpec("a"))

    def test_unknown_lookup_raises(self):
        table = AttributeTable()
        with pytest.raises(SchemaError):
            table["missing"]

    def test_contains_and_len(self):
        table = AttributeTable.from_specs([AttributeSpec("a"), AttributeSpec("b")])
        assert "a" in table
        assert "c" not in table
        assert len(table) == 2
