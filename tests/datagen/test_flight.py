"""Flight world and collection invariants."""

import pytest

from repro.core.records import SourceCategory
from repro.datagen.flight import (
    FLIGHT_ATTRIBUTES,
    FlightConfig,
    FlightWorld,
    generate_flight_collection,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def world():
    return FlightWorld(n_objects=50, num_days=4, seed=3)


class TestFlightWorld:
    def test_six_examined_attributes(self):
        assert len(FLIGHT_ATTRIBUTES) == 6

    def test_every_flight_touches_a_hub(self, world):
        hubs = {"DFW", "ORD", "IAH"}
        for obj in world.object_ids:
            dep, arr = world.airports_of(obj)
            assert dep in hubs or arr in hubs

    def test_times_are_valid_minutes(self, world):
        for obj in world.object_ids[:10]:
            for attr in ("Scheduled departure", "Scheduled arrival",
                         "Actual departure", "Actual arrival"):
                value = world.true_value(obj, attr, 1)
                assert 0 <= float(value) < 24 * 60

    def test_gates_look_like_gates(self, world):
        gate = world.true_value(world.object_ids[0], "Departure gate", 0)
        assert isinstance(gate, str)
        assert gate[0] in "ABCDE"
        assert gate[1:].isdigit()

    def test_takeoff_variant_is_later_than_gate_departure(self, world):
        obj = world.object_ids[4]
        actual = float(world.true_value(obj, "Actual departure", 1))
        takeoff = float(world.variant_value(obj, "Actual departure", 1, "takeoff"))
        diff = (takeoff - actual) % 1440
        assert 10 <= diff <= 35

    def test_pure_error_gate_differs(self, world):
        import numpy as np
        rng = np.random.default_rng(0)
        truth = world.true_value(world.object_ids[0], "Arrival gate", 0)
        wrong = world.pure_error_value(
            world.object_ids[0], "Arrival gate", 0, truth, rng
        )
        assert wrong != truth

    def test_pure_error_time_uses_default(self, world):
        import numpy as np
        rng = np.random.default_rng(0)
        assert (
            world.pure_error_value(
                world.object_ids[0], "Actual departure", 0, 600.0, rng
            )
            is None
        )


class TestFlightCollection:
    def test_population_composition(self, flight_collection):
        profiles = flight_collection.profiles
        assert len(profiles) == 38
        airlines = [
            p for p in profiles if p.meta.category is SourceCategory.AIRLINE
        ]
        airports = [
            p for p in profiles if p.meta.category is SourceCategory.AIRPORT
        ]
        assert len(airlines) == 3
        assert len(airports) == 8

    def test_copy_groups_match_table5(self, flight_collection):
        sizes = sorted(len(g) for g in flight_collection.true_copy_groups())
        assert sizes == [2, 2, 3, 4, 5]

    def test_airlines_cover_only_their_flights(self, flight_collection):
        snapshot = flight_collection.snapshot
        world = flight_collection.world
        claims = snapshot.claims_by("airline_aa")
        airlines = {world.airline_of(item.object_id) for item in claims}
        assert airlines == {"AA"}

    def test_airport_coverage_is_small(self, flight_collection):
        snapshot = flight_collection.snapshot
        airport_sources = [
            s for s, m in snapshot.sources.items()
            if m.category is SourceCategory.AIRPORT
        ]
        for source_id in airport_sources:
            objects = {i.object_id for i in snapshot.claims_by(source_id)}
            assert len(objects) < snapshot.num_objects / 2

    def test_gold_uses_airline_authority(self, flight_collection):
        gold = flight_collection.gold
        world = flight_collection.world
        snapshot = flight_collection.snapshot
        for item in list(gold.items)[:20]:
            airline = world.airline_of(item.object_id)
            source_id = f"airline_{airline.lower()}"
            assert snapshot.value_of(source_id, item) is not None

    def test_config_scales(self):
        assert FlightConfig.paper_scale().n_objects == 1200
        with pytest.raises(ConfigError):
            FlightConfig(num_days=99).day_labels()
